#!/usr/bin/env sh
# Hermetic CI gate: formatting, lints, build and tests, all offline.
# The workspace vendors its own dev-dependency shims (crates/proptest,
# crates/criterion, crates/prng), so no registry access is ever needed.
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --offline --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test (workspace)"
cargo test --workspace --offline -q

echo "==> cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline

echo "==> perf_report --smoke (schema gate)"
cargo run --release --offline -p avfs-bench --bin perf_report -- --smoke

echo "==> thread_scaling --smoke (pool determinism gate)"
cargo run --release --offline -p avfs-bench --bin thread_scaling -- --smoke

echo "==> activity_sweep --smoke (gating determinism gate)"
cargo run --release --offline -p avfs-bench --bin activity_sweep -- --smoke

echo "==> lane_scaling --smoke (lane-major identity gate)"
cargo run --release --offline -p avfs-bench --bin lane_scaling -- --smoke

echo "==> batch_throughput --smoke (compile-once identity-and-amortization gate)"
cargo run --release --offline -p avfs-bench --bin batch_throughput -- --smoke

echo "==> scenario_sweep --smoke (schedule identity and Monte Carlo replay gate)"
cargo run --release --offline -p avfs-bench --bin scenario_sweep -- --smoke

echo "==> checker --smoke (static-analysis gate: avfs-check/1 schema, zero deny findings)"
cargo run --release --offline -p avfs-bench --bin checker -- --smoke

echo "==> chaos --smoke (fault-injection gate: avfs-chaos/1 schema, 100% site coverage)"
cargo run --release --offline -p avfs-bench --bin chaos -- --smoke

echo "==> sta_crosscheck --smoke (STA oracle gate: sim within STA bound, critical-path agreement)"
cargo run --release --offline -p avfs-bench --bin sta_crosscheck -- --smoke

echo "CI OK"
