//! `avfs` — facade crate re-exporting the whole AVFS time-simulation
//! workspace under one roof.
//!
//! This is a reproduction of Schneider & Wunderlich, *"GPU-accelerated Time
//! Simulation of Systems with Adaptive Voltage and Frequency Scaling"*
//! (DATE'20). See the repository `README.md` for an architecture overview,
//! `DESIGN.md` for the system inventory, and `EXPERIMENTS.md` for the
//! paper-vs-measured record.
//!
//! The sub-crates re-exported here:
//!
//! * [`netlist`] — gate-level netlist substrate and synthetic cell library,
//! * [`spice`] — transistor-level characterization (SPICE substitute),
//! * [`regression`] — OLS regression, polynomial bases, normalizers,
//! * [`delay`] — parametric delay models and kernels (the paper's Sec. III),
//! * [`sdf`] — SDF / SPEF subset parsing and netlist annotation,
//! * [`waveform`] — glitch-accurate waveform algebra,
//! * [`sim`] — the parallel thread-grid time simulator and baselines
//!   (the paper's Sec. IV),
//! * [`atpg`] — pattern-pair generation (transition + timing-aware),
//! * [`circuits`] — benchmark circuits and Table-I/II profiles.

pub use avfs_atpg as atpg;
pub use avfs_circuits as circuits;
pub use avfs_core as sim;
pub use avfs_delay as delay;
pub use avfs_netlist as netlist;
pub use avfs_regression as regression;
pub use avfs_sdf as sdf;
pub use avfs_spice as spice;
pub use avfs_waveform as waveform;
