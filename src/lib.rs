//! `avfs` — facade crate re-exporting the whole AVFS time-simulation
//! workspace under one roof.
//!
//! This is a reproduction of Schneider & Wunderlich, *"GPU-accelerated Time
//! Simulation of Systems with Adaptive Voltage and Frequency Scaling"*
//! (DATE'20). See the repository `README.md` for an architecture overview,
//! `DESIGN.md` for the system inventory, and `EXPERIMENTS.md` for the
//! paper-vs-measured record.
//!
//! The sub-crates re-exported here:
//!
//! * [`netlist`] — gate-level netlist substrate and synthetic cell library,
//! * [`spice`] — transistor-level characterization (SPICE substitute),
//! * [`regression`] — OLS regression, polynomial bases, normalizers,
//! * [`delay`] — parametric delay models and kernels (the paper's Sec. III),
//! * [`sdf`] — SDF / SPEF subset parsing and netlist annotation,
//! * [`waveform`] — glitch-accurate waveform algebra,
//! * [`sim`] — the parallel thread-grid time simulator and baselines
//!   (the paper's Sec. IV), split compile-once / simulate-many:
//!   [`CompiledNetlist`](sim::CompiledNetlist) artifacts,
//!   [`Session`](sim::Session)s and the caching, sharding
//!   [`BatchRunner`](sim::BatchRunner),
//! * [`atpg`] — pattern-pair generation (transition + timing-aware),
//! * [`circuits`] — benchmark circuits and Table-I/II profiles,
//! * [`obs`] — phase timers, counters and histograms behind
//!   [`SimOptions::profiling`](sim::SimOptions) (dependency-free),
//! * [`check`] — four-tier static analysis: netlist lints, delay-model
//!   lints, the concurrency/unsafe audit, and the STA cross-validation
//!   rules behind the `checker` CI gate and
//!   [`SimOptions::strict_validation`](sim::SimOptions),
//! * [`sta`] — the independent static-timing oracle: a
//!   per-pin-transition timing graph with earliest/latest arrival
//!   propagation and critical-path extraction, cross-validating the
//!   simulator per operating point via
//!   [`sim::sta::crosscheck`],
//! * [`inject`] — deterministic fault injection: seeded
//!   [`FaultPlan`](inject::FaultPlan)s behind
//!   [`SimOptions::fault_plan`](sim::SimOptions) and the `chaos` soak
//!   harness (dependency-free; no-op when unarmed).
//!
//! # Quickstart
//!
//! The core flow — characterize a cell library, bind a simulator, sweep
//! supply voltages, and read the profiled result (the runnable
//! `examples/quickstart.rs` is the same flow with reporting):
//!
//! ```
//! use avfs::atpg::PatternSet;
//! use avfs::delay::characterize::{characterize_library, CharacterizationConfig};
//! use avfs::netlist::CellLibrary;
//! use avfs::sim::{SimOptions, TimeSimulator};
//! use avfs::spice::Technology;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Offline (Fig. 1 of the paper): sweep → regression → delay kernels.
//! let library = CellLibrary::nangate15_like();
//! let netlist = Arc::new(avfs::circuits::c17(&library)?);
//! let nand2 = library.find("NAND2_X1").expect("library cell");
//! let chars = characterize_library(
//!     &library,
//!     &Technology::nm15(),
//!     &CharacterizationConfig::fast(), // coarse sweep keeps the doctest quick
//!     Some(&[nand2]),
//! )?;
//!
//! // Online (Sec. IV): simulate the same patterns at two supply voltages.
//! let sim = TimeSimulator::from_characterization(Arc::clone(&netlist), &chars)?;
//! let patterns = PatternSet::lfsr(netlist.inputs().len(), 8, 42);
//! let options = SimOptions {
//!     profiling: true, // attach a phase-level profile to the run
//!     ..SimOptions::default()
//! };
//! let run = sim.voltage_sweep(&patterns, &[0.55, 0.8], &options)?;
//!
//! let t_low = run.latest_arrival_at(0.55).expect("c17 outputs toggle");
//! let t_nom = run.latest_arrival_at(0.8).expect("c17 outputs toggle");
//! assert!(t_low > t_nom, "lower V_DD means slower logic");
//! let profile = run.profile.as_ref().expect("profiling was on");
//! assert!(profile.phase("engine/run").is_some());
//! # Ok(())
//! # }
//! ```
//!
//! # Compile once, simulate many
//!
//! Repeated runs — the AVFS monitoring loop that re-simulates small
//! input deltas over and over — should not pay netlist compilation per
//! run. Compile the netlist into an immutable
//! [`CompiledNetlist`](sim::CompiledNetlist) artifact and launch it
//! through a [`BatchRunner`](sim::BatchRunner), which caches artifacts
//! by content hash, keeps its worker pool parked between runs, and
//! transparently shards slot grids that outgrow the waveform budget
//! (bit-identical to the unsharded run):
//!
//! ```
//! use avfs::atpg::PatternSet;
//! use avfs::delay::characterize::{characterize_library, CharacterizationConfig};
//! use avfs::netlist::CellLibrary;
//! use avfs::sim::{slots, BatchRunner, CompileKey, CompiledNetlist, SimOptions};
//! use avfs::spice::Technology;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let library = CellLibrary::nangate15_like();
//! let netlist = Arc::new(avfs::circuits::c17(&library)?);
//! let nand2 = library.find("NAND2_X1").expect("library cell");
//! let chars = characterize_library(
//!     &library,
//!     &Technology::nm15(),
//!     &CharacterizationConfig::fast(),
//!     Some(&[nand2]),
//! )?;
//!
//! let runner = BatchRunner::new(1, 8);
//! let key = CompileKey::of(&netlist, &chars, "nominal");
//! let patterns = PatternSet::lfsr(netlist.inputs().len(), 8, 42);
//! let slot_list = slots::at_voltage(patterns.len(), 0.8);
//! let mut first = None;
//! for _ in 0..3 {
//!     // Compiled exactly once; later iterations reuse the artifact.
//!     let compiled = runner.compile(key, || {
//!         let annotation = Arc::new(chars.annotate(&netlist)?);
//!         CompiledNetlist::compile(
//!             Arc::clone(&netlist),
//!             annotation,
//!             Arc::new(chars.model().clone()),
//!         )
//!     })?;
//!     let run = runner.run(&compiled, &patterns, &slot_list, &SimOptions::default())?;
//!     let prev = first.get_or_insert_with(|| run.slots.clone());
//!     assert_eq!(*prev, run.slots, "launches are bit-for-bit reproducible");
//! }
//! assert_eq!(runner.compile_misses(), 1);
//! assert_eq!(runner.compile_hits(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use avfs_atpg as atpg;
pub use avfs_check as check;
pub use avfs_circuits as circuits;
pub use avfs_core as sim;
pub use avfs_delay as delay;
pub use avfs_inject as inject;
pub use avfs_netlist as netlist;
pub use avfs_obs as obs;
pub use avfs_regression as regression;
pub use avfs_sdf as sdf;
pub use avfs_spice as spice;
pub use avfs_sta as sta;
pub use avfs_waveform as waveform;
