//! Minimal in-tree property-testing shim.
//!
//! Implements the small, API-compatible subset of the `proptest` crate
//! this workspace uses — the [`proptest!`] macro, `prop_assert!` /
//! `prop_assert_eq!`, range and `any::<T>()` strategies,
//! [`collection::vec`], and the explicit [`test_runner::TestRunner`] —
//! so the existing property tests compile and run with **no registry
//! access**. Cases are drawn from a deterministic in-tree PRNG
//! ([`avfs_prng::SmallRng`]) with a fixed seed per test, so failures
//! reproduce exactly; there is no shrinking (a failing case reports its
//! inputs via the standard assertion message instead).

#![forbid(unsafe_code)]

use avfs_prng::{Rng, SeedableRng, SmallRng};
use std::ops::{Range, RangeInclusive};

/// Generation strategies: how to draw one value of a type.
pub mod strategy {
    use super::*;

    /// A source of random test values.
    pub trait Strategy {
        /// The value type this strategy produces.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut SmallRng) -> Self::Value;
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut SmallRng) -> f64 {
            self.start + rng.gen::<f64>() * (self.end - self.start)
        }
    }

    impl Strategy for Range<usize> {
        type Value = usize;
        fn sample(&self, rng: &mut SmallRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for Range<u64> {
        type Value = u64;
        fn sample(&self, rng: &mut SmallRng) -> u64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for Range<u32> {
        type Value = u32;
        fn sample(&self, rng: &mut SmallRng) -> u32 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for RangeInclusive<usize> {
        type Value = usize;
        fn sample(&self, rng: &mut SmallRng) -> usize {
            rng.gen_range(*self.start()..self.end() + 1)
        }
    }

    /// Types with a canonical "draw anything" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut SmallRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut SmallRng) -> bool {
            rng.gen()
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut SmallRng) -> u64 {
            rng.gen()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut SmallRng) -> u32 {
            rng.gen()
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut SmallRng) -> u8 {
            rng.gen()
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut SmallRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The unconstrained strategy for `T` (`any::<u64>()`, …).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::*;

    /// A length specification: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: r.end() + 1,
            }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `Vec` strategy: `size` elements (fixed count or range) drawn from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Explicit test running (the `TestRunner::new(Config::..)` form).
pub mod test_runner {
    use super::strategy::Strategy;
    use super::*;

    /// Runner configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases to draw per property.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Config {
            // Modest by default: these run in `cargo test -q` on every
            // property of the workspace.
            Config { cases: 64 }
        }
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    /// Error type returned (via `prop_assert!`-style early exit) from a
    /// test closure. The shim's assertion macros panic instead, so this
    /// exists only to keep closure signatures compatible.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TestCaseError(pub String);

    /// A deterministic property-test runner.
    #[derive(Debug)]
    pub struct TestRunner {
        config: Config,
        rng: SmallRng,
    }

    impl TestRunner {
        /// Creates a runner with a fixed seed (deterministic runs).
        pub fn new(config: Config) -> TestRunner {
            TestRunner {
                config,
                rng: SmallRng::seed_from_u64(0x5EED_CAFE_F00D_D00D),
            }
        }

        /// Number of cases this runner draws.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// The runner's RNG (used by the [`proptest!`] macro expansion).
        pub fn rng(&mut self) -> &mut SmallRng {
            &mut self.rng
        }

        /// Runs `test` over `cases` values drawn from `strategy`.
        ///
        /// # Errors
        ///
        /// Forwards the first `Err` the closure returns, annotated with
        /// the case number.
        pub fn run<S: Strategy>(
            &mut self,
            strategy: &S,
            mut test: impl FnMut(S::Value) -> Result<(), TestCaseError>,
        ) -> Result<(), String> {
            for case in 0..self.config.cases {
                let value = strategy.sample(&mut self.rng);
                test(value).map_err(|e| format!("case {case}: {}", e.0))?;
            }
            Ok(())
        }
    }
}

/// Strategies choosing among explicit options.
pub mod sample {
    use super::strategy::Strategy;
    use super::*;

    /// The strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut SmallRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }

    /// A strategy drawing uniformly from `options`.
    ///
    /// # Panics
    ///
    /// Sampling panics if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select(options)
    }
}

/// The items `use proptest::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property test (panics on failure, which
/// the deterministic runner reports with the failing case's inputs).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` drawing [`test_runner::Config::default`]-many
/// cases from a deterministic generator.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new(
                    $crate::test_runner::Config::default(),
                );
                for _case in 0..runner.cases() {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), runner.rng());)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut runner = crate::test_runner::TestRunner::new(Default::default());
        for _ in 0..200 {
            let x = (-2.0f64..2.0).sample(runner.rng());
            assert!((-2.0..2.0).contains(&x));
            let n = (1usize..=4).sample(runner.rng());
            assert!((1..=4).contains(&n));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut runner = crate::test_runner::TestRunner::new(Default::default());
        let fixed = crate::collection::vec(0.0f64..1.0, 26);
        assert_eq!(fixed.sample(runner.rng()).len(), 26);
        let ranged = crate::collection::vec(0.0f64..1.0, 0..12);
        for _ in 0..100 {
            assert!(ranged.sample(runner.rng()).len() < 12);
        }
    }

    #[test]
    fn explicit_runner_runs_all_cases() {
        use crate::test_runner::{Config, TestRunner};
        let mut runner = TestRunner::new(Config::with_cases(17));
        let mut count = 0;
        runner
            .run(&(0.0f64..1.0), |v| {
                prop_assert!((0.0..1.0).contains(&v));
                count += 1;
                Ok(())
            })
            .expect("property holds");
        assert_eq!(count, 17);
    }

    proptest! {
        #[test]
        fn macro_draws_deterministic_values(a in 0.0f64..1.0, b in any::<u64>(), c in any::<bool>()) {
            prop_assert!((0.0..1.0).contains(&a));
            let _ = (b, c);
        }
    }
}
