//! A capacity-bounded `(slot, net)` waveform arena.
//!
//! The GPU algorithm of Holst et al. \[25\] stores all waveforms of a
//! launch in one flat global-memory allocation: a fixed-size buffer per
//! `(slot, net)` cell, with an overflow flag raised when a gate's output
//! history would run past its buffer. This module is the CPU realization of
//! that layout: storage for `entries` waveforms of at most `capacity`
//! transitions each, dense in one `Vec<f64>`, with explicit overflow
//! reporting instead of reallocation. The simulation engine sizes the
//! arena from its memory budget, quarantines slots whose gates overflow,
//! and re-runs them against a larger arena — so a glitch-heavy slot can
//! never abort or bloat a whole batch.
//!
//! # Concurrent access
//!
//! Two APIs let several workers populate the arena without funneling every
//! waveform through one `&mut` writer:
//!
//! * [`WaveformArena::partitions`] — a `split_at_mut`-style split into
//!   contiguous, disjoint [`ArenaPartition`]s, each with exclusive `&mut`
//!   access to its cell range. Fully safe; used when work is statically
//!   assigned by cell range (e.g. one partition per slot).
//! * [`WaveformArena::level_writer`] — a shared [`LevelWriter`] for one
//!   *write epoch* (one level of a levelized simulation). Any worker may
//!   write any cell **once** per epoch; a per-cell atomic claim bit makes
//!   each cell's writer exclusive, so scattered work-stealing schedules
//!   (where the set of written cells is disjoint but not contiguous) can
//!   write in place concurrently.

use crate::{CapacityOverflow, Waveform, WaveformRead};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Flat bounded storage for a batch of waveforms.
///
/// Entry `i` occupies `times[i * capacity .. i * capacity + len[i]]`; the
/// engine indexes entries as `slot_in_batch * nets + net`.
#[derive(Debug)]
pub struct WaveformArena {
    capacity: usize,
    initial: Vec<bool>,
    len: Vec<u32>,
    times: Vec<f64>,
    /// One claim bit per entry (64 per word), reset at the start of each
    /// [`Self::level_writer`] epoch. The word width matches the lane-group
    /// width of [`crate::LaneLayout`], so a full lane run's claims live in
    /// one word and batch claims are a single `fetch_or`.
    claims: Vec<AtomicU64>,
    /// Peak transitions ever written to any entry; atomic so concurrent
    /// writers can maintain it (max is order-independent, hence
    /// deterministic).
    peak: AtomicUsize,
}

impl Clone for WaveformArena {
    fn clone(&self) -> WaveformArena {
        WaveformArena {
            capacity: self.capacity,
            initial: self.initial.clone(),
            len: self.len.clone(),
            times: self.times.clone(),
            claims: self
                .claims
                .iter()
                .map(|c| AtomicU64::new(c.load(Ordering::Relaxed)))
                .collect(),
            peak: AtomicUsize::new(self.peak.load(Ordering::Relaxed)),
        }
    }
}

/// A borrowed waveform inside a [`WaveformArena`].
#[derive(Debug, Clone, Copy)]
pub struct WaveformView<'a> {
    initial: bool,
    times: &'a [f64],
}

impl WaveformRead for WaveformView<'_> {
    fn initial_value(&self) -> bool {
        self.initial
    }
    fn transitions(&self) -> &[f64] {
        self.times
    }
}

impl WaveformArena {
    /// Allocates an arena of `entries` waveforms with room for `capacity`
    /// transitions each. All entries start as constant-low signals.
    pub fn new(entries: usize, capacity: usize) -> WaveformArena {
        WaveformArena {
            capacity,
            initial: vec![false; entries],
            len: vec![0; entries],
            times: vec![0.0; entries * capacity],
            claims: (0..entries.div_ceil(64))
                .map(|_| AtomicU64::new(0))
                .collect(),
            peak: AtomicUsize::new(0),
        }
    }

    /// Number of waveform entries.
    pub fn entries(&self) -> usize {
        self.len.len()
    }

    /// Per-entry transition capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resets every entry to a constant-low signal (storage is retained;
    /// the peak-occupancy watermark is kept for diagnostics).
    pub fn reset(&mut self) {
        self.initial.fill(false);
        self.len.fill(0);
        for word in &mut self.claims {
            *word.get_mut() = 0;
        }
    }

    /// A read view of entry `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn view(&self, idx: usize) -> WaveformView<'_> {
        let start = idx * self.capacity;
        WaveformView {
            initial: self.initial[idx],
            times: &self.times[start..start + self.len[idx] as usize],
        }
    }

    /// Writes a waveform into entry `idx`.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityOverflow`] (leaving the entry untouched) if the
    /// waveform has more than [`Self::capacity`] transitions.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn write(&mut self, idx: usize, waveform: &Waveform) -> Result<(), CapacityOverflow> {
        let transitions = waveform.transitions();
        if transitions.len() > self.capacity {
            return Err(CapacityOverflow {
                capacity: self.capacity,
            });
        }
        let start = idx * self.capacity;
        self.initial[idx] = waveform.initial_value();
        self.len[idx] = transitions.len() as u32;
        self.times[start..start + transitions.len()].copy_from_slice(transitions);
        self.peak.fetch_max(transitions.len(), Ordering::Relaxed);
        Ok(())
    }

    /// Copies entry `src` over entry `dst` within the arena — the cheap
    /// passthrough for identity stages (e.g. primary-output observation
    /// nodes), avoiding the owned-[`Waveform`] round trip.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range or `src == dst`.
    pub fn copy_cell(&mut self, src: usize, dst: usize) {
        assert_ne!(src, dst, "copy_cell requires distinct cells");
        self.initial[dst] = self.initial[src];
        let n = self.len[src];
        self.len[dst] = n;
        self.times.copy_within(
            src * self.capacity..src * self.capacity + n as usize,
            dst * self.capacity,
        );
    }

    /// Copies entry `idx` out into an owned [`Waveform`].
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn to_waveform(&self, idx: usize) -> Waveform {
        let view = self.view(idx);
        Waveform {
            initial: view.initial,
            transitions: view.times.to_vec(),
        }
    }

    /// Transition count of entry `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn occupancy(&self, idx: usize) -> usize {
        self.len[idx] as usize
    }

    /// The largest transition count ever written to any entry — the
    /// watermark the engine reports as peak arena occupancy (survives
    /// [`Self::reset`]).
    pub fn peak_occupancy(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Splits the arena into disjoint contiguous partitions of
    /// `chunk_entries` cells each (the last may be shorter) — the
    /// `split_at_mut` of arenas. No two partitions expose the same cell,
    /// so partitions can be written from different threads without any
    /// synchronization. With `chunk_entries = nets`, each partition is
    /// exactly one slot's cells.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_entries` is 0.
    pub fn partitions(&mut self, chunk_entries: usize) -> impl Iterator<Item = ArenaPartition<'_>> {
        assert!(chunk_entries > 0, "partition size must be positive");
        let capacity = self.capacity;
        let peak = &self.peak;
        self.initial
            .chunks_mut(chunk_entries)
            .zip(self.len.chunks_mut(chunk_entries))
            .zip(self.times.chunks_mut(chunk_entries * capacity.max(1)))
            .enumerate()
            .map(move |(i, ((initial, len), times))| ArenaPartition {
                start: i * chunk_entries,
                capacity,
                initial,
                len,
                times,
                peak,
            })
    }

    /// Begins a concurrent write epoch: clears every claim bit and
    /// returns a shared [`LevelWriter`] through which any worker may
    /// write each cell at most once. See [`LevelWriter`] for the access
    /// discipline.
    pub fn level_writer(&mut self) -> LevelWriter<'_> {
        self.level_writer_hooked(None)
    }

    /// [`Self::level_writer`] with a fault-injection hook: when `hook`
    /// is present, every *non-empty* [`LevelWriter::write`] consults
    /// `hook(idx)` first and reports [`CapacityOverflow`] — cell
    /// untouched, unclaimed — when it returns `true`, exactly as if the
    /// waveform had outgrown the cell. The hook must be pure per `(epoch,
    /// idx)` (it runs on whichever worker owns the task), and it is never
    /// consulted for empty writes or [`LevelWriter::write_constant`], so
    /// a quiet cell can not be forced to overflow — the activity-gating
    /// invariant ("a quiet task cannot overflow") survives injection.
    pub fn level_writer_hooked<'a>(
        &'a mut self,
        hook: Option<&'a OverflowHook<'a>>,
    ) -> LevelWriter<'a> {
        for word in &mut self.claims {
            *word.get_mut() = 0;
        }
        let entries = self.len.len();
        LevelWriter {
            capacity: self.capacity,
            entries,
            initial: self.initial.as_mut_ptr(),
            len: self.len.as_mut_ptr(),
            times: self.times.as_mut_ptr(),
            claims: &self.claims,
            peak: &self.peak,
            overflow_hook: hook,
            _arena: std::marker::PhantomData,
        }
    }
}

/// A forced-overflow predicate for [`WaveformArena::level_writer_hooked`]:
/// `hook(cell index) == true` makes that cell's write report
/// [`CapacityOverflow`]. Installed by fault-injection harnesses; `Sync`
/// because it is consulted from pool workers.
pub type OverflowHook<'h> = dyn Fn(usize) -> bool + Sync + 'h;

/// One contiguous, exclusively-owned range of arena cells, produced by
/// [`WaveformArena::partitions`]. Indices are *local* to the partition;
/// [`ArenaPartition::start`] gives the global index of local cell 0.
#[derive(Debug)]
pub struct ArenaPartition<'a> {
    start: usize,
    capacity: usize,
    initial: &'a mut [bool],
    len: &'a mut [u32],
    times: &'a mut [f64],
    peak: &'a AtomicUsize,
}

impl ArenaPartition<'_> {
    /// Global index of the partition's first cell.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Number of cells in this partition.
    pub fn entries(&self) -> usize {
        self.len.len()
    }

    /// Per-entry transition capacity (same as the parent arena's).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// A read view of local cell `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is outside the partition.
    pub fn view(&self, idx: usize) -> WaveformView<'_> {
        let start = idx * self.capacity;
        WaveformView {
            initial: self.initial[idx],
            times: &self.times[start..start + self.len[idx] as usize],
        }
    }

    /// Writes a waveform into local cell `idx`.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityOverflow`] (leaving the cell untouched) if the
    /// waveform exceeds the per-cell capacity.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is outside the partition.
    pub fn write(&mut self, idx: usize, waveform: &Waveform) -> Result<(), CapacityOverflow> {
        let transitions = waveform.transitions();
        if transitions.len() > self.capacity {
            return Err(CapacityOverflow {
                capacity: self.capacity,
            });
        }
        let start = idx * self.capacity;
        self.initial[idx] = waveform.initial_value();
        self.len[idx] = transitions.len() as u32;
        self.times[start..start + transitions.len()].copy_from_slice(transitions);
        self.peak.fetch_max(transitions.len(), Ordering::Relaxed);
        Ok(())
    }
}

/// A shared handle for one concurrent write epoch of a [`WaveformArena`]
/// (one *level* of a levelized simulation), created by
/// [`WaveformArena::level_writer`].
///
/// # Access discipline
///
/// * Every cell may be **written at most once** per epoch. Writes claim
///   the cell's atomic bit first (`fetch_or`, acquire-release); exactly
///   one writer wins, so the subsequent plain stores are exclusive. A
///   second write of the same cell panics instead of racing.
/// * Reads ([`LevelWriter::view`]) must target cells that are **not
///   written in this epoch**. In a levelized schedule this holds by
///   construction: a level's gates read only fanin cells of strictly
///   earlier levels, and each level writes only its own gates' outputs.
///   The claim bit is checked on every read and panics on a violation;
///   this is a best-effort tripwire — the levelization invariant, not the
///   check, is the memory-model argument (a read can only race with a
///   write if that invariant is already broken).
///
/// The writer is `Send + Sync`; it borrows the arena mutably, so no other
/// access to the arena is possible until it is dropped — the epoch's
/// *barrier* is simply the end of the borrow.
pub struct LevelWriter<'a> {
    capacity: usize,
    entries: usize,
    initial: *mut bool,
    len: *mut u32,
    times: *mut f64,
    claims: &'a [AtomicU64],
    peak: &'a AtomicUsize,
    /// Fault-injection forced-overflow predicate (see
    /// [`WaveformArena::level_writer_hooked`]); `None` on every normal
    /// epoch, so the unarmed cost is one discriminant branch per write.
    overflow_hook: Option<&'a OverflowHook<'a>>,
    _arena: std::marker::PhantomData<&'a mut WaveformArena>,
}

impl std::fmt::Debug for LevelWriter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LevelWriter")
            .field("capacity", &self.capacity)
            .field("entries", &self.entries)
            .field("hooked", &self.overflow_hook.is_some())
            .finish_non_exhaustive()
    }
}

// SAFETY: all mutation goes through the per-cell claim protocol (one
// exclusive winner per cell per epoch); reads are claim-checked. The raw
// pointers are valid for the arena borrow 'a.
unsafe impl Send for LevelWriter<'_> {}
// SAFETY: shared references only permit claim-protocol-mediated access
// (same argument as Send above): `write`/`write_constant` first win the
// per-cell atomic claim, and `view`/`transition_count` assert the cell is
// unclaimed for the epoch, so `&LevelWriter` is safe to share.
unsafe impl Sync for LevelWriter<'_> {}

impl LevelWriter<'_> {
    /// Per-entry transition capacity (same as the parent arena's).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cells addressable through this writer.
    pub fn entries(&self) -> usize {
        self.entries
    }

    #[inline]
    fn is_claimed(&self, idx: usize) -> bool {
        self.claims[idx / 64].load(Ordering::Acquire) & (1 << (idx % 64)) != 0
    }

    /// Claims cell `idx`; returns whether this caller won the claim.
    #[inline]
    fn claim(&self, idx: usize) -> bool {
        let bit = 1u64 << (idx % 64);
        self.claims[idx / 64].fetch_or(bit, Ordering::AcqRel) & bit == 0
    }

    /// Claims every cell `start + k` for each set bit `k` of `mask`, using
    /// one `fetch_or` per touched claim word (full lane runs are word-
    /// aligned by [`crate::LaneLayout`], so the common case is a single
    /// atomic op; partial tails may straddle two words). Returns the lane
    /// bits that were **already claimed** — `0` means this caller won every
    /// requested cell.
    #[inline]
    fn claim_run(&self, start: usize, mask: u64) -> u64 {
        let mut lost = 0u64;
        let mut rem = mask;
        while rem != 0 {
            let k = rem.trailing_zeros() as usize;
            let idx = start + k;
            let word = idx / 64;
            let shift = idx % 64;
            // Lane bits k .. k + (64 − shift) land in this claim word.
            let span = 64 - shift;
            let window = if span >= 64 {
                rem
            } else {
                rem & (((1u64 << span) - 1) << k)
            };
            let claim_bits = (window >> k) << shift;
            let prev = self.claims[word].fetch_or(claim_bits, Ordering::AcqRel);
            lost |= ((prev & claim_bits) >> shift) << k;
            rem &= !window;
        }
        lost
    }

    /// The already-claimed bits among cells `start .. start + width`
    /// (lane bit `k` ↔ cell `start + k`), read with acquire ordering —
    /// the batch form of [`LevelWriter::is_claimed`].
    #[inline]
    fn claimed_bits(&self, start: usize, width: usize) -> u64 {
        debug_assert!(width <= 64);
        let mut out = 0u64;
        let mut k = 0;
        while k < width {
            let idx = start + k;
            let word = idx / 64;
            let shift = idx % 64;
            let span = (64 - shift).min(width - k);
            let loaded = self.claims[word].load(Ordering::Acquire);
            let window = if span >= 64 {
                loaded >> shift
            } else {
                (loaded >> shift) & ((1u64 << span) - 1)
            };
            out |= window << k;
            k += span;
        }
        out
    }

    /// A read view of cell `idx`, which must not be written in this epoch
    /// (see the access discipline above).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or the cell was already written in
    /// this epoch.
    #[inline]
    pub fn view(&self, idx: usize) -> WaveformView<'_> {
        assert!(idx < self.entries, "arena cell {idx} out of range");
        assert!(
            !self.is_claimed(idx),
            "read of arena cell {idx} written in the same level epoch"
        );
        // SAFETY: idx is in range; the cell is unclaimed, and under the
        // levelization contract no writer will claim it during this epoch,
        // so the plain reads cannot race.
        unsafe {
            WaveformView {
                initial: *self.initial.add(idx),
                times: std::slice::from_raw_parts(
                    self.times.add(idx * self.capacity),
                    *self.len.add(idx) as usize,
                ),
            }
        }
    }

    /// Transition count of cell `idx` — the *quiet bit* source: a cell
    /// with zero transitions carries a constant signal for the whole
    /// simulation window. Like [`LevelWriter::view`], the cell must not be
    /// written in this epoch (it is a fanin of the level being computed,
    /// so it belongs to a strictly earlier level).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or the cell was already written in
    /// this epoch.
    #[inline]
    pub fn transition_count(&self, idx: usize) -> usize {
        assert!(idx < self.entries, "arena cell {idx} out of range");
        assert!(
            !self.is_claimed(idx),
            "read of arena cell {idx} written in the same level epoch"
        );
        // SAFETY: idx is in range; the cell is unclaimed, and under the
        // levelization contract no writer will claim it during this epoch,
        // so the plain read cannot race.
        unsafe { *self.len.add(idx) as usize }
    }

    /// Whether cell `idx` is *quiet* — zero transitions, i.e. a constant
    /// signal. A gate whose fanin cells are all quiet has a constant
    /// output and needs no waveform evaluation. Same access discipline as
    /// [`LevelWriter::transition_count`].
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or the cell was already written in
    /// this epoch.
    #[inline]
    pub fn is_quiet(&self, idx: usize) -> bool {
        self.transition_count(idx) == 0
    }

    /// The *quiet bits* of the lane run `start .. start + width`: bit `k`
    /// of the result is set iff cell `start + k` has zero transitions.
    /// This is the batch form of [`LevelWriter::is_quiet`] for a
    /// lane-major arena, where one gate's waveforms for a whole lane group
    /// are contiguous ([`crate::LaneLayout::run_start`]). Same access
    /// discipline as [`LevelWriter::transition_count`]: the run must not
    /// be written in this epoch.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`, the run leaves the arena, or any cell of
    /// the run was already written in this epoch.
    #[inline]
    pub fn quiet_run(&self, start: usize, width: usize) -> u64 {
        assert!(width <= 64, "lane run width {width} exceeds 64");
        assert!(
            start + width <= self.entries,
            "lane run {start}+{width} out of range"
        );
        assert_eq!(
            self.claimed_bits(start, width),
            0,
            "read of arena run {start}+{width} written in the same level epoch"
        );
        let mut out = 0u64;
        for k in 0..width {
            // SAFETY: the run is in range and unclaimed; under the
            // levelization contract no writer will claim it during this
            // epoch, so the plain reads cannot race.
            if unsafe { *self.len.add(start + k) } == 0 {
                out |= 1 << k;
            }
        }
        out
    }

    /// The packed *initial values* of the lane run `start .. start +
    /// width`: bit `k` of the result is cell `start + k`'s initial logic
    /// value. Together with [`LevelWriter::quiet_run`] this feeds the
    /// bit-parallel boolean kernel
    /// (`LogicFunction::eval_lanes`): all-quiet fanin runs reduce a gate
    /// to one word-wide logic op per input. Same access discipline as
    /// [`LevelWriter::view`].
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`, the run leaves the arena, or any cell of
    /// the run was already written in this epoch.
    #[inline]
    pub fn initial_run(&self, start: usize, width: usize) -> u64 {
        assert!(width <= 64, "lane run width {width} exceeds 64");
        assert!(
            start + width <= self.entries,
            "lane run {start}+{width} out of range"
        );
        assert_eq!(
            self.claimed_bits(start, width),
            0,
            "read of arena run {start}+{width} written in the same level epoch"
        );
        let mut out = 0u64;
        for k in 0..width {
            // SAFETY: in range, unclaimed, and not written this epoch per
            // the levelization contract — plain reads cannot race.
            if unsafe { *self.initial.add(start + k) } {
                out |= 1 << k;
            }
        }
        out
    }

    /// Writes constant signals into the masked lanes of a run: for every
    /// set bit `k` of `mask`, cell `start + k` becomes a constant of logic
    /// value `bit k of values`. The whole run's claims are won with at
    /// most two `fetch_or`s (one for a word-aligned full group) — the
    /// lane-packed quiet-cell fast path. Unmasked lanes are untouched and
    /// stay unclaimed.
    ///
    /// # Panics
    ///
    /// Panics if the masked run leaves the arena or any masked cell was
    /// already written in this epoch.
    pub fn write_constant_run(&self, start: usize, mask: u64, values: u64) {
        if mask == 0 {
            return;
        }
        let top = 63 - mask.leading_zeros() as usize;
        assert!(
            start + top < self.entries,
            "lane run {start}+{top} out of range"
        );
        let lost = self.claim_run(start, mask);
        assert!(
            lost == 0,
            "arena run {start} (lanes {lost:#x}) written twice within one level epoch"
        );
        let mut rem = mask;
        while rem != 0 {
            let k = rem.trailing_zeros() as usize;
            rem &= rem - 1;
            // SAFETY: this caller won the claim for every masked cell, so
            // it has exclusive write access for the rest of the epoch; the
            // indices are in bounds. The peak watermark is untouched —
            // `max(peak, 0)` is the identity.
            unsafe {
                *self.initial.add(start + k) = values >> k & 1 == 1;
                *self.len.add(start + k) = 0;
            }
        }
    }

    /// Writes a constant signal of `value` into cell `idx`, claiming it
    /// for this epoch — the quiet-cell fast path. Equivalent to
    /// `write(idx, value, &[])` but infallible: a constant (zero
    /// transitions) fits any capacity, so no overflow is possible.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or the cell was already written in
    /// this epoch.
    #[inline]
    pub fn write_constant(&self, idx: usize, value: bool) {
        assert!(idx < self.entries, "arena cell {idx} out of range");
        assert!(
            self.claim(idx),
            "arena cell {idx} written twice within one level epoch"
        );
        // SAFETY: this caller won the claim for idx, so it has exclusive
        // write access to the cell's initial/len storage for the rest of
        // the epoch; idx is in bounds. The peak watermark is untouched —
        // `max(peak, 0)` is the identity.
        unsafe {
            *self.initial.add(idx) = value;
            *self.len.add(idx) = 0;
        }
    }

    /// Writes `transitions` (with initial value `initial`) into cell
    /// `idx`, claiming it for this epoch.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityOverflow`] (leaving the cell untouched and
    /// unclaimed) if `transitions` exceeds the per-cell capacity.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or the cell was already written in
    /// this epoch.
    pub fn write(
        &self,
        idx: usize,
        initial: bool,
        transitions: &[f64],
    ) -> Result<(), CapacityOverflow> {
        assert!(idx < self.entries, "arena cell {idx} out of range");
        if transitions.len() > self.capacity {
            return Err(CapacityOverflow {
                capacity: self.capacity,
            });
        }
        // Injected forced overflow: same observable outcome as a real
        // capacity miss — cell untouched and unclaimed — taken before the
        // claim so quarantine sees a clean cell. Empty writes are exempt
        // (a constant output fits any capacity, hooked or not).
        if let Some(hook) = self.overflow_hook {
            if !transitions.is_empty() && hook(idx) {
                return Err(CapacityOverflow {
                    capacity: self.capacity,
                });
            }
        }
        assert!(
            self.claim(idx),
            "arena cell {idx} written twice within one level epoch"
        );
        // SAFETY: this caller won the claim for idx, so it has exclusive
        // write access to the cell's initial/len/times storage for the
        // rest of the epoch; the ranges are in bounds.
        unsafe {
            *self.initial.add(idx) = initial;
            *self.len.add(idx) = transitions.len() as u32;
            std::ptr::copy_nonoverlapping(
                transitions.as_ptr(),
                self.times.add(idx * self.capacity),
                transitions.len(),
            );
        }
        self.peak.fetch_max(transitions.len(), Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{evaluate_gate_bounded_scratch, GateScratch, PinDelays};

    #[test]
    fn round_trips_waveforms() {
        let mut arena = WaveformArena::new(4, 8);
        let w = Waveform::with_transitions(true, vec![1.0, 5.0, 9.0]).unwrap();
        arena.write(2, &w).unwrap();
        assert_eq!(arena.to_waveform(2), w);
        let v = arena.view(2);
        assert!(v.initial_value());
        assert_eq!(v.transitions(), &[1.0, 5.0, 9.0]);
        // Other entries are untouched constants.
        assert_eq!(arena.to_waveform(0), Waveform::constant(false));
        assert_eq!(arena.occupancy(2), 3);
        assert_eq!(arena.peak_occupancy(), 3);
    }

    #[test]
    fn write_rejects_oversized() {
        let mut arena = WaveformArena::new(1, 2);
        let w = Waveform::with_transitions(false, vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(arena.write(0, &w), Err(CapacityOverflow { capacity: 2 }));
        // Entry unchanged.
        assert_eq!(arena.to_waveform(0), Waveform::constant(false));
    }

    #[test]
    fn reset_clears_entries_but_keeps_peak() {
        let mut arena = WaveformArena::new(2, 4);
        let w = Waveform::with_transitions(true, vec![1.0, 2.0]).unwrap();
        arena.write(1, &w).unwrap();
        arena.reset();
        assert_eq!(arena.to_waveform(1), Waveform::constant(false));
        assert_eq!(arena.occupancy(1), 0);
        assert_eq!(arena.peak_occupancy(), 2);
    }

    #[test]
    fn copy_cell_is_a_passthrough() {
        let mut arena = WaveformArena::new(3, 4);
        let w = Waveform::with_transitions(true, vec![3.0, 8.0]).unwrap();
        arena.write(0, &w).unwrap();
        arena.copy_cell(0, 2);
        assert_eq!(arena.to_waveform(2), w);
        // Source is untouched, unrelated cells too.
        assert_eq!(arena.to_waveform(0), w);
        assert_eq!(arena.to_waveform(1), Waveform::constant(false));
    }

    #[test]
    fn views_feed_the_bounded_kernel() {
        let mut arena = WaveformArena::new(2, 4);
        let a = Waveform::with_transitions(false, vec![100.0]).unwrap();
        let b = Waveform::constant(true);
        arena.write(0, &a).unwrap();
        arena.write(1, &b).unwrap();
        let d = [PinDelays {
            rise: 10.0,
            fall: 10.0,
        }; 2];
        let out = evaluate_gate_bounded_scratch(
            &[arena.view(0), arena.view(1)],
            &d,
            |v| v[0] && v[1],
            &mut GateScratch::new(),
            4,
        )
        .unwrap();
        assert_eq!(out.transitions(), &[110.0]);
    }

    #[test]
    fn bounded_kernel_overflows_at_cap() {
        // An XOR fed by two staggered 4-transition inputs produces more
        // output transitions than a cap of 2 allows.
        let a = Waveform::with_transitions(false, vec![100.0, 200.0, 300.0, 400.0]).unwrap();
        let b = Waveform::with_transitions(false, vec![150.0, 250.0, 350.0, 450.0]).unwrap();
        let d = [PinDelays {
            rise: 1.0,
            fall: 1.0,
        }; 2];
        let err = evaluate_gate_bounded_scratch(
            &[&a, &b],
            &d,
            |v| v[0] ^ v[1],
            &mut GateScratch::new(),
            2,
        )
        .unwrap_err();
        assert_eq!(err, CapacityOverflow { capacity: 2 });
        // The same evaluation succeeds with room to spare.
        let out = evaluate_gate_bounded_scratch(
            &[&a, &b],
            &d,
            |v| v[0] ^ v[1],
            &mut GateScratch::new(),
            8,
        )
        .unwrap();
        assert_eq!(out.num_transitions(), 8);
    }

    #[test]
    fn partitions_are_disjoint_and_cover_the_arena() {
        let mut arena = WaveformArena::new(10, 4);
        let mut seen = [false; 10];
        for part in arena.partitions(3) {
            for local in 0..part.entries() {
                let global = part.start() + local;
                assert!(!seen[global], "cell {global} exposed by two partitions");
                seen[global] = true;
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "every cell owned by exactly one partition"
        );
        // Partition sizes: 3+3+3+1.
        let sizes: Vec<usize> = arena.partitions(3).map(|p| p.entries()).collect();
        assert_eq!(sizes, vec![3, 3, 3, 1]);
    }

    #[test]
    fn partitions_write_concurrently_without_interference() {
        let mut arena = WaveformArena::new(8, 4);
        std::thread::scope(|scope| {
            for mut part in arena.partitions(2) {
                scope.spawn(move || {
                    for local in 0..part.entries() {
                        let t = (part.start() + local) as f64 + 1.0;
                        let w = Waveform::with_transitions(true, vec![t]).unwrap();
                        part.write(local, &w).unwrap();
                    }
                });
            }
        });
        for idx in 0..8 {
            let v = arena.view(idx);
            assert!(v.initial_value());
            assert_eq!(v.transitions(), &[idx as f64 + 1.0]);
        }
        assert_eq!(arena.peak_occupancy(), 1);
    }

    #[test]
    fn level_writer_concurrent_disjoint_writes() {
        let mut arena = WaveformArena::new(64, 4);
        {
            let writer = arena.level_writer();
            let writer = &writer;
            std::thread::scope(|scope| {
                // Scattered (non-contiguous) assignment: worker w writes
                // every 4th cell — the shape a work-stealing schedule
                // produces, which contiguous partitions cannot express.
                for w in 0..4usize {
                    scope.spawn(move || {
                        for idx in (w..64).step_by(4) {
                            writer
                                .write(idx, idx % 2 == 0, &[idx as f64 + 0.5])
                                .unwrap();
                        }
                    });
                }
            });
        }
        for idx in 0..64 {
            let v = arena.view(idx);
            assert_eq!(v.initial_value(), idx % 2 == 0);
            assert_eq!(v.transitions(), &[idx as f64 + 0.5]);
        }
    }

    #[test]
    fn level_writer_quiet_bits_and_constant_writes() {
        let mut arena = WaveformArena::new(4, 2);
        let w = Waveform::with_transitions(true, vec![5.0]).unwrap();
        arena.write(1, &w).unwrap();
        arena.write(2, &Waveform::constant(true)).unwrap();
        {
            let writer = arena.level_writer();
            // Quiet = zero transitions; a toggling cell is not quiet.
            assert_eq!(writer.transition_count(0), 0);
            assert!(writer.is_quiet(0));
            assert_eq!(writer.transition_count(1), 1);
            assert!(!writer.is_quiet(1));
            assert!(writer.is_quiet(2), "constant-high is quiet too");
            // The constant fast path claims the cell like a normal write.
            writer.write_constant(3, true);
            let double = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                writer.write_constant(3, false);
            }));
            assert!(double.is_err(), "double constant write must panic");
            // Reading the quiet bit of a cell written this epoch trips
            // the same wire as a dirty view.
            let dirty = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = writer.is_quiet(3);
            }));
            assert!(dirty.is_err(), "same-epoch quiet read must panic");
        }
        assert_eq!(arena.to_waveform(3), Waveform::constant(true));
        assert_eq!(arena.occupancy(3), 0);
        // A constant write never moves the peak watermark.
        assert_eq!(arena.peak_occupancy(), 1);
        // write_constant is bit-for-bit equivalent to an empty write.
        {
            let writer = arena.level_writer();
            writer.write_constant(0, true);
            writer.write(3, true, &[]).unwrap();
        }
        assert_eq!(arena.to_waveform(0), arena.to_waveform(3));
    }

    #[test]
    fn overflow_hook_forces_capacity_miss_and_leaves_cell_unclaimed() {
        let mut arena = WaveformArena::new(4, 8);
        let hook = |idx: usize| idx == 1;
        {
            let writer = arena.level_writer_hooked(Some(&hook));
            writer.write(0, false, &[1.0]).unwrap();
            // The hooked cell reports the same error a real capacity miss
            // would, even though 1 transition fits a capacity of 8 ...
            assert_eq!(
                writer.write(1, false, &[2.0]),
                Err(CapacityOverflow { capacity: 8 })
            );
            // ... and an empty write is exempt: a quiet cell can not be
            // forced to overflow.
            writer.write(2, true, &[]).unwrap();
        }
        assert_eq!(arena.to_waveform(1), Waveform::constant(false));
        assert_eq!(arena.to_waveform(2), Waveform::constant(true));
        // The cell was left unclaimed: the quarantine epoch (no hook)
        // writes it normally.
        {
            let writer = arena.level_writer();
            writer.write(1, false, &[2.0]).unwrap();
        }
        assert_eq!(
            arena.to_waveform(1),
            Waveform::with_transitions(false, vec![2.0]).unwrap()
        );
    }

    #[test]
    fn lane_runs_round_trip_quiet_initial_and_constant_writes() {
        let mut arena = WaveformArena::new(16, 4);
        // Cells 0..8: a run with mixed initial values and one loud cell.
        let loud = Waveform::with_transitions(false, vec![3.0]).unwrap();
        arena.write(2, &loud).unwrap();
        arena.write(5, &Waveform::constant(true)).unwrap();
        {
            let writer = arena.level_writer();
            // Quiet bits: all but cell 2.
            assert_eq!(writer.quiet_run(0, 8), 0b1111_1011);
            // Initial bits: only cell 5 is high.
            assert_eq!(writer.initial_run(0, 8), 0b0010_0000);
            // Masked constant write: lanes 0, 2, 3 of run 8..12.
            writer.write_constant_run(8, 0b1101, 0b0100);
            // Unmasked lane 1 stays unclaimed and writable.
            writer.write_constant(9, true);
            // Double-writing a masked lane panics like the scalar path.
            let double = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                writer.write_constant_run(8, 0b0001, 0);
            }));
            assert!(double.is_err(), "lane double write must panic");
        }
        assert_eq!(arena.to_waveform(8), Waveform::constant(false));
        assert_eq!(arena.to_waveform(9), Waveform::constant(true));
        assert_eq!(arena.to_waveform(10), Waveform::constant(true));
        assert_eq!(arena.to_waveform(11), Waveform::constant(false));
        // An all-zero mask is a no-op.
        {
            let writer = arena.level_writer();
            writer.write_constant_run(0, 0, !0);
            assert_eq!(writer.quiet_run(12, 4), 0b1111);
        }
    }

    #[test]
    fn lane_runs_straddle_claim_words() {
        // A run crossing the 64-bit claim-word boundary (cells 60..76)
        // exercises the two-word fetch_or path a partial tail group hits.
        let mut arena = WaveformArena::new(128, 2);
        arena
            .write(70, &Waveform::with_transitions(true, vec![1.0]).unwrap())
            .unwrap();
        {
            let writer = arena.level_writer();
            let quiet = writer.quiet_run(60, 16);
            assert_eq!(quiet, !(1u64 << 10) & 0xFFFF);
            assert_eq!(writer.initial_run(60, 16), 1 << 10);
            // Claim lanes on both sides of the boundary in one call.
            writer.write_constant_run(60, 0b11_0000_0011, 0b10_0000_0001);
            let dirty = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = writer.quiet_run(60, 16);
            }));
            assert!(dirty.is_err(), "same-epoch lane read must panic");
        }
        // Mask bits 0, 1 land in claim word 0 (cells 60, 61); bits 8, 9
        // land in claim word 1 (cells 68, 69).
        assert_eq!(arena.to_waveform(60), Waveform::constant(true));
        assert_eq!(arena.to_waveform(61), Waveform::constant(false));
        assert_eq!(arena.to_waveform(68), Waveform::constant(false));
        assert_eq!(arena.to_waveform(69), Waveform::constant(true));
        // Cells outside the mask kept their prior contents.
        assert_eq!(arena.occupancy(70), 1);
    }

    #[test]
    fn lane_run_claims_race_to_one_winner() {
        // Two threads fight over overlapping masked runs; exactly one may
        // win each lane, and the loser must observe the claim panic.
        let mut arena = WaveformArena::new(64, 2);
        let writer = arena.level_writer();
        let writer = &writer;
        let wins: Vec<bool> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|t| {
                    scope.spawn(move || {
                        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            writer.write_constant_run(0, 0xFF, if t == 0 { 0xFF } else { 0 });
                        }));
                        r.is_ok()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            wins.iter().filter(|&&w| w).count(),
            1,
            "exactly one writer wins an overlapping lane run"
        );
    }

    #[test]
    fn level_writer_rejects_double_write_and_dirty_read() {
        let mut arena = WaveformArena::new(4, 2);
        {
            let writer = arena.level_writer();
            writer.write(1, true, &[5.0]).unwrap();
            // Second write of the same cell in one epoch: claim panic.
            let double = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = writer.write(1, false, &[6.0]);
            }));
            assert!(double.is_err(), "double write must panic");
            // Reading a cell written this epoch: tripwire panic.
            let dirty = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = writer.view(1);
            }));
            assert!(dirty.is_err(), "same-epoch read must panic");
            // Unwritten cells remain readable.
            assert_eq!(writer.view(0).transitions(), &[] as &[f64]);
            // Overflow leaves the cell unclaimed and untouched.
            assert_eq!(
                writer.write(2, false, &[1.0, 2.0, 3.0]),
                Err(CapacityOverflow { capacity: 2 })
            );
            writer.write(2, false, &[1.0, 2.0]).unwrap();
        }
        // A fresh epoch clears the claims.
        {
            let writer = arena.level_writer();
            writer.write(1, false, &[9.0]).unwrap();
        }
        assert_eq!(arena.view(1).transitions(), &[9.0]);
        assert_eq!(arena.view(2).transitions(), &[1.0, 2.0]);
    }
}
