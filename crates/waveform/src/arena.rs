//! A capacity-bounded `(slot, net)` waveform arena.
//!
//! The GPU algorithm of Holst et al. \[25\] stores all waveforms of a
//! launch in one flat global-memory allocation: a fixed-size buffer per
//! `(slot, net)` cell, with an overflow flag raised when a gate's output
//! history would run past its buffer. This module is the CPU realization of
//! that layout: storage for `entries` waveforms of at most `capacity`
//! transitions each, dense in one `Vec<f64>`, with explicit overflow
//! reporting instead of reallocation. The simulation engine sizes the
//! arena from its memory budget, quarantines slots whose gates overflow,
//! and re-runs them against a larger arena — so a glitch-heavy slot can
//! never abort or bloat a whole batch.

use crate::{CapacityOverflow, Waveform, WaveformRead};

/// Flat bounded storage for a batch of waveforms.
///
/// Entry `i` occupies `times[i * capacity .. i * capacity + len[i]]`; the
/// engine indexes entries as `slot_in_batch * nets + net`.
#[derive(Debug, Clone)]
pub struct WaveformArena {
    capacity: usize,
    initial: Vec<bool>,
    len: Vec<u32>,
    times: Vec<f64>,
    peak: usize,
}

/// A borrowed waveform inside a [`WaveformArena`].
#[derive(Debug, Clone, Copy)]
pub struct WaveformView<'a> {
    initial: bool,
    times: &'a [f64],
}

impl WaveformRead for WaveformView<'_> {
    fn initial_value(&self) -> bool {
        self.initial
    }
    fn transitions(&self) -> &[f64] {
        self.times
    }
}

impl WaveformArena {
    /// Allocates an arena of `entries` waveforms with room for `capacity`
    /// transitions each. All entries start as constant-low signals.
    pub fn new(entries: usize, capacity: usize) -> WaveformArena {
        WaveformArena {
            capacity,
            initial: vec![false; entries],
            len: vec![0; entries],
            times: vec![0.0; entries * capacity],
            peak: 0,
        }
    }

    /// Number of waveform entries.
    pub fn entries(&self) -> usize {
        self.len.len()
    }

    /// Per-entry transition capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resets every entry to a constant-low signal (storage is retained;
    /// the peak-occupancy watermark is kept for diagnostics).
    pub fn reset(&mut self) {
        self.initial.fill(false);
        self.len.fill(0);
    }

    /// A read view of entry `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn view(&self, idx: usize) -> WaveformView<'_> {
        let start = idx * self.capacity;
        WaveformView {
            initial: self.initial[idx],
            times: &self.times[start..start + self.len[idx] as usize],
        }
    }

    /// Writes a waveform into entry `idx`.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityOverflow`] (leaving the entry untouched) if the
    /// waveform has more than [`Self::capacity`] transitions.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn write(&mut self, idx: usize, waveform: &Waveform) -> Result<(), CapacityOverflow> {
        let transitions = waveform.transitions();
        if transitions.len() > self.capacity {
            return Err(CapacityOverflow {
                capacity: self.capacity,
            });
        }
        let start = idx * self.capacity;
        self.initial[idx] = waveform.initial_value();
        self.len[idx] = transitions.len() as u32;
        self.times[start..start + transitions.len()].copy_from_slice(transitions);
        self.peak = self.peak.max(transitions.len());
        Ok(())
    }

    /// Copies entry `idx` out into an owned [`Waveform`].
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn to_waveform(&self, idx: usize) -> Waveform {
        let view = self.view(idx);
        Waveform {
            initial: view.initial,
            transitions: view.times.to_vec(),
        }
    }

    /// Transition count of entry `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn occupancy(&self, idx: usize) -> usize {
        self.len[idx] as usize
    }

    /// The largest transition count ever written to any entry — the
    /// watermark the engine reports as peak arena occupancy (survives
    /// [`Self::reset`]).
    pub fn peak_occupancy(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{evaluate_gate_bounded_scratch, GateScratch, PinDelays};

    #[test]
    fn round_trips_waveforms() {
        let mut arena = WaveformArena::new(4, 8);
        let w = Waveform::with_transitions(true, vec![1.0, 5.0, 9.0]).unwrap();
        arena.write(2, &w).unwrap();
        assert_eq!(arena.to_waveform(2), w);
        let v = arena.view(2);
        assert!(v.initial_value());
        assert_eq!(v.transitions(), &[1.0, 5.0, 9.0]);
        // Other entries are untouched constants.
        assert_eq!(arena.to_waveform(0), Waveform::constant(false));
        assert_eq!(arena.occupancy(2), 3);
        assert_eq!(arena.peak_occupancy(), 3);
    }

    #[test]
    fn write_rejects_oversized() {
        let mut arena = WaveformArena::new(1, 2);
        let w = Waveform::with_transitions(false, vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(arena.write(0, &w), Err(CapacityOverflow { capacity: 2 }));
        // Entry unchanged.
        assert_eq!(arena.to_waveform(0), Waveform::constant(false));
    }

    #[test]
    fn reset_clears_entries_but_keeps_peak() {
        let mut arena = WaveformArena::new(2, 4);
        let w = Waveform::with_transitions(true, vec![1.0, 2.0]).unwrap();
        arena.write(1, &w).unwrap();
        arena.reset();
        assert_eq!(arena.to_waveform(1), Waveform::constant(false));
        assert_eq!(arena.occupancy(1), 0);
        assert_eq!(arena.peak_occupancy(), 2);
    }

    #[test]
    fn views_feed_the_bounded_kernel() {
        let mut arena = WaveformArena::new(2, 4);
        let a = Waveform::with_transitions(false, vec![100.0]).unwrap();
        let b = Waveform::constant(true);
        arena.write(0, &a).unwrap();
        arena.write(1, &b).unwrap();
        let d = [PinDelays {
            rise: 10.0,
            fall: 10.0,
        }; 2];
        let out = evaluate_gate_bounded_scratch(
            &[arena.view(0), arena.view(1)],
            &d,
            |v| v[0] && v[1],
            &mut GateScratch::new(),
            4,
        )
        .unwrap();
        assert_eq!(out.transitions(), &[110.0]);
    }

    #[test]
    fn bounded_kernel_overflows_at_cap() {
        // An XOR fed by two staggered 4-transition inputs produces more
        // output transitions than a cap of 2 allows.
        let a = Waveform::with_transitions(false, vec![100.0, 200.0, 300.0, 400.0]).unwrap();
        let b = Waveform::with_transitions(false, vec![150.0, 250.0, 350.0, 450.0]).unwrap();
        let d = [PinDelays {
            rise: 1.0,
            fall: 1.0,
        }; 2];
        let err = evaluate_gate_bounded_scratch(
            &[&a, &b],
            &d,
            |v| v[0] ^ v[1],
            &mut GateScratch::new(),
            2,
        )
        .unwrap_err();
        assert_eq!(err, CapacityOverflow { capacity: 2 });
        // The same evaluation succeeds with room to spare.
        let out = evaluate_gate_bounded_scratch(
            &[&a, &b],
            &d,
            |v| v[0] ^ v[1],
            &mut GateScratch::new(),
            8,
        )
        .unwrap();
        assert_eq!(out.num_transitions(), 8);
    }
}
