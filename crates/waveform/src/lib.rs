//! Glitch-accurate signal waveforms and the gate-evaluation kernel.
//!
//! A [`Waveform`] is the complete switching history of one net within a
//! simulation window: an initial logic value plus a sorted list of
//! transition times (two-valued logic; each transition toggles). This is the
//! representation the GPU algorithm of Holst et al. \[25\] streams through
//! global memory, and what this reproduction's simulator stores per
//! `(slot, net)`.
//!
//! [`evaluate_gate`] implements the waveform-processing loop each simulator
//! thread runs for one gate: merge the input histories in time order,
//! re-evaluate the gate function after every input event, schedule output
//! transitions after the pin-to-pin propagation delay of the causing pin
//! and the output polarity, and cancel *overtaken* transitions — the
//! inertial pulse filtering of the paper (Sec. IV: "inertial delay is
//! considered for pulse filtering of glitches and hazards", with inertial
//! delay equal to the propagation delay).
//!
//! # Example
//!
//! ```
//! use avfs_waveform::{Waveform, PinDelays, evaluate_gate};
//!
//! # fn main() -> Result<(), avfs_waveform::WaveformError> {
//! // An AND gate: input a rises at t=100, input b is constant 1.
//! let a = Waveform::with_transitions(false, vec![100.0])?;
//! let b = Waveform::constant(true);
//! let delays = [PinDelays { rise: 10.0, fall: 12.0 }; 2];
//! let out = evaluate_gate(&[&a, &b], &delays, |ins| ins[0] && ins[1]);
//! assert_eq!(out.transitions(), &[110.0]); // rises 10 time units later
//! # Ok(())
//! # }
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod activity;
pub mod arena;
pub mod lanes;
pub mod vcd;

pub use activity::{SwitchingActivity, WaveformStats};
pub use arena::{ArenaPartition, LevelWriter, OverflowHook, WaveformArena, WaveformView};
pub use lanes::{LaneLayout, LaneWindow};

use std::error::Error;
use std::fmt;

/// Read access to a waveform: the interface the gate-evaluation kernel
/// needs of its inputs.
///
/// Implemented by [`Waveform`] (owned storage), by references, and by
/// [`WaveformView`] (a slice into a [`WaveformArena`]), so the kernel can
/// consume either representation without copying.
pub trait WaveformRead {
    /// The value before the first transition.
    fn initial_value(&self) -> bool;
    /// The sorted transition times.
    fn transitions(&self) -> &[f64];
}

impl WaveformRead for Waveform {
    fn initial_value(&self) -> bool {
        self.initial
    }
    fn transitions(&self) -> &[f64] {
        &self.transitions
    }
}

impl<W: WaveformRead + ?Sized> WaveformRead for &W {
    fn initial_value(&self) -> bool {
        (**self).initial_value()
    }
    fn transitions(&self) -> &[f64] {
        (**self).transitions()
    }
}

/// A gate evaluation exceeded the per-net transition capacity of its
/// bounded output buffer (see [`evaluate_gate_bounded_scratch`]).
///
/// This is the CPU analogue of the GPU waveform-memory overflow flag: the
/// affected slot's result is unusable at this capacity, and the caller is
/// expected to quarantine the slot and retry with a larger allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityOverflow {
    /// The capacity (in transitions) that was exceeded.
    pub capacity: usize,
}

impl fmt::Display for CapacityOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "waveform exceeded its transition capacity of {}",
            self.capacity
        )
    }
}

impl Error for CapacityOverflow {}

/// Errors produced by waveform construction.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WaveformError {
    /// Transition times were not strictly increasing.
    UnsortedTransitions {
        /// Index of the first out-of-order transition.
        index: usize,
    },
    /// A transition time was NaN or infinite.
    NonFiniteTime {
        /// Index of the offending transition.
        index: usize,
    },
}

impl fmt::Display for WaveformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaveformError::UnsortedTransitions { index } => {
                write!(
                    f,
                    "transition {index} is not strictly after its predecessor"
                )
            }
            WaveformError::NonFiniteTime { index } => {
                write!(f, "transition {index} has a non-finite time")
            }
        }
    }
}

impl Error for WaveformError {}

/// The switching history of one signal: an initial value and strictly
/// increasing toggle times.
#[derive(Debug, Clone, PartialEq)]
pub struct Waveform {
    initial: bool,
    transitions: Vec<f64>,
}

impl Waveform {
    /// A constant signal with no transitions.
    pub fn constant(value: bool) -> Waveform {
        Waveform {
            initial: value,
            transitions: Vec::new(),
        }
    }

    /// Builds a waveform from an initial value and strictly increasing
    /// transition times.
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError::UnsortedTransitions`] if times are not
    /// strictly increasing and [`WaveformError::NonFiniteTime`] for
    /// NaN/infinite times.
    pub fn with_transitions(
        initial: bool,
        transitions: Vec<f64>,
    ) -> Result<Waveform, WaveformError> {
        for (i, &t) in transitions.iter().enumerate() {
            if !t.is_finite() {
                return Err(WaveformError::NonFiniteTime { index: i });
            }
            if i > 0 && transitions[i - 1] >= t {
                return Err(WaveformError::UnsortedTransitions { index: i });
            }
        }
        Ok(Waveform {
            initial,
            transitions,
        })
    }

    /// The waveform of a two-pattern (launch/capture) stimulus: value `v1`
    /// initially, switching to `v2` at `t` if they differ.
    pub fn from_pattern(v1: bool, v2: bool, t: f64) -> Waveform {
        if v1 == v2 {
            Waveform::constant(v1)
        } else {
            Waveform {
                initial: v1,
                transitions: vec![t],
            }
        }
    }

    /// The value before the first transition.
    pub fn initial_value(&self) -> bool {
        self.initial
    }

    /// The value after the last transition.
    pub fn final_value(&self) -> bool {
        self.initial ^ (self.transitions.len() % 2 == 1)
    }

    /// The value at time `t` (transitions take effect *at* their time).
    pub fn value_at(&self, t: f64) -> bool {
        let flips = self.transitions.partition_point(|&x| x <= t);
        self.initial ^ (flips % 2 == 1)
    }

    /// The sorted transition times.
    pub fn transitions(&self) -> &[f64] {
        &self.transitions
    }

    /// Number of transitions (the switching activity of this net).
    pub fn num_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// The time of the last transition, or `None` for a constant signal.
    pub fn last_transition(&self) -> Option<f64> {
        self.transitions.last().copied()
    }

    /// Iterates `(time, new_value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, bool)> + '_ {
        self.transitions
            .iter()
            .enumerate()
            .map(move |(i, &t)| (t, self.initial ^ (i % 2 == 0)))
    }

    /// Removes pulses narrower than `min_width`: any pair of consecutive
    /// transitions closer than `min_width` is deleted. Applied repeatedly
    /// until stable, so the result contains no sub-threshold pulse.
    ///
    /// This is the *explicit* inertial filter; [`evaluate_gate`] performs
    /// the equivalent cancellation on the fly via transition overtaking.
    pub fn filter_pulses(&self, min_width: f64) -> Waveform {
        let mut times = self.transitions.clone();
        loop {
            let mut removed = false;
            let mut kept: Vec<f64> = Vec::with_capacity(times.len());
            let mut i = 0;
            while i < times.len() {
                // A pulse is a pair (times[i], times[i+1]) returning to the
                // pre-pulse value.
                if i + 1 < times.len() && times[i + 1] - times[i] < min_width {
                    i += 2;
                    removed = true;
                } else {
                    kept.push(times[i]);
                    i += 1;
                }
            }
            times = kept;
            if !removed {
                break;
            }
        }
        Waveform {
            initial: self.initial,
            transitions: times,
        }
    }

    /// Internal invariant check (used by debug assertions and tests).
    fn check_invariants(&self) -> bool {
        self.transitions.iter().all(|t| t.is_finite())
            && self.transitions.windows(2).all(|w| w[0] < w[1])
    }
}

impl Default for Waveform {
    /// A constant-low signal.
    fn default() -> Self {
        Waveform::constant(false)
    }
}

/// Pin-to-pin propagation delays for one gate input pin, by output
/// transition polarity.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PinDelays {
    /// Delay when the output rises.
    pub rise: f64,
    /// Delay when the output falls.
    pub fall: f64,
}

impl PinDelays {
    /// Selects the delay for an output transition to `new_value`.
    #[inline]
    pub fn for_output(&self, new_value: bool) -> f64 {
        if new_value {
            self.rise
        } else {
            self.fall
        }
    }

    /// The larger of the two delays.
    pub fn max(&self) -> f64 {
        self.rise.max(self.fall)
    }
}

/// Reusable working memory for [`evaluate_gate_scratch`].
///
/// One instance per simulation worker avoids the per-gate heap traffic
/// that would otherwise dominate the oblivious (every-gate-every-slot)
/// simulation schedule.
#[derive(Debug, Default)]
pub struct GateScratch {
    values: Vec<bool>,
    cursors: Vec<usize>,
    sched: Vec<f64>,
}

impl GateScratch {
    /// Creates empty scratch space.
    pub fn new() -> GateScratch {
        GateScratch::default()
    }

    /// The output transitions left behind by the last successful
    /// [`evaluate_gate_bounded_raw`] call — sorted, strictly increasing,
    /// at most the requested cap. Valid until the scratch is reused.
    pub fn scheduled(&self) -> &[f64] {
        &self.sched
    }
}

/// Evaluates one gate over its input waveforms — the per-thread waveform
/// processing loop of the parallel time simulator.
///
/// `delays[p]` gives the pin-to-pin delays from input `p` to the output;
/// `eval` is the gate's Boolean function. The output waveform reflects
/// glitch-accurate timing with inertial pulse filtering by transition
/// overtaking: a newly caused output transition cancels any already
/// scheduled transition that would occur at the same time or later.
///
/// # Panics
///
/// Panics if `inputs.len() != delays.len()` or either is empty.
pub fn evaluate_gate(
    inputs: &[&Waveform],
    delays: &[PinDelays],
    eval: impl Fn(&[bool]) -> bool,
) -> Waveform {
    evaluate_gate_scratch(inputs, delays, eval, &mut GateScratch::new())
}

/// [`evaluate_gate`] with caller-provided scratch buffers (the hot-loop
/// form used by the engine).
///
/// # Panics
///
/// Panics if `inputs.len() != delays.len()` or either is empty.
pub fn evaluate_gate_scratch<W: WaveformRead>(
    inputs: &[W],
    delays: &[PinDelays],
    eval: impl Fn(&[bool]) -> bool,
    scratch: &mut GateScratch,
) -> Waveform {
    evaluate_gate_bounded_scratch(inputs, delays, eval, scratch, usize::MAX)
        .expect("unbounded evaluation cannot overflow")
}

/// [`evaluate_gate_scratch`] with a hard cap on *scheduled* output
/// transitions — the bounded-arena form used by the fault-isolated engine.
///
/// The cap is enforced on the peak size of the pending-transition schedule,
/// not just the final count: like the GPU original, which allocates a fixed
/// waveform buffer per `(slot, net)` and raises an overflow flag when a
/// write would run past it, evaluation aborts the moment the schedule needs
/// its `cap + 1`-th entry, even if later cancellations would have shrunk it
/// again. The returned waveform therefore always fits in `cap` transitions.
///
/// # Errors
///
/// Returns [`CapacityOverflow`] when the schedule would exceed `cap`.
///
/// # Panics
///
/// Panics if `inputs.len() != delays.len()` or either is empty.
pub fn evaluate_gate_bounded_scratch<W: WaveformRead>(
    inputs: &[W],
    delays: &[PinDelays],
    eval: impl Fn(&[bool]) -> bool,
    scratch: &mut GateScratch,
    cap: usize,
) -> Result<Waveform, CapacityOverflow> {
    let initial = evaluate_gate_bounded_raw(inputs, delays, eval, scratch, cap)?;
    let out = Waveform {
        initial,
        // Exact-size copy out of the reusable buffer.
        transitions: scratch.sched.as_slice().to_vec(),
    };
    debug_assert!(out.check_invariants());
    Ok(out)
}

/// The allocation-free core of [`evaluate_gate_bounded_scratch`]: returns
/// the output's initial value and leaves its transitions in
/// [`GateScratch::scheduled`] instead of materializing an owned
/// [`Waveform`] — the form the engine uses to write gate outputs directly
/// into the waveform arena.
///
/// # Errors
///
/// Returns [`CapacityOverflow`] when the schedule would exceed `cap`.
///
/// # Panics
///
/// Panics if `inputs.len() != delays.len()` or either is empty.
pub fn evaluate_gate_bounded_raw<W: WaveformRead>(
    inputs: &[W],
    delays: &[PinDelays],
    eval: impl Fn(&[bool]) -> bool,
    scratch: &mut GateScratch,
    cap: usize,
) -> Result<bool, CapacityOverflow> {
    assert_eq!(
        inputs.len(),
        delays.len(),
        "one PinDelays entry per input pin required"
    );
    assert!(!inputs.is_empty(), "gate must have at least one input");

    let values = &mut scratch.values;
    values.clear();
    values.extend(inputs.iter().map(|w| w.initial_value()));
    let initial_out = eval(values);

    // Scheduled output transition times (sorted ascending, alternating
    // from initial_out). `scheduled_value` is the output value after all
    // currently scheduled transitions.
    let sched = &mut scratch.sched;
    sched.clear();

    // Fast path: quiescent inputs produce a constant output.
    if inputs.iter().all(|w| w.transitions().is_empty()) {
        return Ok(initial_out);
    }

    let mut scheduled_value = initial_out;

    // K-way merge over the input transition lists.
    let cursors = &mut scratch.cursors;
    cursors.clear();
    cursors.resize(inputs.len(), 0);
    loop {
        // Find the earliest pending input event.
        let mut best: Option<(f64, usize)> = None;
        for (p, w) in inputs.iter().enumerate() {
            if let Some(&t) = w.transitions().get(cursors[p]) {
                if best.is_none_or(|(bt, _)| t < bt) {
                    best = Some((t, p));
                }
            }
        }
        let Some((t, pin)) = best else { break };
        cursors[pin] += 1;
        values[pin] = !values[pin];

        let new_out = eval(values);
        if new_out == scheduled_value {
            continue;
        }
        let tt = t + delays[pin].for_output(new_out);
        // Inertial cancellation: the new cause overtakes any scheduled
        // transition at tt or later.
        while let Some(&last) = sched.last() {
            if last >= tt {
                sched.pop();
                scheduled_value = !scheduled_value;
            } else {
                break;
            }
        }
        if scheduled_value != new_out {
            if sched.len() >= cap {
                return Err(CapacityOverflow { capacity: cap });
            }
            sched.push(tt);
            scheduled_value = new_out;
        }
    }

    debug_assert!(sched.iter().all(|t| t.is_finite()) && sched.windows(2).all(|w| w[0] < w[1]));
    Ok(initial_out)
}

/// [`evaluate_gate_bounded_raw`] over a *segmented* delay timeline — the
/// piecewise-operating-point form used by the AVFS scenario engine.
///
/// The simulation window is split into `boundaries.len() + 1` *segments*
/// by the strictly increasing `boundaries` (segment start times in ps,
/// excluding the implicit segment 0 start at −∞). An input event at time
/// `t` belongs to segment `boundaries.partition_point(|b| *b <= t)` — an
/// event **exactly at** a boundary belongs to the *later* segment, the
/// convention under which a supply step applied at the launch instant of
/// a transition already sees the new voltage. The pin-to-output delay
/// charged to that event is `delays(segment, pin)`.
///
/// Segment selection is by the *cause* (input event) time, not the
/// resulting output time: the voltage in effect while the gate
/// propagates the event is the one at the moment the input switches, the
/// same first-order approximation the per-segment delay tables make.
///
/// With empty `boundaries` this performs the identical operation
/// sequence as [`evaluate_gate_bounded_raw`] with `delays(0, ·)` — the
/// single-segment identity the scenario layer's constant-schedule ≡
/// static-run guarantee rests on.
///
/// # Errors
///
/// Returns [`CapacityOverflow`] when the schedule would exceed `cap`.
///
/// # Panics
///
/// Panics if `inputs` is empty.
pub fn evaluate_gate_bounded_raw_segmented<W: WaveformRead>(
    inputs: &[W],
    boundaries: &[f64],
    delays: impl Fn(usize, usize) -> PinDelays,
    eval: impl Fn(&[bool]) -> bool,
    scratch: &mut GateScratch,
    cap: usize,
) -> Result<bool, CapacityOverflow> {
    assert!(!inputs.is_empty(), "gate must have at least one input");

    let values = &mut scratch.values;
    values.clear();
    values.extend(inputs.iter().map(|w| w.initial_value()));
    let initial_out = eval(values);

    let sched = &mut scratch.sched;
    sched.clear();

    // Fast path: quiescent inputs produce a constant output.
    if inputs.iter().all(|w| w.transitions().is_empty()) {
        return Ok(initial_out);
    }

    let mut scheduled_value = initial_out;

    // K-way merge over the input transition lists (identical to
    // `evaluate_gate_bounded_raw` except for the delay lookup).
    let cursors = &mut scratch.cursors;
    cursors.clear();
    cursors.resize(inputs.len(), 0);
    loop {
        let mut best: Option<(f64, usize)> = None;
        for (p, w) in inputs.iter().enumerate() {
            if let Some(&t) = w.transitions().get(cursors[p]) {
                if best.is_none_or(|(bt, _)| t < bt) {
                    best = Some((t, p));
                }
            }
        }
        let Some((t, pin)) = best else { break };
        cursors[pin] += 1;
        values[pin] = !values[pin];

        let new_out = eval(values);
        if new_out == scheduled_value {
            continue;
        }
        let segment = boundaries.partition_point(|b| *b <= t);
        let tt = t + delays(segment, pin).for_output(new_out);
        while let Some(&last) = sched.last() {
            if last >= tt {
                sched.pop();
                scheduled_value = !scheduled_value;
            } else {
                break;
            }
        }
        if scheduled_value != new_out {
            if sched.len() >= cap {
                return Err(CapacityOverflow { capacity: cap });
            }
            sched.push(tt);
            scheduled_value = new_out;
        }
    }

    debug_assert!(sched.iter().all(|t| t.is_finite()) && sched.windows(2).all(|w| w[0] < w[1]));
    Ok(initial_out)
}

/// Propagates a waveform through an identity stage with per-polarity delay
/// (used for primary-output observation nodes).
pub fn delay_waveform(input: &Waveform, delays: PinDelays) -> Waveform {
    evaluate_gate(&[input], &[delays], |v| v[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn wf(initial: bool, times: &[f64]) -> Waveform {
        Waveform::with_transitions(initial, times.to_vec()).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Waveform::with_transitions(false, vec![1.0, 2.0]).is_ok());
        assert!(matches!(
            Waveform::with_transitions(false, vec![2.0, 1.0]),
            Err(WaveformError::UnsortedTransitions { index: 1 })
        ));
        assert!(matches!(
            Waveform::with_transitions(false, vec![1.0, 1.0]),
            Err(WaveformError::UnsortedTransitions { index: 1 })
        ));
        assert!(matches!(
            Waveform::with_transitions(false, vec![f64::NAN]),
            Err(WaveformError::NonFiniteTime { index: 0 })
        ));
    }

    #[test]
    fn values_over_time() {
        let w = wf(false, &[10.0, 20.0, 30.0]);
        assert!(!w.initial_value());
        assert!(w.final_value());
        assert!(!w.value_at(9.9));
        assert!(w.value_at(10.0)); // effective at its time
        assert!(!w.value_at(25.0));
        assert!(w.value_at(30.0));
        assert_eq!(w.num_transitions(), 3);
        assert_eq!(w.last_transition(), Some(30.0));
    }

    #[test]
    fn pattern_waveforms() {
        assert_eq!(
            Waveform::from_pattern(true, true, 5.0),
            Waveform::constant(true)
        );
        let w = Waveform::from_pattern(false, true, 5.0);
        assert_eq!(w.transitions(), &[5.0]);
        assert!(w.final_value());
    }

    #[test]
    fn iter_reports_new_values() {
        let w = wf(true, &[1.0, 2.0]);
        let seq: Vec<_> = w.iter().collect();
        assert_eq!(seq, vec![(1.0, false), (2.0, true)]);
    }

    #[test]
    fn buffer_shifts_by_delay() {
        let input = wf(false, &[100.0, 150.0]);
        let out = delay_waveform(
            &input,
            PinDelays {
                rise: 7.0,
                fall: 9.0,
            },
        );
        assert_eq!(out.transitions(), &[107.0, 159.0]);
        assert!(!out.initial_value());
    }

    #[test]
    fn inverter_flips_polarity_delays() {
        let input = wf(false, &[100.0]);
        // Input rises → output falls → fall delay applies.
        let out = evaluate_gate(
            &[&input],
            &[PinDelays {
                rise: 5.0,
                fall: 11.0,
            }],
            |v| !v[0],
        );
        assert!(out.initial_value());
        assert_eq!(out.transitions(), &[111.0]);
    }

    #[test]
    fn and_gate_masks_controlled_input() {
        let a = wf(false, &[100.0]);
        let b = Waveform::constant(false); // controlling 0: output stays 0
        let out = evaluate_gate(&[&a, &b], &[PinDelays::default(); 2], |v| v[0] && v[1]);
        assert_eq!(out.num_transitions(), 0);
        assert!(!out.initial_value());
    }

    #[test]
    fn nand_glitch_from_skewed_inputs() {
        // a falls at 105, b rises at 100: window [100,105) has a=1,b=1 →
        // the NAND output dips and recovers: a glitch survives when the
        // delays keep the pulse open.
        let a = wf(true, &[105.0]);
        let b = wf(false, &[100.0]);
        let d = PinDelays {
            rise: 10.0,
            fall: 10.0,
        };
        let out = evaluate_gate(&[&a, &b], &[d, d], |v| !(v[0] && v[1]));
        // Fall caused at 100+10=110, rise caused at 105+10=115.
        assert!(out.initial_value());
        assert_eq!(out.transitions(), &[110.0, 115.0]);
        assert!(out.final_value());
    }

    #[test]
    fn glitch_filtered_when_delays_close_it() {
        // Same stimulus, but the rise delay is shorter than the fall delay:
        // the recovering rise at 105+4=109 overtakes the fall at 100+10=110
        // → both cancel, no output pulse.
        let a = wf(true, &[105.0]);
        let b = wf(false, &[100.0]);
        let d = PinDelays {
            rise: 4.0,
            fall: 10.0,
        };
        let out = evaluate_gate(&[&a, &b], &[d, d], |v| !(v[0] && v[1]));
        assert_eq!(out.num_transitions(), 0);
        assert!(out.initial_value());
        assert!(out.final_value());
    }

    #[test]
    fn narrow_input_pulse_filtered() {
        // 3-wide input pulse through a buffer with rise 10 / fall 5:
        // rise lands at t+10, fall at t+3+5=t+8 → overtakes → silence.
        let input = wf(false, &[100.0, 103.0]);
        let out = delay_waveform(
            &input,
            PinDelays {
                rise: 10.0,
                fall: 5.0,
            },
        );
        assert_eq!(out.num_transitions(), 0);
    }

    #[test]
    fn simultaneous_input_events() {
        // Both NAND inputs swap at the same instant (1,0) → (0,1); the
        // output stays 1 both before and after, and any internal hazard is
        // resolved by the overtaking rule (rise scheduled first is popped).
        let a = wf(true, &[100.0]);
        let b = wf(false, &[100.0]);
        let d = PinDelays {
            rise: 10.0,
            fall: 10.0,
        };
        let out = evaluate_gate(&[&a, &b], &[d, d], |v| !(v[0] && v[1]));
        assert!(out.initial_value());
        assert_eq!(out.num_transitions(), 0);
    }

    #[test]
    fn per_pin_delays_differ() {
        // XOR with different pin delays: pin 0 slow, pin 1 fast.
        let a = wf(false, &[100.0]);
        let b = wf(false, &[200.0]);
        let d0 = PinDelays {
            rise: 20.0,
            fall: 20.0,
        };
        let d1 = PinDelays {
            rise: 3.0,
            fall: 3.0,
        };
        let out = evaluate_gate(&[&a, &b], &[d0, d1], |v| v[0] ^ v[1]);
        assert_eq!(out.transitions(), &[120.0, 203.0]);
    }

    #[test]
    fn filter_pulses_removes_narrow() {
        let w = wf(false, &[100.0, 101.0, 200.0, 260.0]);
        let f = w.filter_pulses(5.0);
        assert_eq!(f.transitions(), &[200.0, 260.0]);
        // Wide pulses survive.
        let f2 = w.filter_pulses(0.5);
        assert_eq!(f2.transitions(), w.transitions());
    }

    #[test]
    fn filter_pulses_cascades() {
        // Removing the inner pulse merges the outer pair, which is then
        // itself narrow and must be removed too.
        let w = wf(false, &[100.0, 103.0, 104.0, 107.0]);
        let f = w.filter_pulses(5.0);
        assert_eq!(f.num_transitions(), 0);
    }

    #[test]
    fn segmented_boundary_event_uses_later_segment() {
        // INV with a slow segment 0 (delay 5) and a fast segment 1
        // (delay 1) starting at t = 10.
        let seg_delays = [
            PinDelays {
                rise: 5.0,
                fall: 5.0,
            },
            PinDelays {
                rise: 1.0,
                fall: 1.0,
            },
        ];
        let mut scratch = GateScratch::new();
        let mut run = |event_t: f64| {
            let input = wf(false, &[event_t]);
            let initial = evaluate_gate_bounded_raw_segmented(
                &[&input],
                &[10.0],
                |seg, _pin| seg_delays[seg],
                |v| !v[0],
                &mut scratch,
                usize::MAX,
            )
            .unwrap();
            (initial, scratch.scheduled().to_vec())
        };
        // Just before the boundary: segment 0's delay applies.
        assert_eq!(run(9.9), (true, vec![9.9 + 5.0]));
        // Exactly at the boundary: the event belongs to the *later*
        // segment (partition_point with `<=`).
        assert_eq!(run(10.0), (true, vec![10.0 + 1.0]));
        // Past the boundary: still segment 1.
        assert_eq!(run(10.1), (true, vec![10.1 + 1.0]));
    }

    #[test]
    fn segmented_with_empty_boundaries_matches_raw() {
        // Skewed NAND inputs that produce a glitch — a case exercising
        // cancellation and capacity bookkeeping in both variants.
        let a = wf(true, &[10.0, 40.0]);
        let b = wf(false, &[12.0, 35.0, 36.0]);
        let delays = [
            PinDelays {
                rise: 3.0,
                fall: 4.0,
            },
            PinDelays {
                rise: 2.5,
                fall: 6.0,
            },
        ];
        let mut s1 = GateScratch::new();
        let mut s2 = GateScratch::new();
        let nand = |v: &[bool]| !(v[0] && v[1]);
        let i1 = evaluate_gate_bounded_raw(&[&a, &b], &delays, nand, &mut s1, 8).unwrap();
        let i2 = evaluate_gate_bounded_raw_segmented(
            &[&a, &b],
            &[],
            |_seg, pin| delays[pin],
            nand,
            &mut s2,
            8,
        )
        .unwrap();
        assert_eq!(i1, i2);
        assert_eq!(s1.scheduled(), s2.scheduled());
    }

    #[test]
    fn segmented_overflow_still_detected() {
        let input = wf(false, &[1.0, 2.0, 3.0, 4.0]);
        let mut scratch = GateScratch::new();
        let err = evaluate_gate_bounded_raw_segmented(
            &[&input],
            &[2.5],
            |_seg, _pin| PinDelays {
                rise: 0.1,
                fall: 0.1,
            },
            |v| v[0],
            &mut scratch,
            2,
        )
        .unwrap_err();
        assert_eq!(err.capacity, 2);
    }

    proptest! {
        #[test]
        fn value_at_consistent_with_final(times in proptest::collection::vec(0.0f64..1e6, 0..20)) {
            let mut sorted = times.clone();
            sorted.sort_by(f64::total_cmp);
            sorted.dedup();
            let w = Waveform::with_transitions(false, sorted.clone()).unwrap();
            prop_assert_eq!(w.value_at(2e6), w.final_value());
            prop_assert_eq!(w.value_at(-1.0), w.initial_value());
        }

        #[test]
        fn gate_output_invariants(
            a_times in proptest::collection::vec(0.0f64..1000.0, 0..12),
            b_times in proptest::collection::vec(0.0f64..1000.0, 0..12),
            rise in 1.0f64..30.0,
            fall in 1.0f64..30.0,
        ) {
            let mut a_t = a_times.clone(); a_t.sort_by(f64::total_cmp); a_t.dedup();
            let mut b_t = b_times.clone(); b_t.sort_by(f64::total_cmp); b_t.dedup();
            let a = Waveform::with_transitions(false, a_t).unwrap();
            let b = Waveform::with_transitions(true, b_t).unwrap();
            let d = PinDelays { rise, fall };
            let out = evaluate_gate(&[&a, &b], &[d, d], |v| !(v[0] && v[1]));
            // Output transitions strictly increasing and finite.
            prop_assert!(out.check_invariants());
            // Causality: no output transition before the earliest input
            // event plus the smallest delay.
            if let Some(&first_out) = out.transitions().first() {
                let first_in = a.transitions().first().copied()
                    .into_iter()
                    .chain(b.transitions().first().copied())
                    .fold(f64::INFINITY, f64::min);
                prop_assert!(first_out >= first_in + rise.min(fall) - 1e-9);
            }
            // Steady state: the final value equals the gate function of the
            // final input values.
            prop_assert_eq!(out.final_value(), !(a.final_value() && b.final_value()));
            // Initial value equals the function of initial inputs.
            prop_assert_eq!(out.initial_value(), !(a.initial_value() && b.initial_value()));
        }

        #[test]
        fn filter_pulses_idempotent(
            times in proptest::collection::vec(0.0f64..1000.0, 0..16),
            width in 0.1f64..50.0,
        ) {
            let mut t = times.clone(); t.sort_by(f64::total_cmp); t.dedup();
            let w = Waveform::with_transitions(false, t).unwrap();
            let once = w.filter_pulses(width);
            let twice = once.filter_pulses(width);
            prop_assert_eq!(&once, &twice);
            // No surviving pulse is narrower than the width.
            for pair in once.transitions().windows(2).step_by(2) {
                prop_assert!(pair[1] - pair[0] >= width);
            }
        }

        #[test]
        fn buffer_chain_associativity(
            times in proptest::collection::vec(0.0f64..1000.0, 0..10),
            d1 in 1.0f64..20.0,
            d2 in 1.0f64..20.0,
        ) {
            // Two buffers with symmetric delays compose additively.
            let mut t = times.clone(); t.sort_by(f64::total_cmp); t.dedup();
            let w = Waveform::with_transitions(false, t).unwrap();
            let sym1 = PinDelays { rise: d1, fall: d1 };
            let sym2 = PinDelays { rise: d2, fall: d2 };
            let sym12 = PinDelays { rise: d1 + d2, fall: d1 + d2 };
            let chained = delay_waveform(&delay_waveform(&w, sym1), sym2);
            let direct = delay_waveform(&w, sym12);
            prop_assert_eq!(chained.transitions().len(), direct.transitions().len());
            for (x, y) in chained.transitions().iter().zip(direct.transitions()) {
                prop_assert!((x - y).abs() < 1e-9);
            }
        }
    }
}
