//! Value-change-dump (VCD) export of simulated waveforms.
//!
//! The paper's flow analyzes waveforms on the device; a practical tool
//! also needs to hand them to humans. This writer emits standard IEEE
//! 1364 VCD that GTKWave & co. read, with picosecond timescale and one
//! scalar variable per exported net.

use crate::Waveform;
use std::fmt::Write as _;

/// One named signal to export.
#[derive(Debug, Clone)]
pub struct VcdSignal<'a> {
    /// The display name (any non-empty string; spaces are replaced).
    pub name: &'a str,
    /// The waveform to dump.
    pub waveform: &'a Waveform,
}

/// Serializes signals into VCD text.
///
/// Transition times are rounded to whole picoseconds (the timescale);
/// simultaneous changes share a timestamp block as the format requires.
///
/// # Example
///
/// ```
/// use avfs_waveform::{Waveform, vcd};
///
/// # fn main() -> Result<(), avfs_waveform::WaveformError> {
/// let a = Waveform::with_transitions(false, vec![100.0, 250.0])?;
/// let text = vcd::write_vcd("demo", &[vcd::VcdSignal { name: "a", waveform: &a }]);
/// assert!(text.contains("$timescale 1ps $end"));
/// assert!(text.contains("#100"));
/// # Ok(())
/// # }
/// ```
pub fn write_vcd(module: &str, signals: &[VcdSignal<'_>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "$date avfs-sim $end");
    let _ = writeln!(out, "$version avfs-sim waveform export $end");
    let _ = writeln!(out, "$timescale 1ps $end");
    let _ = writeln!(out, "$scope module {} $end", sanitize(module));
    for (k, sig) in signals.iter().enumerate() {
        let _ = writeln!(
            out,
            "$var wire 1 {} {} $end",
            id_code(k),
            sanitize(sig.name)
        );
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");

    // Initial values.
    let _ = writeln!(out, "#0");
    let _ = writeln!(out, "$dumpvars");
    for (k, sig) in signals.iter().enumerate() {
        let _ = writeln!(
            out,
            "{}{}",
            u8::from(sig.waveform.initial_value()),
            id_code(k)
        );
    }
    let _ = writeln!(out, "$end");

    // Merge all transitions in time order.
    let mut events: Vec<(u64, usize, bool)> = Vec::new();
    for (k, sig) in signals.iter().enumerate() {
        for (t, v) in sig.waveform.iter() {
            events.push((t.round().max(0.0) as u64, k, v));
        }
    }
    events.sort_by_key(|&(t, k, _)| (t, k));
    let mut last_t: Option<u64> = None;
    for (t, k, v) in events {
        if last_t != Some(t) {
            let _ = writeln!(out, "#{t}");
            last_t = Some(t);
        }
        let _ = writeln!(out, "{}{}", u8::from(v), id_code(k));
    }
    out
}

/// Short identifier codes from the VCD printable range (`!` … `~`).
fn id_code(mut index: usize) -> String {
    let mut code = String::new();
    loop {
        code.push((b'!' + (index % 94) as u8) as char);
        index /= 94;
        if index == 0 {
            break;
        }
        index -= 1;
    }
    code
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect();
    if cleaned.is_empty() {
        "_".to_owned()
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wf(initial: bool, times: &[f64]) -> Waveform {
        Waveform::with_transitions(initial, times.to_vec()).expect("valid")
    }

    #[test]
    fn header_and_initial_values() {
        let a = wf(true, &[]);
        let text = write_vcd(
            "top",
            &[VcdSignal {
                name: "clk out",
                waveform: &a,
            }],
        );
        assert!(text.contains("$timescale 1ps $end"));
        assert!(text.contains("$scope module top $end"));
        assert!(text.contains("$var wire 1 ! clk_out $end"));
        assert!(text.contains("$dumpvars\n1!"));
    }

    #[test]
    fn transitions_in_time_order() {
        let a = wf(false, &[100.0, 300.0]);
        let b = wf(true, &[200.0]);
        let text = write_vcd(
            "t",
            &[
                VcdSignal {
                    name: "a",
                    waveform: &a,
                },
                VcdSignal {
                    name: "b",
                    waveform: &b,
                },
            ],
        );
        let pos = |needle: &str| {
            text.find(needle)
                .unwrap_or_else(|| panic!("missing {needle}"))
        };
        assert!(pos("#100") < pos("#200"));
        assert!(pos("#200") < pos("#300"));
        // a's first transition goes high, b's goes low.
        assert!(text.contains("#100\n1!"));
        assert!(text.contains("#200\n0\""));
        assert!(text.contains("#300\n0!"));
    }

    #[test]
    fn simultaneous_changes_share_timestamp() {
        let a = wf(false, &[50.0]);
        let b = wf(false, &[50.0]);
        let text = write_vcd(
            "s",
            &[
                VcdSignal {
                    name: "a",
                    waveform: &a,
                },
                VcdSignal {
                    name: "b",
                    waveform: &b,
                },
            ],
        );
        assert_eq!(text.matches("#50").count(), 1);
    }

    #[test]
    fn id_codes_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for k in 0..500 {
            let code = id_code(k);
            assert!(code.bytes().all(|b| (b'!'..=b'~').contains(&b)));
            assert!(seen.insert(code), "duplicate code at {k}");
        }
        assert_eq!(id_code(0), "!");
        assert_eq!(id_code(93), "~");
        assert_eq!(id_code(94), "!!");
    }
}
