//! Lane-major (slot-packed) arena addressing.
//!
//! The GPU algorithm keeps a warp's threads uniform across
//! operating-point/stimuli *slots*: one gate evaluation advances many slots
//! per instruction. [`LaneLayout`] is the CPU realization of that memory
//! shape. Slots are grouped into *lane groups* of `L` consecutive slots,
//! and within a group one net's `L` waveforms are stored **contiguously**
//! (net-major within the group), so a gate's per-lane data is one dense
//! run:
//!
//! ```text
//! slot-major (L = 1):            lane-major (L = 4, 2 nets):
//!   s0·n0  s0·n1 │ s1·n0  s1·n1     n0: s0 s1 s2 s3 │ n1: s0 s1 s2 s3
//!   └─ one slot ─┘                  └──── one lane group (4 slots) ────┘
//! ```
//!
//! `L = 1` degenerates *exactly* to the slot-major layout (`index =
//! slot · nodes + net`), which is what makes the lane-packed engine
//! bit-for-bit comparable to the scalar reference. A slot count that is
//! not a multiple of `L` produces one *partial tail group* of width `w <
//! L`; the tail packs its runs at width `w`, so the arena stays dense
//! (`slots · nodes` entries total, same as slot-major).
//!
//! Lane *masks* (`u64`, bit `k` ↔ lane `k`) ride on this layout: the
//! claim bitmap of [`crate::WaveformArena`] stores 64 claims per atomic
//! word, and a full group's run never straddles a word when `L` is a
//! power of two ≤ 64, so batch claims are a single `fetch_or`
//! ([`crate::LevelWriter::write_constant_run`]).

/// Addressing for a lane-major waveform arena: `lanes` slots per group
/// over `nodes` nets, `slots` slots total.
///
/// The forward map is
///
/// ```text
/// group g = slot / L,  lane = slot % L,  w = group width (≤ L)
/// index(slot, net) = g·L·nodes + net·w + lane
/// ```
///
/// # Example — lane-major round-trips and degenerates to slot-major
///
/// ```
/// use avfs_waveform::LaneLayout;
///
/// // 2 nets, 5 slots, lane width 4: one full group + a tail of width 1.
/// let lay = LaneLayout::new(4, 2, 5);
/// assert_eq!(lay.groups(), 2);
/// assert_eq!(lay.group_width(0), 4);
/// assert_eq!(lay.group_width(1), 1);
/// // Every (slot, net) maps to a distinct cell and back to its slot.
/// let mut seen = vec![false; lay.entries()];
/// for slot in 0..5 {
///     for net in 0..2 {
///         let idx = lay.index(slot, net);
///         assert!(!seen[idx]);
///         seen[idx] = true;
///         assert_eq!(lay.slot_of(idx), slot);
///     }
/// }
/// assert!(seen.iter().all(|&s| s), "dense: slots × nodes cells");
///
/// // L = 1 is exactly the scalar slot-major layout.
/// let scalar = LaneLayout::new(1, 2, 5);
/// for slot in 0..5 {
///     for net in 0..2 {
///         assert_eq!(scalar.index(slot, net), slot * 2 + net);
///     }
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneLayout {
    lanes: usize,
    nodes: usize,
    slots: usize,
}

impl LaneLayout {
    /// Creates a layout of `lanes`-wide groups over `nodes` nets and
    /// `slots` slots.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is 0 or exceeds 64 (lane masks are `u64`), or if
    /// `nodes` is 0.
    pub fn new(lanes: usize, nodes: usize, slots: usize) -> LaneLayout {
        assert!(
            (1..=64).contains(&lanes),
            "lane width {lanes} outside 1..=64"
        );
        assert!(nodes > 0, "layout needs at least one node");
        LaneLayout {
            lanes,
            nodes,
            slots,
        }
    }

    /// The lane width `L` (slots per full group).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Nets per slot.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Total slot count.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Number of lane groups (the last may be a partial tail).
    pub fn groups(&self) -> usize {
        self.slots.div_ceil(self.lanes)
    }

    /// Total arena entries — dense at `slots · nodes`, identical to the
    /// slot-major footprint.
    pub fn entries(&self) -> usize {
        self.slots * self.nodes
    }

    /// Arena entries per **full** group (`L · nodes`) — the partition
    /// chunk size for group-disjoint stimuli writes; the tail partition is
    /// naturally shorter.
    pub fn group_entries(&self) -> usize {
        self.lanes * self.nodes
    }

    /// Width of group `g`: `L` for full groups, `slots − g·L` for the
    /// tail.
    ///
    /// # Panics
    ///
    /// Panics (debug assertions) if `g` is out of range.
    #[inline]
    pub fn group_width(&self, g: usize) -> usize {
        debug_assert!(g < self.groups(), "group {g} out of range");
        self.lanes.min(self.slots - g * self.lanes)
    }

    /// The live-lane mask of a full-width group `g`: bits `0..width` set.
    #[inline]
    pub fn group_mask(&self, g: usize) -> u64 {
        let w = self.group_width(g);
        if w >= 64 {
            !0
        } else {
            (1u64 << w) - 1
        }
    }

    /// First slot of group `g`.
    #[inline]
    pub fn group_slot(&self, g: usize) -> usize {
        g * self.lanes
    }

    /// Arena index of group `g`'s first cell.
    #[inline]
    pub fn group_base(&self, g: usize) -> usize {
        g * self.lanes * self.nodes
    }

    /// Arena index of the first lane of net `net` in group `g` — the
    /// start of that net's contiguous lane run (length
    /// [`LaneLayout::group_width`]). For full power-of-two-width groups
    /// the start is a multiple of `L`, so the run never straddles a
    /// 64-bit claim word.
    #[inline]
    pub fn run_start(&self, g: usize, net: usize) -> usize {
        debug_assert!(net < self.nodes, "net {net} out of range");
        self.group_base(g) + net * self.group_width(g)
    }

    /// Arena index of `(slot, net)`.
    ///
    /// # Panics
    ///
    /// Panics (debug assertions) if `slot` or `net` is out of range.
    #[inline]
    pub fn index(&self, slot: usize, net: usize) -> usize {
        debug_assert!(slot < self.slots, "slot {slot} out of range");
        let g = slot / self.lanes;
        let lane = slot % self.lanes;
        self.run_start(g, net) + lane
    }

    /// The slot that owns arena cell `idx` — the inverse of
    /// [`LaneLayout::index`] projected onto slots, used to attribute
    /// per-cell events (e.g. overflow injection keys) back to stimuli.
    ///
    /// # Panics
    ///
    /// Panics (debug assertions) if `idx` is out of range.
    #[inline]
    pub fn slot_of(&self, idx: usize) -> usize {
        debug_assert!(idx < self.entries(), "cell {idx} out of range");
        let per_group = self.group_entries();
        let g = idx / per_group;
        let r = idx % per_group;
        let lane = r % self.group_width(g);
        g * self.lanes + lane
    }

    /// Views this layout as one shard of a larger slot grid whose first
    /// slot sits at global index `base` — the slot-index translator used
    /// when a sharded batch run stitches per-shard results (diagnostic
    /// slot lists, injection keys) back onto the global grid.
    pub fn window(self, base: usize) -> LaneWindow {
        LaneWindow { layout: self, base }
    }
}

/// A [`LaneLayout`] positioned inside a larger slot grid: the layout
/// addresses the shard's own arena (local slots `0..slots`), while the
/// window maps those local slots to/from the global grid indexes the
/// caller sees.
///
/// ```
/// use avfs_waveform::LaneLayout;
///
/// // Shard of 5 slots starting at global slot 12.
/// let win = LaneLayout::new(4, 2, 5).window(12);
/// assert_eq!(win.global_slot(0), 12);
/// assert_eq!(win.global_slot(4), 16);
/// assert_eq!(win.local_slot(13), Some(1));
/// assert_eq!(win.local_slot(11), None); // before the shard
/// assert_eq!(win.local_slot(17), None); // past the shard
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneWindow {
    layout: LaneLayout,
    base: usize,
}

impl LaneWindow {
    /// The shard's own (local) layout.
    pub fn layout(&self) -> &LaneLayout {
        &self.layout
    }

    /// Global index of the shard's first slot.
    pub fn base(&self) -> usize {
        self.base
    }

    /// Maps a shard-local slot to its global grid index.
    ///
    /// # Panics
    ///
    /// Panics (debug assertions) if `local` is outside the shard.
    #[inline]
    pub fn global_slot(&self, local: usize) -> usize {
        debug_assert!(local < self.layout.slots(), "slot {local} out of shard");
        self.base + local
    }

    /// Maps a global grid index into the shard, or `None` if the slot
    /// belongs to a different shard.
    #[inline]
    pub fn local_slot(&self, global: usize) -> Option<usize> {
        global
            .checked_sub(self.base)
            .filter(|&local| local < self.layout.slots())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_is_slot_major() {
        let lay = LaneLayout::new(1, 7, 13);
        for slot in 0..13 {
            for net in 0..7 {
                assert_eq!(lay.index(slot, net), slot * 7 + net);
                assert_eq!(lay.slot_of(slot * 7 + net), slot);
            }
        }
        assert_eq!(lay.groups(), 13);
        assert_eq!(lay.group_width(12), 1);
    }

    #[test]
    fn index_is_a_bijection_with_partial_tail() {
        // 5 nets, 11 slots, L = 4 → groups of width 4, 4, 3.
        let lay = LaneLayout::new(4, 5, 11);
        assert_eq!(lay.groups(), 3);
        assert_eq!(lay.group_width(2), 3);
        assert_eq!(lay.entries(), 55);
        let mut seen = vec![false; lay.entries()];
        for slot in 0..11 {
            for net in 0..5 {
                let idx = lay.index(slot, net);
                assert!(!seen[idx], "cell {idx} mapped twice");
                seen[idx] = true;
                assert_eq!(lay.slot_of(idx), slot, "slot_of inverts index");
            }
        }
        assert!(seen.iter().all(|&s| s), "layout is dense");
    }

    #[test]
    fn runs_are_contiguous_lanes_of_one_net() {
        let lay = LaneLayout::new(8, 3, 20); // widths 8, 8, 4
        for g in 0..lay.groups() {
            let w = lay.group_width(g);
            for net in 0..3 {
                let start = lay.run_start(g, net);
                for lane in 0..w {
                    assert_eq!(lay.index(lay.group_slot(g) + lane, net), start + lane);
                }
            }
        }
    }

    #[test]
    fn full_power_of_two_runs_never_straddle_claim_words() {
        for &lanes in &[1usize, 2, 4, 8, 16, 32, 64] {
            let lay = LaneLayout::new(lanes, 5, lanes * 3);
            for g in 0..lay.groups() {
                for net in 0..5 {
                    let start = lay.run_start(g, net);
                    let end = start + lay.group_width(g) - 1;
                    assert_eq!(start / 64, end / 64, "L={lanes} g={g} net={net}");
                }
            }
        }
    }

    #[test]
    fn group_masks() {
        let lay = LaneLayout::new(4, 2, 6); // widths 4, 2
        assert_eq!(lay.group_mask(0), 0b1111);
        assert_eq!(lay.group_mask(1), 0b11);
        let full = LaneLayout::new(64, 1, 64);
        assert_eq!(lay.group_slot(1), 4);
        assert_eq!(full.group_mask(0), !0u64);
    }

    #[test]
    fn windows_translate_shard_slots_to_the_global_grid() {
        // Three shards of a 10-slot grid: sizes 4, 4, 2.
        let shards = [(0usize, 4usize), (4, 4), (8, 2)];
        for (base, len) in shards {
            let win = LaneLayout::new(4, 3, len).window(base);
            assert_eq!(win.base(), base);
            assert_eq!(win.layout().slots(), len);
            for local in 0..len {
                let global = win.global_slot(local);
                assert_eq!(global, base + local);
                assert_eq!(win.local_slot(global), Some(local));
            }
            // Slots of other shards do not resolve into this window.
            if base > 0 {
                assert_eq!(win.local_slot(base - 1), None);
            }
            assert_eq!(win.local_slot(base + len), None);
        }
    }

    #[test]
    #[should_panic(expected = "lane width")]
    fn rejects_zero_lanes() {
        let _ = LaneLayout::new(0, 1, 1);
    }

    #[test]
    #[should_panic(expected = "lane width")]
    fn rejects_oversized_lanes() {
        let _ = LaneLayout::new(65, 1, 1);
    }
}
