//! Switching-activity analysis of simulated waveforms (paper Fig. 2,
//! step 4: "the waveforms are analyzed to extract the output information,
//! such as test responses, switching activity and transition times").

use crate::{Waveform, WaveformRead};

/// Per-waveform summary extracted after simulation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WaveformStats {
    /// Total number of transitions.
    pub transitions: usize,
    /// Transitions in excess of the functionally necessary ones — the
    /// glitch count. A net whose initial and final values differ needs one
    /// transition; one that returns to its initial value needs none.
    pub glitch_transitions: usize,
    /// The time of the latest transition, or `None` if the signal never
    /// switched.
    pub latest_transition: Option<f64>,
    /// The value at the end of the window (the test response).
    pub final_value: bool,
}

impl WaveformStats {
    /// Analyzes one waveform (owned or a [`crate::WaveformView`]).
    pub fn of<W: WaveformRead>(waveform: &W) -> WaveformStats {
        let times = waveform.transitions();
        let transitions = times.len();
        let final_value = waveform.initial_value() ^ (transitions % 2 == 1);
        let functional = usize::from(waveform.initial_value() != final_value);
        WaveformStats {
            transitions,
            glitch_transitions: transitions - functional,
            latest_transition: times.last().copied(),
            final_value,
        }
    }
}

/// Aggregated switching activity over a set of nets (one simulation slot).
///
/// # Example
///
/// ```
/// use avfs_waveform::{SwitchingActivity, Waveform};
///
/// # fn main() -> Result<(), avfs_waveform::WaveformError> {
/// let wfs = vec![
///     Waveform::with_transitions(false, vec![5.0])?,
///     Waveform::with_transitions(false, vec![3.0, 9.0])?, // glitch pulse
/// ];
/// let act = SwitchingActivity::of(wfs.iter());
/// assert_eq!(act.total_transitions, 3);
/// assert_eq!(act.total_glitch_transitions, 2);
/// assert_eq!(act.latest_transition, Some(9.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SwitchingActivity {
    /// Sum of transitions over all nets.
    pub total_transitions: usize,
    /// Sum of glitch transitions over all nets.
    pub total_glitch_transitions: usize,
    /// Number of nets that toggled at least once.
    pub active_nets: usize,
    /// Number of analyzed nets.
    pub nets: usize,
    /// Latest transition over all nets (the "latest transition arrival
    /// time" of Table II when restricted to output nets).
    pub latest_transition: Option<f64>,
}

impl SwitchingActivity {
    /// Aggregates statistics over a collection of waveforms.
    pub fn of<W: WaveformRead>(waveforms: impl IntoIterator<Item = W>) -> SwitchingActivity {
        let mut act = SwitchingActivity::default();
        for w in waveforms {
            let s = WaveformStats::of(&w);
            act.nets += 1;
            act.total_transitions += s.transitions;
            act.total_glitch_transitions += s.glitch_transitions;
            if s.transitions > 0 {
                act.active_nets += 1;
            }
            act.latest_transition = match (act.latest_transition, s.latest_transition) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
        }
        act
    }

    /// Average transitions per net, 0 for an empty set.
    pub fn avg_transitions(&self) -> f64 {
        if self.nets == 0 {
            0.0
        } else {
            self.total_transitions as f64 / self.nets as f64
        }
    }

    /// Capacitance-weighted switching energy proxy `Σ caps[i] · toggles_i`
    /// (the dynamic-power estimation input mentioned in the paper's
    /// introduction). `caps` must be indexable by net order.
    pub fn weighted_switching<'a>(
        waveforms: impl IntoIterator<Item = &'a Waveform>,
        caps_ff: &[f64],
    ) -> f64 {
        waveforms
            .into_iter()
            .enumerate()
            .map(|(i, w)| caps_ff.get(i).copied().unwrap_or(0.0) * w.num_transitions() as f64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wf(initial: bool, times: &[f64]) -> Waveform {
        Waveform::with_transitions(initial, times.to_vec()).unwrap()
    }

    #[test]
    fn stats_of_clean_transition() {
        let s = WaveformStats::of(&wf(false, &[10.0]));
        assert_eq!(s.transitions, 1);
        assert_eq!(s.glitch_transitions, 0);
        assert_eq!(s.latest_transition, Some(10.0));
        assert!(s.final_value);
    }

    #[test]
    fn stats_of_glitch_pulse() {
        // Returns to the initial value: both transitions are glitch.
        let s = WaveformStats::of(&wf(false, &[10.0, 12.0]));
        assert_eq!(s.transitions, 2);
        assert_eq!(s.glitch_transitions, 2);
        assert!(!s.final_value);
    }

    #[test]
    fn stats_of_hazardous_transition() {
        // Three transitions ending opposite: one functional, two glitch.
        let s = WaveformStats::of(&wf(false, &[10.0, 12.0, 20.0]));
        assert_eq!(s.glitch_transitions, 2);
        assert!(s.final_value);
    }

    #[test]
    fn stats_of_constant() {
        let s = WaveformStats::of(&Waveform::constant(true));
        assert_eq!(s.transitions, 0);
        assert_eq!(s.glitch_transitions, 0);
        assert_eq!(s.latest_transition, None);
        assert!(s.final_value);
    }

    #[test]
    fn quiet_bit_edge_cases() {
        // The engine's quiet bit is exactly `transitions == 0`. Constant
        // waveforms of either polarity are quiet regardless of their value.
        for initial in [false, true] {
            let s = WaveformStats::of(&Waveform::constant(initial));
            assert_eq!(s.transitions, 0);
            assert_eq!(s.glitch_transitions, 0);
            assert_eq!(s.latest_transition, None);
            assert_eq!(s.final_value, initial);
        }
        // A single-transition net is NOT quiet even though it is entirely
        // glitch-free: its one functional transition must still propagate.
        let s = WaveformStats::of(&wf(true, &[42.0]));
        assert_eq!(s.transitions, 1);
        assert_eq!(s.glitch_transitions, 0);
        assert_eq!(s.latest_transition, Some(42.0));
        assert!(!s.final_value);
        // A glitch-only net that returns to its initial value is NOT quiet
        // either — its final value matches a constant, but the pulse can
        // still stretch or propagate through downstream gates.
        let s = WaveformStats::of(&wf(true, &[10.0, 11.5]));
        assert_eq!(s.transitions, 2);
        assert_eq!(s.glitch_transitions, 2);
        assert_eq!(s.latest_transition, Some(11.5));
        assert!(s.final_value, "returns to its initial value");
    }

    #[test]
    fn inactive_nets_complement_active_nets() {
        // `nets - active_nets` is the per-slot quiet-cell tally the engine
        // reports as `engine.quiet_cells`.
        let wfs = [
            Waveform::constant(false),
            wf(true, &[1.0]),
            Waveform::constant(true),
            wf(false, &[2.0, 3.0]),
        ];
        let act = SwitchingActivity::of(wfs.iter());
        assert_eq!(act.nets, 4);
        assert_eq!(act.active_nets, 2);
        assert_eq!(act.nets - act.active_nets, 2);
    }

    #[test]
    fn aggregate_activity() {
        let wfs = [
            wf(false, &[5.0]),
            Waveform::constant(true),
            wf(true, &[3.0, 9.0, 11.0]),
        ];
        let act = SwitchingActivity::of(wfs.iter());
        assert_eq!(act.nets, 3);
        assert_eq!(act.active_nets, 2);
        assert_eq!(act.total_transitions, 4);
        assert_eq!(act.total_glitch_transitions, 2);
        assert_eq!(act.latest_transition, Some(11.0));
        assert!((act.avg_transitions() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_aggregate() {
        let act = SwitchingActivity::of(std::iter::empty::<&Waveform>());
        assert_eq!(act, SwitchingActivity::default());
        assert_eq!(act.avg_transitions(), 0.0);
    }

    #[test]
    fn weighted_switching_sums() {
        let wfs = [wf(false, &[1.0]), wf(false, &[1.0, 2.0])];
        let caps = [3.0, 0.5];
        let e = SwitchingActivity::weighted_switching(wfs.iter(), &caps);
        assert!((e - (3.0 + 1.0)).abs() < 1e-12);
        // Missing caps count as zero load.
        let e2 = SwitchingActivity::weighted_switching(wfs.iter(), &caps[..1]);
        assert!((e2 - 3.0).abs() < 1e-12);
    }
}
