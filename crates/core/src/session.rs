//! A lightweight per-run launch handle over a compiled artifact — the
//! simulate-many half of the compile-once / simulate-many split.
//!
//! A [`Session`] binds an `Arc`-shared [`CompiledNetlist`] to a worker
//! pool that is spawned **once** — at session construction — and parked
//! across runs, instead of respawned per `run` as the legacy
//! [`Engine::run`](crate::Engine::run) shim does. Repeated launches on a
//! session therefore pay neither compile cost nor thread-spawn cost;
//! only the launch itself.
//!
//! Threads are resolved once, at pool construction. A per-run
//! [`SimOptions::threads`] override that disagrees with the pool is a
//! hard [`SimError::ThreadMismatch`] — a parked pool cannot be resized
//! mid-flight, and silently ignoring the override would make the same
//! options behave differently on `Engine` and `Session`.

use crate::compile::CompiledNetlist;
use crate::engine::{Exec, SimOptions};
use crate::pool::WorkerPool;
use crate::results::SimRun;
use crate::slots::SlotSpec;
use crate::SimError;
use avfs_atpg::PatternSet;
use std::sync::Arc;

/// A per-run simulation session: one compiled artifact plus one parked
/// worker pool, reused across any number of launches.
///
/// Runs take `&mut self` — the epoch-barrier pool admits exactly one run
/// at a time, and exclusive borrows encode that at compile time. To run
/// concurrently, clone the `Arc<CompiledNetlist>` into more sessions
/// (the artifact is immutable and `Send + Sync`), or front one
/// [`BatchRunner`](crate::batch::BatchRunner) with its internal run
/// queue.
///
/// ```
/// use avfs_core::{slots, CompiledNetlist, Session, SimOptions};
/// use avfs_atpg::PatternSet;
/// use avfs_delay::{ParameterSpace, StaticModel, TimingAnnotation};
/// use avfs_netlist::CellLibrary;
/// use std::sync::Arc;
///
/// let library = CellLibrary::nangate15_like();
/// let netlist = Arc::new(avfs_circuits::ripple_carry_adder(4, &library)?);
/// let compiled = Arc::new(CompiledNetlist::compile(
///     Arc::clone(&netlist),
///     Arc::new(TimingAnnotation::zero(&netlist)),
///     Arc::new(StaticModel::new(ParameterSpace::paper())),
/// )?);
/// let patterns = PatternSet::lfsr(netlist.inputs().len(), 4, 7);
/// let slot_list = slots::at_voltage(patterns.len(), 0.8);
/// let mut session = Session::new(compiled, 2);
/// // Both launches reuse the same two parked workers.
/// let a = session.run(&patterns, &slot_list, &SimOptions::default())?;
/// let b = session.run(&patterns, &slot_list, &SimOptions::default())?;
/// assert_eq!(a.slots, b.slots);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Session {
    compiled: Arc<CompiledNetlist>,
    /// The parked pool; `None` when `threads == 1` (a single-threaded
    /// run executes inline on the caller, exactly like the engine).
    pool: Option<WorkerPool>,
    /// Worker count the pool was resolved to at construction.
    threads: usize,
}

impl Session {
    /// Creates a session over `compiled` with `threads` workers spawned
    /// now and parked across runs; `0` resolves to the machine's
    /// available parallelism once, here, rather than per run.
    pub fn new(compiled: Arc<CompiledNetlist>, threads: usize) -> Session {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        };
        let pool = (threads > 1).then(|| WorkerPool::new(threads));
        Session {
            compiled,
            pool,
            threads,
        }
    }

    /// The session's compiled artifact.
    pub fn compiled(&self) -> &Arc<CompiledNetlist> {
        &self.compiled
    }

    /// The worker count resolved at construction.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Checks a per-run thread override against the parked pool and
    /// pins the effective options to the pool's count.
    fn pin_threads(&self, options: &SimOptions) -> Result<SimOptions, SimError> {
        if options.threads != 0 && options.threads != self.threads {
            return Err(SimError::ThreadMismatch {
                pool: self.threads,
                requested: options.threads,
            });
        }
        Ok(SimOptions {
            threads: self.threads,
            ..options.clone()
        })
    }

    /// Simulates `slots` over `patterns` on the parked pool. Semantics,
    /// results and errors are identical to
    /// [`CompiledNetlist::launch`] (bit-for-bit: the pool only changes
    /// where threads come from, not what they compute), plus
    /// [`SimError::ThreadMismatch`] for a conflicting per-run
    /// [`SimOptions::threads`] override.
    pub fn run(
        &mut self,
        patterns: &PatternSet,
        slots: &[SlotSpec],
        options: &SimOptions,
    ) -> Result<SimRun, SimError> {
        let options = self.pin_threads(options)?;
        self.compiled.launch_with(
            patterns,
            slots,
            &options,
            Exec {
                pool: self.pool.as_ref(),
                ..Exec::default()
            },
        )
    }

    /// Simulates with per-node voltage domains on the parked pool — see
    /// [`CompiledNetlist::launch_domains`].
    pub fn run_domains(
        &mut self,
        patterns: &PatternSet,
        domains: &crate::domains::VoltageDomains,
        specs: &[crate::domains::DomainSlotSpec],
        options: &SimOptions,
    ) -> Result<SimRun, SimError> {
        let options = self.pin_threads(options)?;
        self.compiled.launch_domains_with(
            patterns,
            domains,
            specs,
            &options,
            Exec {
                pool: self.pool.as_ref(),
                ..Exec::default()
            },
        )
    }

    /// Simulates piecewise-scheduled scenarios (optionally Monte Carlo
    /// sampled) on the parked pool — see
    /// [`CompiledNetlist::launch_scenarios`].
    pub fn run_scenarios(
        &mut self,
        patterns: &PatternSet,
        scenarios: &[crate::scenario::ScenarioSpec],
        mc: Option<&crate::scenario::MonteCarlo>,
        capture_deadline_ps: Option<f64>,
        options: &SimOptions,
    ) -> Result<SimRun, SimError> {
        let options = self.pin_threads(options)?;
        self.compiled.launch_scenarios_with(
            patterns,
            scenarios,
            mc,
            capture_deadline_ps,
            &options,
            Exec {
                pool: self.pool.as_ref(),
                ..Exec::default()
            },
        )
    }

    /// Cross-validates a finished uniform-voltage run of this session's
    /// artifact against the independent STA oracle — see
    /// [`sta::crosscheck`](crate::sta::crosscheck) for the comparison
    /// semantics and the uniform-launch precondition.
    pub fn crosscheck(
        &self,
        run: &SimRun,
        circuit: &str,
        options: &crate::sta::CrossCheckOptions,
    ) -> Result<crate::sta::CrossCheck, SimError> {
        crate::sta::crosscheck(&self.compiled, run, circuit, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slots::cross;
    use avfs_delay::{ParameterSpace, StaticModel, TimingAnnotation};
    use avfs_netlist::CellLibrary;

    fn compiled_adder() -> Arc<CompiledNetlist> {
        let library = CellLibrary::nangate15_like();
        let netlist = Arc::new(avfs_circuits::ripple_carry_adder(4, &library).unwrap());
        Arc::new(
            CompiledNetlist::compile(
                Arc::clone(&netlist),
                Arc::new(TimingAnnotation::zero(&netlist)),
                Arc::new(StaticModel::new(ParameterSpace::paper())),
            )
            .unwrap(),
        )
    }

    #[test]
    fn session_matches_engine_across_repeated_runs() {
        let compiled = compiled_adder();
        let patterns = PatternSet::lfsr(compiled.netlist().inputs().len(), 6, 7);
        let slot_list = cross(patterns.len(), &[0.7, 0.8, 1.0]);
        let opts = SimOptions {
            threads: 1,
            ..SimOptions::default()
        };
        let reference = compiled.launch(&patterns, &slot_list, &opts).unwrap();
        let mut session = Session::new(Arc::clone(&compiled), 4);
        assert_eq!(session.threads(), 4);
        // Three launches on the same parked pool, all bit-identical to
        // the per-run-pool single-threaded reference.
        for _ in 0..3 {
            let run = session
                .run(&patterns, &slot_list, &SimOptions::default())
                .unwrap();
            assert_eq!(run.slots, reference.slots);
            assert_eq!(run.diagnostics, reference.diagnostics);
        }
    }

    /// Scenario launches ride the parked pool like every other run and
    /// stay bit-identical to the per-run-pool reference.
    #[test]
    fn session_scenarios_match_compiled_launch() {
        use crate::scenario::{cross_schedules, MonteCarlo, Schedule};
        let compiled = compiled_adder();
        let patterns = PatternSet::lfsr(compiled.netlist().inputs().len(), 4, 13);
        let scenarios = cross_schedules(patterns.len(), &[Schedule::droop(0.9, 0.15, 10.0, 40.0)]);
        let mc = MonteCarlo {
            samples: 2,
            variation: avfs_delay::VariationConfig::sigma5(21),
        };
        let reference = compiled
            .launch_scenarios(
                &patterns,
                &scenarios,
                Some(&mc),
                Some(90.0),
                &SimOptions {
                    threads: 1,
                    ..SimOptions::default()
                },
            )
            .unwrap();
        let mut session = Session::new(Arc::clone(&compiled), 4);
        for _ in 0..2 {
            let run = session
                .run_scenarios(
                    &patterns,
                    &scenarios,
                    Some(&mc),
                    Some(90.0),
                    &SimOptions::default(),
                )
                .unwrap();
            assert_eq!(run.slots, reference.slots);
            assert_eq!(run.scenario, reference.scenario);
        }
    }

    #[test]
    fn thread_override_mismatch_is_rejected() {
        let compiled = compiled_adder();
        let patterns = PatternSet::lfsr(compiled.netlist().inputs().len(), 2, 7);
        let slot_list = cross(patterns.len(), &[0.8]);
        let mut session = Session::new(compiled, 2);
        // 0 (auto) and the pool's own count are accepted...
        for threads in [0, 2] {
            session
                .run(
                    &patterns,
                    &slot_list,
                    &SimOptions {
                        threads,
                        ..SimOptions::default()
                    },
                )
                .unwrap();
        }
        // ...any other override is a hard error naming both counts.
        let err = session
            .run(
                &patterns,
                &slot_list,
                &SimOptions {
                    threads: 8,
                    ..SimOptions::default()
                },
            )
            .unwrap_err();
        assert_eq!(
            err,
            SimError::ThreadMismatch {
                pool: 2,
                requested: 8
            }
        );
    }

    #[test]
    fn single_threaded_session_runs_inline() {
        let compiled = compiled_adder();
        let patterns = PatternSet::lfsr(compiled.netlist().inputs().len(), 3, 7);
        let slot_list = cross(patterns.len(), &[0.8, 0.9]);
        let mut session = Session::new(Arc::clone(&compiled), 1);
        let run = session
            .run(&patterns, &slot_list, &SimOptions::default())
            .unwrap();
        let reference = compiled
            .launch(
                &patterns,
                &slot_list,
                &SimOptions {
                    threads: 1,
                    ..SimOptions::default()
                },
            )
            .unwrap();
        assert_eq!(run.slots, reference.slots);
    }
}
