//! A persistent worker pool with an epoch barrier — the CPU stand-in for
//! the paper's resident GPU thread grid.
//!
//! The paper's engine launches one kernel per level and pays no thread
//! management beyond that launch: the grid stays resident on the device
//! and only a barrier separates levels. The previous CPU realization
//! instead paid a full `std::thread::scope` spawn/join per level of every
//! batch. This module replaces that with OS threads created **once per
//! simulation run**: workers park on a condvar between levels and are
//! released by bumping an epoch counter; the coordinator participates as
//! worker 0 and then waits for the remaining workers — the level barrier.
//!
//! Jobs are released by reference, so they may borrow level-local state
//! (the arena writer, the level context). The lifetime is erased with an
//! internal `transmute`; soundness rests on [`WorkerPool::run`] not
//! returning — even by unwinding — until every worker has finished the
//! epoch and dropped its reference.
//!
//! Since the compile-once/simulate-many split, a pool is no longer tied
//! to one run: [`Session`](crate::session::Session) and
//! [`BatchRunner`](crate::batch::BatchRunner) construct a pool once and
//! park it *across* runs, so repeated launches pay zero thread spawns.
//! The run-scoped fault [`Injector`] is therefore published per epoch
//! (alongside the job) rather than captured at construction.

use avfs_inject::Injector;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The erased job type workers execute: called once per worker per epoch
/// with the worker's index (0 is the coordinator). In a type alias a bare
/// `dyn` is `+ 'static` — this is the *stored* type; [`WorkerPool::run`]
/// accepts a borrowed job and erases its lifetime.
type Job = dyn Fn(usize) + Sync;

struct State {
    /// Monotonic release counter; a bump publishes `job` to all workers.
    epoch: u64,
    /// The job of the current epoch, lifetime-erased (see module docs).
    job: Option<&'static Job>,
    /// The fault injector of the current epoch's run (the
    /// [`WorkerStall`](avfs_inject::InjectionSite::WorkerStall) site).
    /// Published per epoch so one parked pool can serve runs with
    /// different fault plans.
    injector: Injector,
    /// Spawned workers still executing the current epoch's job.
    running: usize,
    /// A spawned worker's job invocation panicked this epoch.
    poisoned: bool,
    /// Pool is shutting down; workers exit instead of waiting.
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Coordinator → workers: a new epoch (or shutdown) is available.
    start: Condvar,
    /// Workers → coordinator: the last running worker finished.
    done: Condvar,
}

/// A pool of parked worker threads released level-by-level via an epoch
/// barrier. Created once per [`Session`](crate::session::Session) /
/// [`BatchRunner`](crate::batch::BatchRunner) (or once per run by a bare
/// [`Engine::run`](crate::Engine::run)) and reusable across any number of
/// runs; dropping it joins all workers.
pub(crate) struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Creates a pool of `size` workers total: `size - 1` OS threads plus
    /// the calling thread, which participates as worker 0 inside
    /// [`WorkerPool::run`]. `size` is clamped to at least 1.
    pub fn new(size: usize) -> WorkerPool {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                injector: Injector::unarmed(),
                running: 0,
                poisoned: false,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (1..size.max(1))
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("avfs-worker-{index}"))
                    .spawn(move || worker_loop(index, &shared))
                    .expect("worker thread spawns")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Total worker count, the calling thread included.
    pub fn size(&self) -> usize {
        self.handles.len() + 1
    }

    /// Runs `job` on every worker (the calling thread is worker 0) and
    /// blocks until all of them finished — the level barrier. Returns the
    /// time the coordinator spent waiting for workers after finishing its
    /// own share; when `measure_idle` is false no clock is read and
    /// [`Duration::ZERO`] is returned.
    ///
    /// `injector` carries the current run's fault plan for the
    /// [`WorkerStall`](avfs_inject::InjectionSite::WorkerStall) site: a
    /// firing probe — keyed `(worker index, epoch)` — makes the worker
    /// sleep before taking its share, which perturbs timing (exercising
    /// the stall watchdog and the work-stealing rebalance) but never
    /// results. Unarmed, the probe is one branch per worker per epoch.
    /// The caller must have exclusive use of the pool for the duration of
    /// the call (`Session` takes `&mut self`; `BatchRunner` holds its run
    /// lock) — epochs of concurrent runs must never interleave.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from the coordinator's own job share (after the
    /// barrier, so borrows stay valid), and panics if a spawned worker's
    /// job share panicked.
    pub fn run(
        &self,
        job: &(dyn Fn(usize) + Sync + '_),
        injector: &Injector,
        measure_idle: bool,
    ) -> Duration {
        // SAFETY: the 'static lifetime is a lie confined to this call.
        // Workers only hold the reference while `running > 0`, and this
        // function does not return — the coordinator's own panic is
        // deferred past the barrier — until `running == 0`.
        let job: &'static Job =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync + '_), &'static Job>(job) };
        {
            let mut state = self.shared.state.lock().expect("pool lock");
            state.job = Some(job);
            state.injector = injector.clone();
            state.running = self.handles.len();
            state.poisoned = false;
            state.epoch += 1;
        }
        self.shared.start.notify_all();
        // Worker 0's share, panic-deferred so the barrier below always
        // runs before any unwinding invalidates the job's borrows.
        let own = catch_unwind(AssertUnwindSafe(|| job(0)));
        let wait_start = measure_idle.then(Instant::now);
        let poisoned = {
            let mut state = self.shared.state.lock().expect("pool lock");
            while state.running > 0 {
                state = self.shared.done.wait(state).expect("pool lock");
            }
            state.job = None;
            state.poisoned
        };
        let idle = wait_start.map_or(Duration::ZERO, |t| t.elapsed());
        if let Err(payload) = own {
            resume_unwind(payload);
        }
        assert!(!poisoned, "pool worker's job share panicked");
        idle
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool lock");
            state.shutdown = true;
        }
        self.shared.start.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("size", &self.size())
            .finish()
    }
}

/// Body of one spawned worker: wait for an epoch bump, run the job,
/// report completion, park again.
fn worker_loop(index: usize, shared: &Shared) {
    let mut seen = 0u64;
    loop {
        let (job, injector) = {
            let mut state = shared.state.lock().expect("pool lock");
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != seen {
                    break;
                }
                state = shared.start.wait(state).expect("pool lock");
            }
            seen = state.epoch;
            (
                state.job.expect("an epoch bump always publishes a job"),
                state.injector.clone(),
            )
        };
        // Injected slow-worker stall: sleep before taking a share, so the
        // chunked cursor sheds this worker's load onto its peers and the
        // watchdog sees a quiet epoch. Timing only — results are schedule
        // independent (§9 reconciliation).
        if let Some(stall) = injector.stall_duration(index as u64, seen) {
            std::thread::sleep(stall);
        }
        // Contain job panics so the barrier protocol (and the engine's
        // borrow lifetimes) survive; the coordinator re-raises.
        let outcome = catch_unwind(AssertUnwindSafe(|| job(index)));
        let mut state = shared.state.lock().expect("pool lock");
        if outcome.is_err() {
            state.poisoned = true;
        }
        state.running -= 1;
        if state.running == 0 {
            shared.done.notify_all();
        }
    }
}

/// A coordinator-side stall detector for the epoch barrier.
///
/// Armed by [`SimOptions::stall_timeout`](crate::SimOptions::stall_timeout):
/// a monitor thread watches a progress counter the coordinator bumps at
/// every level barrier. When no progress lands within the timeout, one
/// stall is recorded for that quiet period (re-armed by the next
/// progress bump). The watchdog only *observes* — a stalled epoch is
/// waited out, never killed, because workers may hold borrows into
/// level-local state — so it can never change results; its tally
/// surfaces as `RunDiagnostics::watchdog_stalls`. Dropping the handle
/// disarms: the monitor is woken and joined.
pub(crate) struct Watchdog {
    shared: Arc<WatchdogShared>,
    handle: Option<JoinHandle<()>>,
}

struct WatchdogShared {
    /// Bumped by the coordinator at every level barrier.
    progress: AtomicU64,
    /// Quiet periods of at least `timeout` with no progress.
    stalls: AtomicU64,
    /// Disarm flag + wakeup bell for the monitor thread.
    disarm: Mutex<bool>,
    bell: Condvar,
    timeout: Duration,
}

impl Watchdog {
    /// Arms a watchdog: spawns the monitor thread with the given stall
    /// timeout (clamped to at least 1 ms so a zero timeout cannot spin).
    pub fn arm(timeout: Duration) -> Watchdog {
        let shared = Arc::new(WatchdogShared {
            progress: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            disarm: Mutex::new(false),
            bell: Condvar::new(),
            timeout: timeout.max(Duration::from_millis(1)),
        });
        let monitor = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("avfs-watchdog".to_owned())
            .spawn(move || watchdog_loop(&monitor))
            .expect("watchdog thread spawns");
        Watchdog {
            shared,
            handle: Some(handle),
        }
    }

    /// Reports forward progress (called at every level barrier).
    pub fn progress(&self) {
        self.shared.progress.fetch_add(1, Ordering::Relaxed);
    }

    /// Stall periods detected so far.
    pub fn stalls(&self) -> u64 {
        self.shared.stalls.load(Ordering::Relaxed)
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        *self.shared.disarm.lock().expect("watchdog lock") = true;
        self.shared.bell.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Watchdog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Watchdog")
            .field("timeout", &self.shared.timeout)
            .field("stalls", &self.stalls())
            .finish()
    }
}

/// Monitor body: sample the progress counter every quarter timeout;
/// record one stall per quiet period of at least the full timeout.
fn watchdog_loop(shared: &WatchdogShared) {
    let tick = (shared.timeout / 4).max(Duration::from_millis(1));
    let mut last_seen = shared.progress.load(Ordering::Relaxed);
    let mut quiet = Duration::ZERO;
    let mut flagged = false;
    let mut disarmed = shared.disarm.lock().expect("watchdog lock");
    loop {
        if *disarmed {
            return;
        }
        let (guard, timeout) = shared
            .bell
            .wait_timeout(disarmed, tick)
            .expect("watchdog lock");
        disarmed = guard;
        if !timeout.timed_out() {
            continue; // Woken by disarm (or spuriously); re-check the flag.
        }
        let now = shared.progress.load(Ordering::Relaxed);
        if now != last_seen {
            last_seen = now;
            quiet = Duration::ZERO;
            flagged = false;
        } else {
            quiet += tick;
            if quiet >= shared.timeout && !flagged {
                shared.stalls.fetch_add(1, Ordering::Relaxed);
                flagged = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfs_inject::{FaultPlan, InjectionSite};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_worker_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.size(), 1);
        let hits = AtomicUsize::new(0);
        let idle = pool.run(
            &|w| {
                assert_eq!(w, 0);
                hits.fetch_add(1, Ordering::Relaxed);
            },
            &Injector::unarmed(),
            false,
        );
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        assert_eq!(idle, Duration::ZERO);
    }

    #[test]
    fn epochs_reuse_the_same_workers() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.size(), 4);
        let total = AtomicUsize::new(0);
        // Many epochs over the same pool: every worker runs every epoch,
        // and borrows of epoch-local state (the counter) stay sound.
        for epoch in 0..50 {
            let seen = [(); 4].map(|()| AtomicUsize::new(usize::MAX));
            pool.run(
                &|w| {
                    seen[w].store(epoch, Ordering::Relaxed);
                    total.fetch_add(1, Ordering::Relaxed);
                },
                &Injector::unarmed(),
                true,
            );
            for s in &seen {
                assert_eq!(s.load(Ordering::Relaxed), epoch);
            }
        }
        assert_eq!(total.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn work_stealing_cursor_covers_all_tasks_once() {
        let pool = WorkerPool::new(3);
        let tasks = 1000usize;
        let cursor = AtomicUsize::new(0);
        let done: Vec<AtomicUsize> = (0..tasks).map(|_| AtomicUsize::new(0)).collect();
        pool.run(
            &|_w| loop {
                let t = cursor.fetch_add(7, Ordering::Relaxed);
                if t >= tasks {
                    break;
                }
                for d in done.iter().take((t + 7).min(tasks)).skip(t) {
                    d.fetch_add(1, Ordering::Relaxed);
                }
            },
            &Injector::unarmed(),
            false,
        );
        assert!(done.iter().all(|d| d.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn coordinator_panic_defers_past_the_barrier() {
        let pool = WorkerPool::new(2);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.run(
                &|w| {
                    if w == 0 {
                        panic!("coordinator share fails");
                    }
                },
                &Injector::unarmed(),
                false,
            );
        }));
        assert!(outcome.is_err());
        // The pool is still usable afterwards.
        let hits = AtomicUsize::new(0);
        pool.run(
            &|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            },
            &Injector::unarmed(),
            false,
        );
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn worker_panic_is_reported() {
        let pool = WorkerPool::new(2);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.run(
                &|w| {
                    if w == 1 {
                        panic!("worker share fails");
                    }
                },
                &Injector::unarmed(),
                false,
            );
        }));
        assert!(outcome.is_err());
    }

    #[test]
    fn injected_stall_delays_but_preserves_the_epoch() {
        let plan = Arc::new(
            FaultPlan::empty(5)
                .with_rate(InjectionSite::WorkerStall, 1.0)
                .with_stall(Duration::from_millis(10)),
        );
        let pool = WorkerPool::new(2);
        let hits = AtomicUsize::new(0);
        let t0 = Instant::now();
        pool.run(
            &|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            },
            &Injector::armed(Arc::clone(&plan)),
            false,
        );
        assert_eq!(hits.load(Ordering::Relaxed), 2, "both shares still ran");
        assert!(
            t0.elapsed() >= Duration::from_millis(10),
            "the stalled worker held the barrier"
        );
        assert!(plan.hits(InjectionSite::WorkerStall) >= 1);
        assert_eq!(plan.fired_keys(InjectionSite::WorkerStall), vec![1]);
    }

    #[test]
    fn watchdog_detects_a_stalled_epoch() {
        let dog = Watchdog::arm(Duration::from_millis(10));
        assert_eq!(dog.stalls(), 0);
        // No progress for many timeouts: exactly one stall is recorded
        // for the quiet period (the flag re-arms only on progress).
        std::thread::sleep(Duration::from_millis(120));
        assert_eq!(dog.stalls(), 1, "one stall per quiet period");
        // Progress re-arms the detector; a second quiet period records a
        // second stall.
        dog.progress();
        std::thread::sleep(Duration::from_millis(120));
        assert_eq!(dog.stalls(), 2);
    }

    #[test]
    fn watchdog_stays_quiet_under_progress_and_disarms_cleanly() {
        let dog = Watchdog::arm(Duration::from_millis(40));
        for _ in 0..20 {
            dog.progress();
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(dog.stalls(), 0, "steady progress must never stall");
        // Disarm (drop) must join the monitor promptly, not wait out a
        // full timeout cycle left over from arming.
        let t0 = Instant::now();
        drop(dog);
        assert!(
            t0.elapsed() < Duration::from_millis(40),
            "disarm joins the monitor without waiting a full timeout"
        );
    }
}
