//! A persistent worker pool with an epoch barrier — the CPU stand-in for
//! the paper's resident GPU thread grid.
//!
//! The paper's engine launches one kernel per level and pays no thread
//! management beyond that launch: the grid stays resident on the device
//! and only a barrier separates levels. The previous CPU realization
//! instead paid a full `std::thread::scope` spawn/join per level of every
//! batch. This module replaces that with OS threads created **once per
//! simulation run**: workers park on a condvar between levels and are
//! released by bumping an epoch counter; the coordinator participates as
//! worker 0 and then waits for the remaining workers — the level barrier.
//!
//! Jobs are released by reference, so they may borrow level-local state
//! (the arena writer, the level context). The lifetime is erased with an
//! internal `transmute`; soundness rests on [`WorkerPool::run`] not
//! returning — even by unwinding — until every worker has finished the
//! epoch and dropped its reference.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The erased job type workers execute: called once per worker per epoch
/// with the worker's index (0 is the coordinator). In a type alias a bare
/// `dyn` is `+ 'static` — this is the *stored* type; [`WorkerPool::run`]
/// accepts a borrowed job and erases its lifetime.
type Job = dyn Fn(usize) + Sync;

struct State {
    /// Monotonic release counter; a bump publishes `job` to all workers.
    epoch: u64,
    /// The job of the current epoch, lifetime-erased (see module docs).
    job: Option<&'static Job>,
    /// Spawned workers still executing the current epoch's job.
    running: usize,
    /// A spawned worker's job invocation panicked this epoch.
    poisoned: bool,
    /// Pool is shutting down; workers exit instead of waiting.
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Coordinator → workers: a new epoch (or shutdown) is available.
    start: Condvar,
    /// Workers → coordinator: the last running worker finished.
    done: Condvar,
}

/// A pool of parked worker threads released level-by-level via an epoch
/// barrier. Created once per engine run; dropping it joins all workers.
pub(crate) struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Creates a pool of `size` workers total: `size - 1` OS threads plus
    /// the calling thread, which participates as worker 0 inside
    /// [`WorkerPool::run`]. `size` is clamped to at least 1.
    pub fn new(size: usize) -> WorkerPool {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                running: 0,
                poisoned: false,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (1..size.max(1))
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("avfs-worker-{index}"))
                    .spawn(move || worker_loop(index, &shared))
                    .expect("worker thread spawns")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Total worker count, the calling thread included.
    pub fn size(&self) -> usize {
        self.handles.len() + 1
    }

    /// Runs `job` on every worker (the calling thread is worker 0) and
    /// blocks until all of them finished — the level barrier. Returns the
    /// time the coordinator spent waiting for workers after finishing its
    /// own share; when `measure_idle` is false no clock is read and
    /// [`Duration::ZERO`] is returned.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from the coordinator's own job share (after the
    /// barrier, so borrows stay valid), and panics if a spawned worker's
    /// job share panicked.
    pub fn run(&self, job: &(dyn Fn(usize) + Sync + '_), measure_idle: bool) -> Duration {
        // SAFETY: the 'static lifetime is a lie confined to this call.
        // Workers only hold the reference while `running > 0`, and this
        // function does not return — the coordinator's own panic is
        // deferred past the barrier — until `running == 0`.
        let job: &'static Job =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync + '_), &'static Job>(job) };
        {
            let mut state = self.shared.state.lock().expect("pool lock");
            state.job = Some(job);
            state.running = self.handles.len();
            state.poisoned = false;
            state.epoch += 1;
        }
        self.shared.start.notify_all();
        // Worker 0's share, panic-deferred so the barrier below always
        // runs before any unwinding invalidates the job's borrows.
        let own = catch_unwind(AssertUnwindSafe(|| job(0)));
        let wait_start = measure_idle.then(Instant::now);
        let poisoned = {
            let mut state = self.shared.state.lock().expect("pool lock");
            while state.running > 0 {
                state = self.shared.done.wait(state).expect("pool lock");
            }
            state.job = None;
            state.poisoned
        };
        let idle = wait_start.map_or(Duration::ZERO, |t| t.elapsed());
        if let Err(payload) = own {
            resume_unwind(payload);
        }
        assert!(!poisoned, "pool worker's job share panicked");
        idle
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool lock");
            state.shutdown = true;
        }
        self.shared.start.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("size", &self.size())
            .finish()
    }
}

/// Body of one spawned worker: wait for an epoch bump, run the job,
/// report completion, park again.
fn worker_loop(index: usize, shared: &Shared) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool lock");
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != seen {
                    break;
                }
                state = shared.start.wait(state).expect("pool lock");
            }
            seen = state.epoch;
            state.job.expect("an epoch bump always publishes a job")
        };
        // Contain job panics so the barrier protocol (and the engine's
        // borrow lifetimes) survive; the coordinator re-raises.
        let outcome = catch_unwind(AssertUnwindSafe(|| job(index)));
        let mut state = shared.state.lock().expect("pool lock");
        if outcome.is_err() {
            state.poisoned = true;
        }
        state.running -= 1;
        if state.running == 0 {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_worker_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.size(), 1);
        let hits = AtomicUsize::new(0);
        let idle = pool.run(
            &|w| {
                assert_eq!(w, 0);
                hits.fetch_add(1, Ordering::Relaxed);
            },
            false,
        );
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        assert_eq!(idle, Duration::ZERO);
    }

    #[test]
    fn epochs_reuse_the_same_workers() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.size(), 4);
        let total = AtomicUsize::new(0);
        // Many epochs over the same pool: every worker runs every epoch,
        // and borrows of epoch-local state (the counter) stay sound.
        for epoch in 0..50 {
            let seen = [(); 4].map(|()| AtomicUsize::new(usize::MAX));
            pool.run(
                &|w| {
                    seen[w].store(epoch, Ordering::Relaxed);
                    total.fetch_add(1, Ordering::Relaxed);
                },
                true,
            );
            for s in &seen {
                assert_eq!(s.load(Ordering::Relaxed), epoch);
            }
        }
        assert_eq!(total.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn work_stealing_cursor_covers_all_tasks_once() {
        let pool = WorkerPool::new(3);
        let tasks = 1000usize;
        let cursor = AtomicUsize::new(0);
        let done: Vec<AtomicUsize> = (0..tasks).map(|_| AtomicUsize::new(0)).collect();
        pool.run(
            &|_w| loop {
                let t = cursor.fetch_add(7, Ordering::Relaxed);
                if t >= tasks {
                    break;
                }
                for d in done.iter().take((t + 7).min(tasks)).skip(t) {
                    d.fetch_add(1, Ordering::Relaxed);
                }
            },
            false,
        );
        assert!(done.iter().all(|d| d.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn coordinator_panic_defers_past_the_barrier() {
        let pool = WorkerPool::new(2);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.run(
                &|w| {
                    if w == 0 {
                        panic!("coordinator share fails");
                    }
                },
                false,
            );
        }));
        assert!(outcome.is_err());
        // The pool is still usable afterwards.
        let hits = AtomicUsize::new(0);
        pool.run(
            &|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            },
            false,
        );
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn worker_panic_is_reported() {
        let pool = WorkerPool::new(2);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.run(
                &|w| {
                    if w == 1 {
                        panic!("worker share fails");
                    }
                },
                false,
            );
        }));
        assert!(outcome.is_err());
    }
}
