//! Small-delay-fault simulation on top of the parametric engine.
//!
//! Small (gate) delay faults are the headline application of the paper's
//! simulator family (its reference \[28\], "GPU-Accelerated Simulation of
//! Small Delay Faults", and the small-delay test motivation of the
//! introduction): a defect adds an extra delay `δ` at one node; a pattern
//! pair *detects* it if any primary output either changes its captured
//! value at the capture time or settles later than the fault-free run.
//!
//! This module simulates a fault list by annotation perturbation: each
//! fault gets a derived [`TimingAnnotation`] with `δ` added to every pin
//! of the fault site, reusing the unmodified engine. Detection is judged
//! against a capture period.

use crate::engine::{Engine, SimOptions};
use crate::slots::SlotSpec;
use crate::SimError;
use avfs_atpg::PatternSet;
use avfs_delay::model::DelayModel;
use avfs_delay::TimingAnnotation;
use avfs_netlist::{Netlist, NodeId, NodeKind};
use avfs_waveform::PinDelays;
use std::sync::Arc;

/// One small-delay fault: extra delay at a node's output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmallDelayFault {
    /// The fault site (a gate node).
    pub node: NodeId,
    /// The extra delay, ps.
    pub delta_ps: f64,
}

/// The verdict for one fault under one pattern set.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultVerdict {
    /// The fault.
    pub fault: SmallDelayFault,
    /// Whether any pattern detected it.
    pub detected: bool,
    /// Index of the first detecting pattern.
    pub detected_by: Option<usize>,
    /// The worst slack consumed: latest faulty arrival minus capture
    /// period, ps (positive = capture violation).
    pub worst_overshoot_ps: f64,
}

/// Small-delay fault simulator.
pub struct DelayFaultSimulator {
    netlist: Arc<Netlist>,
    annotation: Arc<TimingAnnotation>,
    model: Arc<dyn DelayModel>,
    /// Capture period: outputs are sampled at this time, ps.
    capture_ps: f64,
}

impl DelayFaultSimulator {
    /// Creates a fault simulator sampling outputs at `capture_ps`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::AnnotationMismatch`] on shape mismatch.
    pub fn new(
        netlist: Arc<Netlist>,
        annotation: Arc<TimingAnnotation>,
        model: Arc<dyn DelayModel>,
        capture_ps: f64,
    ) -> Result<DelayFaultSimulator, SimError> {
        if !annotation.matches(&netlist) {
            return Err(SimError::AnnotationMismatch);
        }
        Ok(DelayFaultSimulator {
            netlist,
            annotation,
            model,
            capture_ps,
        })
    }

    /// The capture period.
    pub fn capture_ps(&self) -> f64 {
        self.capture_ps
    }

    /// Builds the candidate fault list: one fault of size `delta_ps` per
    /// gate node.
    pub fn full_fault_list(&self, delta_ps: f64) -> Vec<SmallDelayFault> {
        self.netlist
            .iter()
            .filter(|(_, node)| matches!(node.kind(), NodeKind::Gate(_)))
            .map(|(id, _)| SmallDelayFault { node: id, delta_ps })
            .collect()
    }

    /// Simulates the fault-free reference and every fault at `voltage`,
    /// returning per-fault verdicts.
    ///
    /// Detection criterion per pattern: a primary output's value *at the
    /// capture time* differs from the fault-free run, or the output
    /// settles after the capture time while the fault-free run settled
    /// before it.
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    pub fn run(
        &self,
        faults: &[SmallDelayFault],
        patterns: &PatternSet,
        voltage: f64,
        options: &SimOptions,
    ) -> Result<Vec<FaultVerdict>, SimError> {
        let slots: Vec<SlotSpec> = crate::slots::at_voltage(patterns.len(), voltage);
        let mut opts = options.clone();
        opts.keep_waveforms = true;

        // Fault-free reference captures.
        let golden_engine = Engine::new(
            Arc::clone(&self.netlist),
            Arc::clone(&self.annotation),
            Arc::clone(&self.model),
        )?;
        let golden = golden_engine.run(patterns, &slots, &opts)?;
        let golden_captures: Vec<Vec<bool>> = golden
            .slots
            .iter()
            .map(|s| self.captures(s.waveforms.as_ref().expect("kept")))
            .collect();

        let mut verdicts = Vec::with_capacity(faults.len());
        for &fault in faults {
            let faulty_annotation = Arc::new(self.inject(fault));
            let engine = Engine::new(
                Arc::clone(&self.netlist),
                faulty_annotation,
                Arc::clone(&self.model),
            )?;
            let run = engine.run(patterns, &slots, &opts)?;
            let mut detected_by = None;
            let mut worst_overshoot = f64::NEG_INFINITY;
            for (pi, slot) in run.slots.iter().enumerate() {
                let wfs = slot.waveforms.as_ref().expect("kept");
                let captures = self.captures(wfs);
                let late = slot
                    .latest_output_transition_ps
                    .map_or(f64::NEG_INFINITY, |t| t - self.capture_ps);
                worst_overshoot = worst_overshoot.max(late);
                if detected_by.is_none() && captures != golden_captures[pi] {
                    detected_by = Some(pi);
                }
            }
            verdicts.push(FaultVerdict {
                fault,
                detected: detected_by.is_some(),
                detected_by,
                worst_overshoot_ps: worst_overshoot.max(-self.capture_ps),
            });
        }
        Ok(verdicts)
    }

    /// Fault coverage of a verdict list.
    pub fn coverage(verdicts: &[FaultVerdict]) -> f64 {
        if verdicts.is_empty() {
            return 0.0;
        }
        verdicts.iter().filter(|v| v.detected).count() as f64 / verdicts.len() as f64
    }

    /// Output values at the capture time.
    fn captures(&self, waveforms: &[avfs_waveform::Waveform]) -> Vec<bool> {
        self.netlist
            .outputs()
            .iter()
            .map(|&po| waveforms[po.index()].value_at(self.capture_ps))
            .collect()
    }

    /// Derives the faulty annotation: `δ` added to every pin delay of the
    /// fault site.
    fn inject(&self, fault: SmallDelayFault) -> TimingAnnotation {
        let mut ann = (*self.annotation).clone();
        for d in ann.node_delays_mut(fault.node).iter_mut() {
            *d = PinDelays {
                rise: d.rise + fault.delta_ps,
                fall: d.fall + fault.delta_ps,
            };
        }
        ann
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfs_atpg::pattern::{Pattern, PatternPair};
    use avfs_delay::{ParameterSpace, StaticModel};
    use avfs_netlist::{CellLibrary, NetlistBuilder};

    /// Chain of four inverters, 10 ps each → nominal arrival 40 ps.
    fn chain() -> (Arc<Netlist>, Arc<TimingAnnotation>) {
        let lib = CellLibrary::nangate15_like();
        let mut b = NetlistBuilder::new("chain", &lib);
        let a = b.add_input("a").unwrap();
        let mut prev = a;
        for i in 0..4 {
            prev = b.add_gate(format!("g{i}"), "INV_X1", &[prev]).unwrap();
        }
        b.add_output("y", prev).unwrap();
        let n = Arc::new(b.finish().unwrap());
        let mut ann = TimingAnnotation::zero(&n);
        for (id, node) in n.iter() {
            if matches!(node.kind(), NodeKind::Gate(_)) {
                for p in 0..node.fanin().len() {
                    ann.node_delays_mut(id)[p] = PinDelays {
                        rise: 10.0,
                        fall: 10.0,
                    };
                }
            }
        }
        (n, Arc::new(ann))
    }

    fn toggle_pattern() -> PatternSet {
        std::iter::once(
            PatternPair::new(Pattern::from_bits([false]), Pattern::from_bits([true])).unwrap(),
        )
        .collect()
    }

    fn sim(capture: f64) -> DelayFaultSimulator {
        let (n, ann) = chain();
        DelayFaultSimulator::new(
            n,
            ann,
            Arc::new(StaticModel::new(ParameterSpace::paper())),
            capture,
        )
        .unwrap()
    }

    #[test]
    fn tight_capture_detects_small_delta() {
        // Arrival 40 ps, capture 45 ps → δ = 10 pushes past capture.
        let s = sim(45.0);
        let faults = s.full_fault_list(10.0);
        assert_eq!(faults.len(), 4);
        let verdicts = s
            .run(
                &faults,
                &toggle_pattern(),
                0.8,
                &SimOptions {
                    threads: 1,
                    ..SimOptions::default()
                },
            )
            .unwrap();
        assert!(verdicts.iter().all(|v| v.detected), "{verdicts:?}");
        assert!((DelayFaultSimulator::coverage(&verdicts) - 1.0).abs() < 1e-12);
        for v in &verdicts {
            assert_eq!(v.detected_by, Some(0));
            assert!((v.worst_overshoot_ps - 5.0).abs() < 1e-9);
        }
    }

    #[test]
    fn loose_capture_hides_small_delta() {
        // Capture 100 ps → a 10 ps defect stays invisible ("hidden delay
        // fault", the FAST-BIST motivation the paper cites).
        let s = sim(100.0);
        let faults = s.full_fault_list(10.0);
        let verdicts = s
            .run(
                &faults,
                &toggle_pattern(),
                0.8,
                &SimOptions {
                    threads: 1,
                    ..SimOptions::default()
                },
            )
            .unwrap();
        assert!(verdicts.iter().all(|v| !v.detected));
        assert_eq!(DelayFaultSimulator::coverage(&verdicts), 0.0);
    }

    #[test]
    fn threshold_delta_behaviour() {
        // Capture 45: δ = 4 keeps arrival at 44 < 45 (undetected); δ = 6
        // lands at 46 > 45 (detected).
        let s = sim(45.0);
        let small = s
            .run(
                &s.full_fault_list(4.0),
                &toggle_pattern(),
                0.8,
                &SimOptions {
                    threads: 1,
                    ..SimOptions::default()
                },
            )
            .unwrap();
        assert!(small.iter().all(|v| !v.detected));
        let big = s
            .run(
                &s.full_fault_list(6.0),
                &toggle_pattern(),
                0.8,
                &SimOptions {
                    threads: 1,
                    ..SimOptions::default()
                },
            )
            .unwrap();
        assert!(big.iter().all(|v| v.detected));
    }

    #[test]
    fn quiet_pattern_detects_nothing() {
        let s = sim(45.0);
        let quiet: PatternSet = std::iter::once(
            PatternPair::new(Pattern::from_bits([true]), Pattern::from_bits([true])).unwrap(),
        )
        .collect();
        let verdicts = s
            .run(
                &s.full_fault_list(50.0),
                &quiet,
                0.8,
                &SimOptions {
                    threads: 1,
                    ..SimOptions::default()
                },
            )
            .unwrap();
        assert!(verdicts.iter().all(|v| !v.detected));
    }

    #[test]
    fn empty_inputs() {
        let s = sim(45.0);
        assert_eq!(DelayFaultSimulator::coverage(&[]), 0.0);
        let verdicts = s
            .run(&[], &toggle_pattern(), 0.8, &SimOptions::default())
            .unwrap();
        assert!(verdicts.is_empty());
    }
}
