//! High-level facade tying netlist, annotation, delay model and engine
//! together — the entry point used by the examples and benches.
//!
//! Every run returned here carries the engine's
//! [`RunDiagnostics`](crate::results::RunDiagnostics): check
//! [`SimRun::is_complete`](crate::results::SimRun::is_complete) to learn
//! whether any slot was quarantined (arena overflow past the retry limit)
//! or had its panic contained, and inspect per-slot
//! [`SlotStatus`](crate::results::SlotStatus) for the verdicts.

use crate::engine::{Engine, SimOptions};
use crate::event_driven::EventDrivenSimulator;
use crate::results::SimRun;
use crate::slots::{at_voltage, cross};
use crate::sta::{longest_path, StaReport};
use crate::SimError;
use avfs_atpg::PatternSet;
use avfs_delay::model::DelayModel;
use avfs_delay::TimingAnnotation;
use avfs_netlist::Netlist;
use std::sync::Arc;

/// One fully configured voltage-aware time simulator.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use avfs_core::TimeSimulator;
/// use avfs_delay::{characterize::{characterize_library, CharacterizationConfig}};
/// use avfs_netlist::CellLibrary;
/// use avfs_spice::Technology;
/// use avfs_atpg::PatternSet;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lib = CellLibrary::nangate15_like();
/// let netlist = Arc::new(avfs_circuits::c17(&lib)?);
/// let nand = lib.find("NAND2_X1").expect("cell exists");
/// let chars = characterize_library(
///     &lib,
///     &Technology::nm15(),
///     &CharacterizationConfig::fast(),
///     Some(&[nand]),
/// )?;
/// let sim = TimeSimulator::from_characterization(netlist, &chars)?;
/// let patterns = PatternSet::lfsr(5, 8, 42);
/// let sweep = sim.voltage_sweep(&patterns, &[0.55, 0.8, 1.1], &Default::default())?;
/// let t_low = sweep.latest_arrival_at(0.55).expect("outputs toggled");
/// let t_high = sweep.latest_arrival_at(1.1).expect("outputs toggled");
/// assert!(t_low > t_high, "lower voltage must be slower");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TimeSimulator {
    engine: Engine,
    netlist: Arc<Netlist>,
    annotation: Arc<TimingAnnotation>,
}

impl TimeSimulator {
    /// Assembles a simulator from explicit parts.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::AnnotationMismatch`] if the annotation does not
    /// cover the netlist.
    pub fn new(
        netlist: Arc<Netlist>,
        annotation: Arc<TimingAnnotation>,
        model: Arc<dyn DelayModel>,
    ) -> Result<TimeSimulator, SimError> {
        let engine = Engine::new(Arc::clone(&netlist), Arc::clone(&annotation), model)?;
        Ok(TimeSimulator {
            engine,
            netlist,
            annotation,
        })
    }

    /// Assembles a simulator from a characterization: the netlist is
    /// annotated with nominal delays at its instance loads, and the
    /// compiled polynomial model becomes the delay kernel.
    ///
    /// # Errors
    ///
    /// Propagates annotation failures ([`SimError::Model`] for
    /// uncharacterized cells).
    pub fn from_characterization(
        netlist: Arc<Netlist>,
        chars: &avfs_delay::CharacterizedLibrary,
    ) -> Result<TimeSimulator, SimError> {
        let annotation = Arc::new(chars.annotate(&netlist)?);
        let model = Arc::new(chars.model().clone());
        TimeSimulator::new(netlist, annotation, model)
    }

    /// The underlying engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The simulated netlist.
    pub fn netlist(&self) -> &Arc<Netlist> {
        &self.netlist
    }

    /// The nominal annotation.
    pub fn annotation(&self) -> &Arc<TimingAnnotation> {
        &self.annotation
    }

    /// Simulates all patterns at a single supply voltage.
    ///
    /// # Errors
    ///
    /// See [`Engine::run`].
    pub fn run_at(
        &self,
        patterns: &PatternSet,
        voltage: f64,
        options: &SimOptions,
    ) -> Result<SimRun, SimError> {
        self.engine
            .run(patterns, &at_voltage(patterns.len(), voltage), options)
    }

    /// Simulates the full cross product `patterns × voltages` in one
    /// launch — the design-space-exploration entry point.
    ///
    /// # Errors
    ///
    /// See [`Engine::run`].
    pub fn voltage_sweep(
        &self,
        patterns: &PatternSet,
        voltages: &[f64],
        options: &SimOptions,
    ) -> Result<SimRun, SimError> {
        self.engine
            .run(patterns, &cross(patterns.len(), voltages), options)
    }

    /// Simulates time-domain AVFS scenarios: each slot replays its
    /// pattern under a piecewise operating-point [`Schedule`]
    /// (droop transients, DVFS governor steps), optionally expanded into
    /// [`MonteCarlo`] process-variation dice, and the returned run
    /// carries a failure-probability-vs-voltage
    /// [`ScenarioSummary`](crate::scenario::ScenarioSummary) against
    /// `capture_deadline_ps`.
    ///
    /// A constant (single-segment) schedule is bit-identical to the
    /// corresponding static run — see [`crate::scenario`].
    ///
    /// # Errors
    ///
    /// See [`CompiledNetlist::launch_scenarios`](crate::CompiledNetlist::launch_scenarios).
    ///
    /// [`Schedule`]: crate::scenario::Schedule
    /// [`MonteCarlo`]: crate::scenario::MonteCarlo
    pub fn run_scenarios(
        &self,
        patterns: &PatternSet,
        scenarios: &[crate::scenario::ScenarioSpec],
        mc: Option<&crate::scenario::MonteCarlo>,
        capture_deadline_ps: Option<f64>,
        options: &SimOptions,
    ) -> Result<SimRun, SimError> {
        self.engine
            .run_scenarios(patterns, scenarios, mc, capture_deadline_ps, options)
    }

    /// Builds the serial event-driven baseline over the same netlist and
    /// annotation.
    ///
    /// # Errors
    ///
    /// See [`EventDrivenSimulator::new`].
    pub fn event_driven_baseline(&self) -> Result<EventDrivenSimulator, SimError> {
        EventDrivenSimulator::new(Arc::clone(&self.netlist), Arc::clone(&self.annotation))
    }

    /// Static timing analysis over the nominal annotation (Table II
    /// column 2).
    pub fn sta(&self) -> StaReport {
        longest_path(&self.netlist, self.engine.levels(), &self.annotation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfs_delay::characterize::{characterize_library, CharacterizationConfig};
    use avfs_netlist::CellLibrary;
    use avfs_spice::Technology;

    #[test]
    fn c17_full_flow_voltage_ordering() {
        let lib = CellLibrary::nangate15_like();
        let netlist = Arc::new(avfs_circuits::c17(&lib).unwrap());
        let chars = characterize_library(
            &lib,
            &Technology::nm15(),
            &CharacterizationConfig::fast(),
            Some(&[lib.find("NAND2_X1").unwrap()]),
        )
        .unwrap();
        let sim = TimeSimulator::from_characterization(Arc::clone(&netlist), &chars).unwrap();
        let patterns = PatternSet::lfsr(5, 16, 3);
        let opts = SimOptions {
            threads: 1,
            ..SimOptions::default()
        };
        let run = sim
            .voltage_sweep(&patterns, &[0.55, 0.7, 0.8, 0.9, 1.1], &opts)
            .unwrap();
        // Monotone: latest arrival decreases with voltage.
        let arrivals: Vec<f64> = [0.55, 0.7, 0.8, 0.9, 1.1]
            .iter()
            .map(|&v| run.latest_arrival_at(v).expect("c17 toggles"))
            .collect();
        for w in arrivals.windows(2) {
            assert!(w[0] > w[1], "arrivals must fall with voltage: {arrivals:?}");
        }
        // STA bound dominates the simulated arrivals at nominal.
        let sta = sim.sta();
        assert!(sta.longest_path_ps >= run.latest_arrival_at(0.8).unwrap() * 0.999);
        assert!(sta.critical_path.len() >= 3);
    }

    #[test]
    fn facade_exposes_event_driven_baseline() {
        let lib = CellLibrary::nangate15_like();
        let netlist = Arc::new(avfs_circuits::c17(&lib).unwrap());
        let chars = characterize_library(
            &lib,
            &Technology::nm15(),
            &CharacterizationConfig::fast(),
            Some(&[lib.find("NAND2_X1").unwrap()]),
        )
        .unwrap();
        let sim = TimeSimulator::from_characterization(Arc::clone(&netlist), &chars).unwrap();
        let baseline = sim.event_driven_baseline().expect("positive delays");
        let patterns = PatternSet::lfsr(5, 8, 1);
        let slots = crate::slots::at_voltage(patterns.len(), 0.8);
        let a = baseline.run(&patterns, &slots, false).unwrap();
        let b = sim
            .run_at(
                &patterns,
                0.8,
                &SimOptions {
                    threads: 1,
                    ..SimOptions::default()
                },
            )
            .unwrap();
        // Responses agree; arrivals agree to within the kernel's nominal
        // approximation error (the baseline is static-delay).
        for (x, y) in a.slots.iter().zip(&b.slots) {
            assert_eq!(x.responses, y.responses);
            if let (Some(ta), Some(tb)) =
                (x.latest_output_transition_ps, y.latest_output_transition_ps)
            {
                assert!((ta - tb).abs() / ta < 0.05, "{ta} vs {tb}");
            }
        }
    }

    #[test]
    fn static_vs_parametric_nominal_deviation_small() {
        // Table II: at the nominal voltage the parametric simulation
        // deviates from the static one by a fraction of a percent.
        let lib = CellLibrary::nangate15_like();
        let netlist = Arc::new(avfs_circuits::c17(&lib).unwrap());
        let chars = characterize_library(
            &lib,
            &Technology::nm15(),
            &CharacterizationConfig::fast(),
            Some(&[lib.find("NAND2_X1").unwrap()]),
        )
        .unwrap();
        let sim = TimeSimulator::from_characterization(Arc::clone(&netlist), &chars).unwrap();
        let static_sim = TimeSimulator::new(
            Arc::clone(&netlist),
            Arc::clone(sim.annotation()),
            Arc::new(avfs_delay::StaticModel::new(*chars.space())),
        )
        .unwrap();
        let patterns = PatternSet::lfsr(5, 16, 9);
        let opts = SimOptions {
            threads: 1,
            ..SimOptions::default()
        };
        let a = sim.run_at(&patterns, 0.8, &opts).unwrap();
        let b = static_sim.run_at(&patterns, 0.8, &opts).unwrap();
        let ta = a.latest_arrival_at(0.8).unwrap();
        let tb = b.latest_arrival_at(0.8).unwrap();
        let dev = (ta - tb).abs() / tb;
        assert!(
            dev < 0.02,
            "nominal deviation {dev} too large ({ta} vs {tb})"
        );
    }
}
