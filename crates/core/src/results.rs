//! Simulation results, per-slot fault status and throughput accounting.

use crate::slots::SlotSpec;
use avfs_obs::Profile;
use avfs_waveform::{SwitchingActivity, Waveform};
use std::fmt;
use std::time::Duration;

/// Completion status of one slot — the fault-isolation verdict.
///
/// The engine never aborts a run for a single misbehaving slot: a slot
/// whose waveforms outgrow the bounded arena is quarantined and retried at
/// larger capacity, and a slot whose worker panics is contained. This enum
/// records how each slot ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotStatus {
    /// The slot simulated to completion; `retries` counts how many times it
    /// had to be re-simulated after a waveform-capacity overflow (0 = first
    /// attempt succeeded).
    Completed {
        /// Capacity-growth re-simulations this slot needed.
        retries: u32,
    },
    /// The slot still overflowed at the final retry capacity; its result
    /// fields are empty.
    Overflowed {
        /// The per-net transition capacity of the last attempt.
        capacity: usize,
    },
    /// The slot's worker panicked; the panic was contained and the slot's
    /// result fields are empty.
    Panicked,
    /// The run's wall-clock [`deadline`](crate::engine::SimOptions::deadline)
    /// expired before this slot finished; its result fields are empty.
    /// Slots that completed before the deadline are returned normally.
    DeadlineExceeded,
    /// A quarantine-retry round for this slot was denied by the
    /// [`memory_budget`](crate::engine::SimOptions::memory_budget)
    /// admission check (or an injected allocation-cap breach); its result
    /// fields are empty.
    BudgetExceeded,
}

impl SlotStatus {
    /// Whether the slot produced a usable result.
    pub fn is_completed(&self) -> bool {
        matches!(self, SlotStatus::Completed { .. })
    }
}

impl Default for SlotStatus {
    /// Completed on the first attempt.
    fn default() -> Self {
        SlotStatus::Completed { retries: 0 }
    }
}

/// Which run budget cut a run short (recorded in
/// [`RunDiagnostics::budget_tripped`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrippedBudget {
    /// The wall-clock [`deadline`](crate::engine::SimOptions::deadline)
    /// expired; unfinished slots were marked
    /// [`SlotStatus::DeadlineExceeded`].
    Deadline,
    /// The [`memory_budget`](crate::engine::SimOptions::memory_budget)
    /// denied a quarantine-retry round capacity growth; the denied slots
    /// were marked [`SlotStatus::BudgetExceeded`].
    Memory,
}

impl fmt::Display for TrippedBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TrippedBudget::Deadline => "deadline",
            TrippedBudget::Memory => "memory",
        })
    }
}

/// Aggregated robustness diagnostics of one run.
///
/// The counters answer "did the engine have to defend itself, and how?" —
/// the CPU analogue of reading back the GPU's overflow flags after a
/// launch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunDiagnostics {
    /// Slots (by index into [`SimRun::slots`]) that overflowed the
    /// waveform arena at least once, including those that completed after
    /// a retry.
    pub overflowed_slots: Vec<usize>,
    /// Total capacity-growth re-simulations across all slots.
    pub slot_retries: u64,
    /// Slots whose worker panicked (contained; marked
    /// [`SlotStatus::Panicked`]).
    pub panicked_slots: Vec<usize>,
    /// Slots that produced no usable result (panicked, or still overflowing
    /// at the retry limit).
    pub failed_slots: Vec<usize>,
    /// Annotated output loads outside the delay model's characterized
    /// interval, silently clamped to its boundary during engine setup.
    pub clamped_loads: usize,
    /// Gate-delay scalings whose result was non-finite and fell back to
    /// the nominal delay (see the online delay calculation guard).
    pub kernel_fallbacks: u64,
    /// Largest per-`(slot, net)` transition count observed in the arena —
    /// compare against the configured capacity to judge headroom.
    pub peak_arena_occupancy: usize,
    /// The first run budget that cut the run short, if any (the deadline
    /// and the memory budget can both trip; the first to fire is
    /// recorded).
    pub budget_tripped: Option<TrippedBudget>,
    /// Slots marked [`SlotStatus::DeadlineExceeded`] because the
    /// wall-clock deadline expired before they finished.
    pub deadline_aborts: u64,
    /// Quarantine-retry admissions denied by the memory budget (or an
    /// injected allocation-cap breach); each denial lands one slot in
    /// [`SlotStatus::BudgetExceeded`].
    pub budget_denials: u64,
    /// Stalled pool epochs detected by the coordinator-side watchdog
    /// (armed by [`stall_timeout`](crate::engine::SimOptions::stall_timeout);
    /// observation only — a stall is waited out, never killed).
    pub watchdog_stalls: u64,
    /// Faults fired by an armed
    /// [`fault_plan`](crate::engine::SimOptions::fault_plan) during this
    /// run (0 when unarmed or armed-empty).
    pub faults_injected: u64,
    /// Rendered `avfs-check` findings from the run's up-front validation
    /// (`severity rule [location]: message` per line). Empty when
    /// [`SimOptions::strict_validation`](crate::engine::SimOptions) is
    /// `Off` or the launch is clean; under `Deny` a warn-or-worse finding
    /// aborts the run instead of landing here.
    pub validation_findings: Vec<String>,
}

impl fmt::Display for RunDiagnostics {
    /// One-line-per-counter human-readable summary — the rendering shared
    /// by `perf_report` and the examples.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "diagnostics:")?;
        writeln!(
            f,
            "  overflowed slots : {} (retries: {})",
            self.overflowed_slots.len(),
            self.slot_retries
        )?;
        writeln!(f, "  panicked slots   : {}", self.panicked_slots.len())?;
        writeln!(f, "  failed slots     : {}", self.failed_slots.len())?;
        writeln!(f, "  clamped loads    : {}", self.clamped_loads)?;
        writeln!(f, "  kernel fallbacks : {}", self.kernel_fallbacks)?;
        writeln!(
            f,
            "  peak arena use   : {} transitions/net",
            self.peak_arena_occupancy
        )?;
        if let Some(budget) = self.budget_tripped {
            writeln!(
                f,
                "  budget tripped   : {budget} (deadline aborts: {}, budget denials: {})",
                self.deadline_aborts, self.budget_denials
            )?;
        }
        if self.watchdog_stalls > 0 {
            writeln!(f, "  watchdog stalls  : {}", self.watchdog_stalls)?;
        }
        if self.faults_injected > 0 {
            writeln!(f, "  faults injected  : {}", self.faults_injected)?;
        }
        writeln!(
            f,
            "  validation       : {} finding(s)",
            self.validation_findings.len()
        )?;
        for finding in &self.validation_findings {
            writeln!(f, "    {finding}")?;
        }
        Ok(())
    }
}

/// The outcome of one slot (one stimulus under one operating point).
#[derive(Debug, Clone, PartialEq)]
pub struct SlotResult {
    /// The slot assignment this result belongs to.
    pub spec: SlotSpec,
    /// How the slot ended: completed (with retry count), overflowed, or
    /// panicked. Non-completed slots have empty result fields.
    pub status: SlotStatus,
    /// Final value of every primary output (the test response).
    pub responses: Vec<bool>,
    /// Latest transition observed at any primary output, ps — the
    /// "latest transition arrival time" of Table II.
    pub latest_output_transition_ps: Option<f64>,
    /// Switching activity aggregated over all nets of the slot.
    pub activity: SwitchingActivity,
    /// Full per-net waveforms (only retained when
    /// [`SimOptions::keep_waveforms`](crate::engine::SimOptions) is set —
    /// memory scales with nodes × slots).
    pub waveforms: Option<Vec<Waveform>>,
}

impl SlotResult {
    /// An empty result recording a failed slot.
    pub(crate) fn failed(spec: SlotSpec, status: SlotStatus) -> SlotResult {
        SlotResult {
            spec,
            status,
            responses: Vec::new(),
            latest_output_transition_ps: None,
            activity: SwitchingActivity::default(),
            waveforms: None,
        }
    }
}

/// A completed simulation run.
#[derive(Debug, Clone)]
pub struct SimRun {
    /// Per-slot results in slot order.
    pub slots: Vec<SlotResult>,
    /// Wall-clock simulation time (excludes setup, as in the paper's
    /// "only the bare simulation times were considered").
    pub elapsed: Duration,
    /// Total node evaluations (nodes × slots, retries included).
    pub node_evaluations: u64,
    /// Robustness diagnostics: overflows, retries, contained panics,
    /// clamped inputs and arena headroom.
    pub diagnostics: RunDiagnostics,
    /// Phase-level performance profile — `Some` only when the run was
    /// launched with
    /// [`SimOptions::profiling`](crate::engine::SimOptions::profiling).
    /// Phase names are the constants of [`crate::phases`]; durations are
    /// nanoseconds.
    pub profile: Option<Profile>,
    /// Scenario reduction — `Some` only when the run was launched
    /// through the scenario engine
    /// ([`CompiledNetlist::launch_scenarios`](crate::CompiledNetlist::launch_scenarios)
    /// and friends): the failure-probability-vs-voltage curve over the
    /// run's slots (DESIGN.md §15).
    pub scenario: Option<crate::scenario::ScenarioSummary>,
}

impl SimRun {
    /// Throughput in million node evaluations per second — the MEPS metric
    /// of Table I.
    pub fn meps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.node_evaluations as f64 / secs / 1e6
    }

    /// The latest output transition over all slots at a given voltage
    /// (Table II aggregates per voltage over the whole pattern set).
    pub fn latest_arrival_at(&self, voltage: f64) -> Option<f64> {
        self.slots
            .iter()
            .filter(|s| (s.spec.voltage - voltage).abs() < 1e-12)
            .filter_map(|s| s.latest_output_transition_ps)
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.max(t))))
    }

    /// Distinct voltages simulated, in first-appearance order.
    pub fn voltages(&self) -> Vec<f64> {
        let mut out: Vec<f64> = Vec::new();
        for s in &self.slots {
            if !out.iter().any(|&v| (v - s.spec.voltage).abs() < 1e-12) {
                out.push(s.spec.voltage);
            }
        }
        out
    }

    /// Whether every slot produced a usable result.
    pub fn is_complete(&self) -> bool {
        self.diagnostics.failed_slots.is_empty()
    }

    /// Human-readable run summary: throughput, diagnostics, and — when
    /// profiling was on — the phase-level profile. Used by `perf_report`
    /// and the examples.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "{} slots in {:.3} ms — {:.2} MEPS ({} node evaluations)\n",
            self.slots.len(),
            self.elapsed.as_secs_f64() * 1e3,
            self.meps(),
            self.node_evaluations,
        );
        out.push_str(&self.diagnostics.to_string());
        if let Some(profile) = &self.profile {
            out.push_str(&profile.to_string());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(voltage: f64, latest: Option<f64>) -> SlotResult {
        SlotResult {
            spec: SlotSpec {
                pattern: 0,
                voltage,
            },
            status: SlotStatus::default(),
            responses: vec![],
            latest_output_transition_ps: latest,
            activity: SwitchingActivity::default(),
            waveforms: None,
        }
    }

    #[test]
    fn meps_accounting() {
        let run = SimRun {
            slots: vec![],
            elapsed: Duration::from_millis(100),
            node_evaluations: 5_000_000,
            diagnostics: RunDiagnostics::default(),
            profile: None,
            scenario: None,
        };
        assert!((run.meps() - 50.0).abs() < 1e-9);
        let zero = SimRun {
            slots: vec![],
            elapsed: Duration::ZERO,
            node_evaluations: 1,
            diagnostics: RunDiagnostics::default(),
            profile: None,
            scenario: None,
        };
        assert_eq!(zero.meps(), 0.0);
    }

    #[test]
    fn latest_arrival_per_voltage() {
        let run = SimRun {
            slots: vec![
                slot(0.8, Some(100.0)),
                slot(0.8, Some(250.0)),
                slot(0.8, None),
                slot(1.1, Some(80.0)),
            ],
            elapsed: Duration::from_secs(1),
            node_evaluations: 1,
            diagnostics: RunDiagnostics::default(),
            profile: None,
            scenario: None,
        };
        assert_eq!(run.latest_arrival_at(0.8), Some(250.0));
        assert_eq!(run.latest_arrival_at(1.1), Some(80.0));
        assert_eq!(run.latest_arrival_at(0.55), None);
        assert_eq!(run.voltages(), vec![0.8, 1.1]);
    }

    #[test]
    fn status_and_completeness() {
        assert!(SlotStatus::default().is_completed());
        assert!(SlotStatus::Completed { retries: 3 }.is_completed());
        assert!(!SlotStatus::Overflowed { capacity: 64 }.is_completed());
        assert!(!SlotStatus::Panicked.is_completed());
        assert!(!SlotStatus::DeadlineExceeded.is_completed());
        assert!(!SlotStatus::BudgetExceeded.is_completed());
        let clean = SimRun {
            slots: vec![slot(0.8, None)],
            elapsed: Duration::ZERO,
            node_evaluations: 0,
            diagnostics: RunDiagnostics::default(),
            profile: None,
            scenario: None,
        };
        assert!(clean.is_complete());
        let failed = SimRun {
            diagnostics: RunDiagnostics {
                failed_slots: vec![0],
                ..RunDiagnostics::default()
            },
            ..clean
        };
        assert!(!failed.is_complete());
    }
}
