//! Simulation results and throughput accounting.

use crate::slots::SlotSpec;
use avfs_waveform::{SwitchingActivity, Waveform};
use std::time::Duration;

/// The outcome of one slot (one stimulus under one operating point).
#[derive(Debug, Clone, PartialEq)]
pub struct SlotResult {
    /// The slot assignment this result belongs to.
    pub spec: SlotSpec,
    /// Final value of every primary output (the test response).
    pub responses: Vec<bool>,
    /// Latest transition observed at any primary output, ps — the
    /// "latest transition arrival time" of Table II.
    pub latest_output_transition_ps: Option<f64>,
    /// Switching activity aggregated over all nets of the slot.
    pub activity: SwitchingActivity,
    /// Full per-net waveforms (only retained when
    /// [`SimOptions::keep_waveforms`](crate::engine::SimOptions) is set —
    /// memory scales with nodes × slots).
    pub waveforms: Option<Vec<Waveform>>,
}

/// A completed simulation run.
#[derive(Debug, Clone)]
pub struct SimRun {
    /// Per-slot results in slot order.
    pub slots: Vec<SlotResult>,
    /// Wall-clock simulation time (excludes setup, as in the paper's
    /// "only the bare simulation times were considered").
    pub elapsed: Duration,
    /// Total node evaluations (nodes × slots).
    pub node_evaluations: u64,
}

impl SimRun {
    /// Throughput in million node evaluations per second — the MEPS metric
    /// of Table I.
    pub fn meps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.node_evaluations as f64 / secs / 1e6
    }

    /// The latest output transition over all slots at a given voltage
    /// (Table II aggregates per voltage over the whole pattern set).
    pub fn latest_arrival_at(&self, voltage: f64) -> Option<f64> {
        self.slots
            .iter()
            .filter(|s| (s.spec.voltage - voltage).abs() < 1e-12)
            .filter_map(|s| s.latest_output_transition_ps)
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.max(t))))
    }

    /// Distinct voltages simulated, in first-appearance order.
    pub fn voltages(&self) -> Vec<f64> {
        let mut out: Vec<f64> = Vec::new();
        for s in &self.slots {
            if !out.iter().any(|&v| (v - s.spec.voltage).abs() < 1e-12) {
                out.push(s.spec.voltage);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(voltage: f64, latest: Option<f64>) -> SlotResult {
        SlotResult {
            spec: SlotSpec { pattern: 0, voltage },
            responses: vec![],
            latest_output_transition_ps: latest,
            activity: SwitchingActivity::default(),
            waveforms: None,
        }
    }

    #[test]
    fn meps_accounting() {
        let run = SimRun {
            slots: vec![],
            elapsed: Duration::from_millis(100),
            node_evaluations: 5_000_000,
        };
        assert!((run.meps() - 50.0).abs() < 1e-9);
        let zero = SimRun {
            slots: vec![],
            elapsed: Duration::ZERO,
            node_evaluations: 1,
        };
        assert_eq!(zero.meps(), 0.0);
    }

    #[test]
    fn latest_arrival_per_voltage() {
        let run = SimRun {
            slots: vec![
                slot(0.8, Some(100.0)),
                slot(0.8, Some(250.0)),
                slot(0.8, None),
                slot(1.1, Some(80.0)),
            ],
            elapsed: Duration::from_secs(1),
            node_evaluations: 1,
        };
        assert_eq!(run.latest_arrival_at(0.8), Some(250.0));
        assert_eq!(run.latest_arrival_at(1.1), Some(80.0));
        assert_eq!(run.latest_arrival_at(0.55), None);
        assert_eq!(run.voltages(), vec![0.8, 1.1]);
    }
}
