//! Simulation slots: the unit of horizontal parallelism (paper Fig. 3).
//!
//! "In general, each slot can be assigned an individual input stimuli and
//! operating point for evaluation. This way, the overall parallelization
//! scheme allows to trade-off arbitrarily between simulation of multiple
//! stimuli or multiple operating points."

/// One slot assignment: which pattern pair to replay under which supply
/// voltage. The load half of the operating point is per-net and comes
/// from the annotation, so only the AVFS voltage knob appears here.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotSpec {
    /// Index into the [`PatternSet`](avfs_atpg::PatternSet) under
    /// simulation.
    pub pattern: usize,
    /// Supply voltage of this circuit instance, V.
    pub voltage: f64,
}

/// Builds the full cross product `patterns × voltages` — `n` stimuli under
/// `m` operating points exactly as Fig. 3 draws the grid. Ordered
/// voltage-major so a batch prefers filling with one voltage first (keeps
/// delay-kernel inputs uniform within a batch, mirroring the SIMD-group
/// uniformity argument of Sec. IV.B).
pub fn cross(num_patterns: usize, voltages: &[f64]) -> Vec<SlotSpec> {
    let mut specs = Vec::with_capacity(num_patterns * voltages.len());
    for &voltage in voltages {
        for pattern in 0..num_patterns {
            specs.push(SlotSpec { pattern, voltage });
        }
    }
    specs
}

/// Builds slots replaying every pattern at one voltage.
pub fn at_voltage(num_patterns: usize, voltage: f64) -> Vec<SlotSpec> {
    cross(num_patterns, std::slice::from_ref(&voltage))
}

/// Partitions a slot list into `devices` balanced contiguous groups — the
/// paper's multi-GPU outlook ("simulation problems could be grouped for
/// distribution and execution on multi-GPU systems"). Every group's size
/// differs by at most one; group order preserves slot order, so merged
/// results stay in launch order.
///
/// # Panics
///
/// Panics if `devices == 0`.
pub fn partition(slots: &[SlotSpec], devices: usize) -> Vec<Vec<SlotSpec>> {
    assert!(devices > 0, "at least one device required");
    let devices = devices.min(slots.len().max(1));
    let base = slots.len() / devices;
    let extra = slots.len() % devices;
    let mut out = Vec::with_capacity(devices);
    let mut start = 0;
    for d in 0..devices {
        let len = base + usize::from(d < extra);
        out.push(slots[start..start + len].to_vec());
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_product_order() {
        let specs = cross(2, &[0.8, 1.0]);
        assert_eq!(specs.len(), 4);
        assert_eq!(
            specs[0],
            SlotSpec {
                pattern: 0,
                voltage: 0.8
            }
        );
        assert_eq!(
            specs[1],
            SlotSpec {
                pattern: 1,
                voltage: 0.8
            }
        );
        assert_eq!(
            specs[2],
            SlotSpec {
                pattern: 0,
                voltage: 1.0
            }
        );
        assert_eq!(
            specs[3],
            SlotSpec {
                pattern: 1,
                voltage: 1.0
            }
        );
    }

    #[test]
    fn single_voltage_helper() {
        let specs = at_voltage(3, 0.7);
        assert_eq!(specs.len(), 3);
        assert!(specs.iter().all(|s| s.voltage == 0.7));
        assert_eq!(specs[2].pattern, 2);
    }

    #[test]
    fn empty_inputs() {
        assert!(cross(0, &[0.8]).is_empty());
        assert!(cross(5, &[]).is_empty());
    }

    #[test]
    fn partition_balances_and_preserves_order() {
        let specs = cross(10, &[0.8]);
        let parts = partition(&specs, 3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].len(), 4);
        assert_eq!(parts[1].len(), 3);
        assert_eq!(parts[2].len(), 3);
        let merged: Vec<SlotSpec> = parts.into_iter().flatten().collect();
        assert_eq!(merged, specs);
    }

    #[test]
    fn partition_more_devices_than_slots() {
        let specs = cross(2, &[0.8]);
        let parts = partition(&specs, 8);
        assert_eq!(parts.len(), 2);
        assert!(parts.iter().all(|p| p.len() == 1));
    }

    #[test]
    fn partition_empty_slot_list() {
        let parts = partition(&[], 4);
        assert_eq!(parts.len(), 1);
        assert!(parts[0].is_empty());
    }
}
