//! Dynamic-power estimation from glitch-accurate switching activity.
//!
//! The paper names power estimation as a primary consumer of
//! glitch-accurate switching data (its reference \[15\]); for AVFS
//! exploration the interesting quantity is how dynamic energy trades off
//! against the arrival times as the supply scales:
//!
//! ```text
//! E_dyn = ½ · Σ_nets C_net · V_DD² · toggles(net)
//! ```
//!
//! Glitch transitions burn energy without doing work, so the glitch
//! fraction is reported separately — the value a designer weighs against
//! the latency win of a higher supply.

use crate::results::{SimRun, SlotResult};
use avfs_delay::TimingAnnotation;
use avfs_netlist::Netlist;

/// Dynamic-energy estimate of one slot.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyEstimate {
    /// Total switched energy, femtojoule (fF · V²).
    pub total_fj: f64,
    /// Share caused by glitch transitions, femtojoule.
    pub glitch_fj: f64,
    /// Transitions counted.
    pub transitions: usize,
}

impl EnergyEstimate {
    /// Glitch share of the total, in `[0, 1]`.
    pub fn glitch_fraction(&self) -> f64 {
        if self.total_fj <= 0.0 {
            0.0
        } else {
            self.glitch_fj / self.total_fj
        }
    }
}

/// Estimates the switched energy of one slot from its retained waveforms.
///
/// Requires the run to have kept waveforms
/// ([`SimOptions::keep_waveforms`](crate::engine::SimOptions)); returns
/// `None` otherwise.
pub fn slot_energy(
    netlist: &Netlist,
    annotation: &TimingAnnotation,
    slot: &SlotResult,
) -> Option<EnergyEstimate> {
    let waveforms = slot.waveforms.as_ref()?;
    let v = slot.spec.voltage;
    let mut total = 0.0;
    let mut glitch = 0.0;
    let mut transitions = 0usize;
    for (id, _) in netlist.iter() {
        let wf = &waveforms[id.index()];
        let toggles = wf.num_transitions();
        if toggles == 0 {
            continue;
        }
        let c = annotation.load_ff(id);
        let e = 0.5 * c * v * v * toggles as f64;
        total += e;
        let functional = usize::from(wf.initial_value() != wf.final_value());
        glitch += 0.5 * c * v * v * (toggles - functional) as f64;
        transitions += toggles;
    }
    Some(EnergyEstimate {
        total_fj: total,
        glitch_fj: glitch,
        transitions,
    })
}

/// Per-voltage average energy over a run (one entry per distinct voltage,
/// in first-appearance order).
pub fn energy_by_voltage(
    netlist: &Netlist,
    annotation: &TimingAnnotation,
    run: &SimRun,
) -> Vec<(f64, EnergyEstimate)> {
    let mut out: Vec<(f64, EnergyEstimate, usize)> = Vec::new();
    for slot in &run.slots {
        let Some(e) = slot_energy(netlist, annotation, slot) else {
            continue;
        };
        match out
            .iter_mut()
            .find(|(v, _, _)| (*v - slot.spec.voltage).abs() < 1e-12)
        {
            Some((_, acc, count)) => {
                acc.total_fj += e.total_fj;
                acc.glitch_fj += e.glitch_fj;
                acc.transitions += e.transitions;
                *count += 1;
            }
            None => out.push((slot.spec.voltage, e, 1)),
        }
    }
    out.into_iter()
        .map(|(v, mut e, count)| {
            if count > 0 {
                e.total_fj /= count as f64;
                e.glitch_fj /= count as f64;
                e.transitions /= count;
            }
            (v, e)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, SimOptions};
    use crate::slots;
    use avfs_atpg::pattern::{Pattern, PatternPair};
    use avfs_atpg::PatternSet;
    use avfs_delay::{ParameterSpace, StaticModel};
    use avfs_netlist::{CellLibrary, NetlistBuilder, NodeKind};
    use avfs_waveform::PinDelays;
    use std::sync::Arc;

    fn run_chain(voltages: &[f64]) -> (Arc<Netlist>, Arc<TimingAnnotation>, SimRun) {
        let lib = CellLibrary::nangate15_like();
        let mut b = NetlistBuilder::new("p", &lib);
        let a = b.add_input("a").unwrap();
        let g1 = b.add_gate("g1", "INV_X1", &[a]).unwrap();
        let g2 = b.add_gate("g2", "INV_X2", &[g1]).unwrap();
        b.add_output("y", g2).unwrap();
        let n = Arc::new(b.finish().unwrap());
        let mut ann = TimingAnnotation::zero(&n);
        for (id, node) in n.iter() {
            if matches!(node.kind(), NodeKind::Gate(_)) {
                ann.node_delays_mut(id)[0] = PinDelays {
                    rise: 5.0,
                    fall: 6.0,
                };
            }
        }
        let ann = Arc::new(ann);
        let engine = Engine::new(
            Arc::clone(&n),
            Arc::clone(&ann),
            Arc::new(StaticModel::new(ParameterSpace::paper())),
        )
        .unwrap();
        let patterns: PatternSet = std::iter::once(
            PatternPair::new(Pattern::from_bits([false]), Pattern::from_bits([true])).unwrap(),
        )
        .collect();
        let run = engine
            .run(
                &patterns,
                &slots::cross(1, voltages),
                &SimOptions {
                    threads: 1,
                    keep_waveforms: true,
                    ..SimOptions::default()
                },
            )
            .unwrap();
        (n, ann, run)
    }

    #[test]
    fn energy_scales_with_v_squared() {
        let (n, ann, run) = run_chain(&[0.55, 1.1]);
        let by_v = energy_by_voltage(&n, &ann, &run);
        assert_eq!(by_v.len(), 2);
        let (v0, e0) = by_v[0];
        let (v1, e1) = by_v[1];
        assert_eq!(v0, 0.55);
        assert_eq!(v1, 1.1);
        // Static model → same toggles; energy ratio is exactly (V1/V0)².
        assert_eq!(e0.transitions, e1.transitions);
        let ratio = e1.total_fj / e0.total_fj;
        assert!(((v1 / v0).powi(2) - ratio).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn clean_transition_has_no_glitch_energy() {
        let (n, ann, run) = run_chain(&[0.8]);
        let e = slot_energy(&n, &ann, &run.slots[0]).expect("waveforms kept");
        assert!(e.total_fj > 0.0);
        assert_eq!(e.glitch_fj, 0.0);
        assert_eq!(e.glitch_fraction(), 0.0);
        // Input + two gates + PO toggle exactly once each, but PI/PO nets
        // carry loads too: count transitions, not energy details.
        assert_eq!(e.transitions, 4);
    }

    #[test]
    fn requires_kept_waveforms() {
        let (n, ann, mut run) = run_chain(&[0.8]);
        run.slots[0].waveforms = None;
        assert!(slot_energy(&n, &ann, &run.slots[0]).is_none());
        assert!(energy_by_voltage(&n, &ann, &run).is_empty());
    }

    #[test]
    fn glitch_energy_counted() {
        // Reconvergent XOR produces a pure glitch: all its energy is
        // glitch energy on the XOR net.
        let lib = CellLibrary::nangate15_like();
        let mut b = NetlistBuilder::new("g", &lib);
        let a = b.add_input("a").unwrap();
        let inv = b.add_gate("inv", "INV_X1", &[a]).unwrap();
        let x = b.add_gate("x", "XOR2_X1", &[a, inv]).unwrap();
        b.add_output("y", x).unwrap();
        let n = Arc::new(b.finish().unwrap());
        let mut ann = TimingAnnotation::zero(&n);
        for (id, node) in n.iter() {
            if matches!(node.kind(), NodeKind::Gate(_)) {
                for p in 0..node.fanin().len() {
                    ann.node_delays_mut(id)[p] = PinDelays {
                        rise: 10.0,
                        fall: 10.0,
                    };
                }
            }
        }
        let ann = Arc::new(ann);
        let engine = Engine::new(
            Arc::clone(&n),
            Arc::clone(&ann),
            Arc::new(StaticModel::new(ParameterSpace::paper())),
        )
        .unwrap();
        let patterns: PatternSet = std::iter::once(
            PatternPair::new(Pattern::from_bits([false]), Pattern::from_bits([true])).unwrap(),
        )
        .collect();
        let run = engine
            .run(
                &patterns,
                &slots::at_voltage(1, 0.8),
                &SimOptions {
                    threads: 1,
                    keep_waveforms: true,
                    ..SimOptions::default()
                },
            )
            .unwrap();
        let e = slot_energy(&n, &ann, &run.slots[0]).expect("kept");
        assert!(e.glitch_fj > 0.0);
        assert!(e.glitch_fraction() > 0.0 && e.glitch_fraction() < 1.0);
    }
}
