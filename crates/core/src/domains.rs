//! Voltage domains (voltage islands) for multi-rail AVFS systems.
//!
//! The paper's introduction describes AVFS systems that "actively control
//! internal voltages" — in real SoCs those are multiple independently
//! scaled supply rails. [`VoltageDomains`] partitions a netlist's nodes
//! into such rails; [`Engine::run_domains`](crate::engine::Engine) then
//! sweeps per-island voltage configurations exactly as slots sweep global
//! supplies.

use avfs_netlist::{Netlist, NodeId};

/// A partition of a netlist's nodes into independently supplied domains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoltageDomains {
    domain_of: Vec<u16>,
    count: usize,
}

impl VoltageDomains {
    /// One domain covering the whole netlist (equivalent to a global
    /// supply).
    pub fn single(netlist: &Netlist) -> VoltageDomains {
        VoltageDomains {
            domain_of: vec![0; netlist.num_nodes()],
            count: 1,
        }
    }

    /// Builds a partition from an assignment function.
    ///
    /// # Panics
    ///
    /// Panics if the function returns a domain index ≥ 65536.
    pub fn from_fn(netlist: &Netlist, mut assign: impl FnMut(NodeId) -> usize) -> VoltageDomains {
        let mut count = 0usize;
        let domain_of: Vec<u16> = netlist
            .iter()
            .map(|(id, _)| {
                let d = assign(id);
                assert!(d < u16::MAX as usize, "domain index {d} out of range");
                count = count.max(d + 1);
                d as u16
            })
            .collect();
        VoltageDomains {
            domain_of,
            count: count.max(1),
        }
    }

    /// Splits the netlist into `count` domains by output-cone affinity:
    /// every node joins the domain of the primary-output group it
    /// (structurally) feeds first — a simple but realistic islanding
    /// (logic clusters feeding the same interface share a rail).
    pub fn by_output_cones(netlist: &Netlist, count: usize) -> VoltageDomains {
        let count = count.clamp(1, netlist.outputs().len().max(1));
        let mut domain_of = vec![u16::MAX; netlist.num_nodes()];
        // Seed the domains at the outputs, round-robin.
        let mut stack: Vec<(NodeId, u16)> = netlist
            .outputs()
            .iter()
            .enumerate()
            .map(|(k, &po)| (po, (k % count) as u16))
            .collect();
        // Reverse BFS: first domain to reach a node claims it.
        while let Some((id, d)) = stack.pop() {
            if domain_of[id.index()] != u16::MAX {
                continue;
            }
            domain_of[id.index()] = d;
            for &f in netlist.node(id).fanin() {
                if domain_of[f.index()] == u16::MAX {
                    stack.push((f, d));
                }
            }
        }
        // Nodes reaching no output (dead logic) fall into domain 0.
        for d in &mut domain_of {
            if *d == u16::MAX {
                *d = 0;
            }
        }
        VoltageDomains { domain_of, count }
    }

    /// Number of domains.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Number of covered nodes.
    pub fn len(&self) -> usize {
        self.domain_of.len()
    }

    /// `true` when the partition covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.domain_of.is_empty()
    }

    /// The domain of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn domain_of(&self, node: NodeId) -> usize {
        self.domain_of[node.index()] as usize
    }

    /// The domain of a raw node index (hot-path form).
    #[inline]
    pub fn domain_of_index(&self, node: usize) -> usize {
        self.domain_of[node] as usize
    }

    /// Nodes per domain (diagnostic).
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &d in &self.domain_of {
            sizes[d as usize] += 1;
        }
        sizes
    }
}

/// One voltage-island slot: a pattern replayed with one supply voltage
/// per domain.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainSlotSpec {
    /// Index into the pattern set.
    pub pattern: usize,
    /// Supply voltage per domain, `voltages.len() == domains.count()`.
    pub voltages: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, SimOptions};
    use crate::slots;
    use avfs_atpg::PatternSet;
    use avfs_delay::characterize::{characterize_library, CharacterizationConfig};
    use avfs_netlist::{CellLibrary, NodeKind};
    use avfs_spice::Technology;
    use std::sync::Arc;

    fn setup() -> (Arc<Netlist>, Engine) {
        let library = CellLibrary::nangate15_like();
        let netlist =
            Arc::new(avfs_circuits::ripple_carry_adder(8, &library).expect("adder builds"));
        let used: Vec<_> = {
            let mut set = std::collections::BTreeSet::new();
            for (_, node) in netlist.iter() {
                if let NodeKind::Gate(cell) = node.kind() {
                    set.insert(cell);
                }
            }
            set.into_iter().collect()
        };
        let chars = characterize_library(
            &library,
            &Technology::nm15(),
            &CharacterizationConfig::fast(),
            Some(&used),
        )
        .expect("characterizes");
        let annotation = Arc::new(chars.annotate(&netlist).expect("annotates"));
        let engine = Engine::new(
            Arc::clone(&netlist),
            annotation,
            Arc::new(chars.model().clone()),
        )
        .expect("engine builds");
        (netlist, engine)
    }

    #[test]
    fn single_domain_matches_uniform_run() {
        let (netlist, engine) = setup();
        let domains = VoltageDomains::single(&netlist);
        assert_eq!(domains.count(), 1);
        let patterns = PatternSet::lfsr(netlist.inputs().len(), 6, 3);
        let specs: Vec<DomainSlotSpec> = (0..patterns.len())
            .map(|pattern| DomainSlotSpec {
                pattern,
                voltages: vec![0.7],
            })
            .collect();
        let opts = SimOptions {
            threads: 1,
            ..SimOptions::default()
        };
        let island_run = engine
            .run_domains(&patterns, &domains, &specs, &opts)
            .expect("runs");
        let uniform_run = engine
            .run(&patterns, &slots::at_voltage(patterns.len(), 0.7), &opts)
            .expect("runs");
        for (a, b) in island_run.slots.iter().zip(&uniform_run.slots) {
            assert_eq!(a.responses, b.responses);
            assert_eq!(a.latest_output_transition_ps, b.latest_output_transition_ps);
            assert_eq!(a.activity, b.activity);
        }
    }

    #[test]
    fn cone_partition_covers_all_nodes() {
        let (netlist, _) = setup();
        let domains = VoltageDomains::by_output_cones(&netlist, 3);
        assert_eq!(domains.count(), 3);
        assert_eq!(domains.len(), netlist.num_nodes());
        let sizes = domains.sizes();
        assert_eq!(sizes.iter().sum::<usize>(), netlist.num_nodes());
        assert!(sizes.iter().all(|&s| s > 0), "{sizes:?}");
    }

    #[test]
    fn lowering_one_island_slows_only_its_cone() {
        let (netlist, engine) = setup();
        let domains = VoltageDomains::by_output_cones(&netlist, 2);
        let patterns = PatternSet::lfsr(netlist.inputs().len(), 8, 9);
        let opts = SimOptions {
            threads: 1,
            ..SimOptions::default()
        };

        let run_at = |v0: f64, v1: f64| {
            let specs: Vec<DomainSlotSpec> = (0..patterns.len())
                .map(|pattern| DomainSlotSpec {
                    pattern,
                    voltages: vec![v0, v1],
                })
                .collect();
            engine
                .run_domains(
                    &patterns,
                    &domains,
                    &specs,
                    &SimOptions {
                        keep_waveforms: true,
                        ..opts.clone()
                    },
                )
                .expect("runs")
        };
        let both_nominal = run_at(0.8, 0.8);
        let one_low = run_at(0.8, 0.55);
        let both_low = run_at(0.55, 0.55);

        // Per-output arrivals: slowing island 1 must never speed an
        // output up and must strictly slow at least one (the island's
        // own cone); slowing both islands dominates slowing one.
        let mut strictly_slower = false;
        for ((a, b), c) in both_nominal
            .slots
            .iter()
            .zip(&one_low.slots)
            .zip(&both_low.slots)
        {
            let (wa, wb, wc) = (
                a.waveforms.as_ref().expect("kept"),
                b.waveforms.as_ref().expect("kept"),
                c.waveforms.as_ref().expect("kept"),
            );
            for &po in netlist.outputs() {
                let ta = wa[po.index()].last_transition();
                let tb = wb[po.index()].last_transition();
                let tc = wc[po.index()].last_transition();
                if let (Some(ta), Some(tb), Some(tc)) = (ta, tb, tc) {
                    assert!(tb >= ta - 1e-9, "island slow-down sped up an output");
                    assert!(tc >= tb - 1e-9, "slowing both islands must dominate");
                    if tb > ta + 1e-9 {
                        strictly_slower = true;
                    }
                }
            }
            // Logic results are voltage-independent.
            assert_eq!(a.responses, c.responses);
        }
        assert!(strictly_slower, "island 1's cone must slow down somewhere");
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let (netlist, engine) = setup();
        let domains = VoltageDomains::by_output_cones(&netlist, 2);
        let patterns = PatternSet::lfsr(netlist.inputs().len(), 2, 1);
        let opts = SimOptions::default();
        // Wrong voltage count.
        let bad = vec![DomainSlotSpec {
            pattern: 0,
            voltages: vec![0.8],
        }];
        assert!(engine
            .run_domains(&patterns, &domains, &bad, &opts)
            .is_err());
        // Empty specs.
        assert!(engine.run_domains(&patterns, &domains, &[], &opts).is_err());
        // Bad pattern index.
        let bad = vec![DomainSlotSpec {
            pattern: 9,
            voltages: vec![0.8, 0.8],
        }];
        assert!(engine
            .run_domains(&patterns, &domains, &bad, &opts)
            .is_err());
    }

    #[test]
    fn from_fn_assignment() {
        let (netlist, _) = setup();
        let domains = VoltageDomains::from_fn(&netlist, |id| id.index() % 4);
        assert_eq!(domains.count(), 4);
        for (id, _) in netlist.iter() {
            assert_eq!(domains.domain_of(id), id.index() % 4);
        }
    }
}
