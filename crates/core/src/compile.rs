//! The compile step of the compile-once / simulate-many split.
//!
//! GATSPI's 1000× (and this paper's own throughput story) rests on
//! amortization: pay netlist preparation once, then launch as many
//! slot-parallel simulation instances as the hardware fits. This module
//! is the offline half: [`CompiledNetlist`] captures everything about a
//! (netlist, annotation, delay model) triple that is independent of a
//! particular launch —
//!
//! * the levelized graph (loop check included),
//! * input hardening and per-node load normalization (`φ_C` clamped into
//!   the characterized interval),
//! * the tier-1/tier-2 lint report, pre-rendered so per-run validation
//!   only has to check operating points,
//! * the per-level execution plan (gate task lists, pin-delay offsets,
//!   output passthroughs) previously rebuilt per batch per level.
//!
//! The artifact is immutable, `Send + Sync`, and `Arc`-shared: clone the
//! `Arc` into any number of [`Session`](crate::session::Session)s or
//! hand it to a [`BatchRunner`](crate::batch::BatchRunner), and every
//! launch is launch-only. The legacy [`Engine`](crate::Engine) is now a
//! thin shim that compiles at construction and launches through here.

use crate::batch::Lru;
use crate::engine::DelayTable;
use crate::SimError;
use avfs_check::Finding;
use avfs_delay::model::DelayModel;
use avfs_delay::op::OperatingPoint;
use avfs_delay::TimingAnnotation;
use avfs_netlist::{Levelization, Netlist, NodeId, NodeKind};
use std::sync::{Arc, Mutex};

/// Distinct uniform supply voltages whose fully-scaled delay tables the
/// artifact keeps resident. AVFS workloads cycle through a small set of
/// DVFS operating points, so a handful of slots covers the steady state;
/// one table costs `O(total gate pins)` `PinDelays`.
const DELAY_TABLE_SLOTS: usize = 16;

/// The precomputed task plan of one level: which nodes are gate tasks
/// (with their pin-delay offsets into the level's flat delay buffer) and
/// which are primary-output passthroughs. Previously rebuilt per batch
/// per level on the coordinator; now computed once at compile.
#[derive(Debug, Clone, Default)]
pub(crate) struct LevelPlan {
    /// The level's gate nodes, in level order — the task axis.
    pub(crate) gate_nodes: Vec<NodeId>,
    /// `gate_offsets[pos]` — offset of `gate_nodes[pos]`'s first pin in
    /// the level's flat per-voltage-group delay buffer.
    pub(crate) gate_offsets: Vec<usize>,
    /// Primary outputs of the level, copied cell-to-cell at the barrier.
    pub(crate) output_nodes: Vec<NodeId>,
}

/// An immutable compiled simulation artifact: one netlist, levelized and
/// hardened, bound to one timing annotation and one delay model, with
/// normalized per-node loads, a pre-rendered lint report and per-level
/// execution plans.
///
/// Compile once with [`CompiledNetlist::compile`], share via `Arc`, then
/// launch any number of runs — directly via
/// [`CompiledNetlist::launch`], with a parked worker pool via
/// [`Session`](crate::session::Session), or sharded-and-cached via
/// [`BatchRunner`](crate::batch::BatchRunner).
///
/// ```
/// use avfs_core::{slots, CompiledNetlist, Session, SimOptions};
/// use avfs_atpg::PatternSet;
/// use avfs_delay::{ParameterSpace, StaticModel, TimingAnnotation};
/// use avfs_netlist::CellLibrary;
/// use std::sync::Arc;
///
/// let library = CellLibrary::nangate15_like();
/// let netlist = Arc::new(avfs_circuits::ripple_carry_adder(4, &library)?);
/// let compiled = Arc::new(CompiledNetlist::compile(
///     Arc::clone(&netlist),
///     Arc::new(TimingAnnotation::zero(&netlist)),
///     Arc::new(StaticModel::new(ParameterSpace::paper())),
/// )?);
/// // Compile cost is paid; every launch below is launch-only.
/// let patterns = PatternSet::lfsr(netlist.inputs().len(), 4, 7);
/// let slot_list = slots::at_voltage(patterns.len(), 0.8);
/// let mut session = Session::new(Arc::clone(&compiled), 1);
/// let a = session.run(&patterns, &slot_list, &SimOptions::default())?;
/// let b = session.run(&patterns, &slot_list, &SimOptions::default())?;
/// assert_eq!(a.slots, b.slots);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct CompiledNetlist {
    pub(crate) netlist: Arc<Netlist>,
    pub(crate) levels: Arc<Levelization>,
    pub(crate) annotation: Arc<TimingAnnotation>,
    pub(crate) model: Arc<dyn DelayModel>,
    /// Pre-normalized `φ_C(load)` per node (clamped into the model's
    /// characterized interval; dangling nets sit at the lower bound).
    pub(crate) c_norm: Vec<f64>,
    /// Annotated loads outside the characterized interval that the
    /// normalization above clamped — reported per run in
    /// [`RunDiagnostics::clamped_loads`](crate::RunDiagnostics::clamped_loads).
    pub(crate) clamped_loads: usize,
    /// Tier-1/tier-2 findings computed once at compile (netlist lints,
    /// levelization cross-check, clamped annotated loads); replayed into
    /// every run's validation according to
    /// [`SimOptions::strict_validation`](crate::SimOptions::strict_validation).
    pub(crate) setup_findings: Vec<Finding>,
    /// The setup findings rendered once at compile, so per-run
    /// validation only renders the launch's operating-point findings.
    pub(crate) setup_rendered: Vec<String>,
    /// Whether any setup finding is warn-or-worse — the compile-time
    /// half of the `Deny` decision, precomputed.
    pub(crate) setup_deny: bool,
    /// Per-level task plans, indexed by level (level 0 — the stimuli —
    /// has an empty plan).
    pub(crate) level_plans: Vec<LevelPlan>,
    /// Per-voltage modified-delay tables, keyed by the supply's bit
    /// pattern and built lazily on first launch at that voltage: the
    /// delay-kernel initialization phase is a pure function of (artifact,
    /// uniform supply), so repeated launches reuse it instead of
    /// re-evaluating every `φ_V`/`φ_C` factor
    /// (see [`CompiledNetlist::cached_delay_table`]).
    pub(crate) delay_tables: Mutex<Lru<u64, Arc<DelayTable>>>,
}

impl CompiledNetlist {
    /// Compiles a netlist, annotation and delay model into an immutable
    /// launch artifact. This is the formerly per-`Engine` setup cost —
    /// levelization, input hardening, load normalization, lints, level
    /// planning — paid exactly once per (netlist, library, corner).
    ///
    /// # Errors
    ///
    /// * [`SimError::AnnotationMismatch`] if the annotation does not cover
    ///   the netlist,
    /// * [`SimError::Netlist`] if the netlist contains a combinational
    ///   loop,
    /// * [`SimError::InvalidLoad`] / [`SimError::InvalidDelay`] if the
    ///   annotation carries non-finite or negative loads or delays.
    pub fn compile(
        netlist: Arc<Netlist>,
        annotation: Arc<TimingAnnotation>,
        model: Arc<dyn DelayModel>,
    ) -> Result<CompiledNetlist, SimError> {
        if !annotation.matches(&netlist) {
            return Err(SimError::AnnotationMismatch);
        }
        let levels = Arc::new(Levelization::of(&netlist)?);
        // Input hardening: reject corrupt annotations up front instead of
        // letting NaNs propagate into waveforms.
        for (id, node) in netlist.iter() {
            let load = annotation.load_ff(id);
            if !load.is_finite() || load < 0.0 {
                return Err(SimError::InvalidLoad {
                    node: node.name().to_owned(),
                    load,
                });
            }
            if matches!(node.kind(), NodeKind::Gate(_)) {
                for (pin, d) in annotation.node_delays(id).iter().enumerate() {
                    if !d.rise.is_finite() || d.rise < 0.0 || !d.fall.is_finite() || d.fall < 0.0 {
                        return Err(SimError::InvalidDelay {
                            gate: node.name().to_owned(),
                            pin,
                        });
                    }
                }
            }
        }
        let space = model.space();
        let (c_lo, c_hi) = space.load_range();
        let mut clamped_loads = 0usize;
        let mut load_findings: Vec<Finding> = Vec::new();
        let c_norm = netlist
            .iter()
            .map(|(id, node)| {
                let load = annotation.load_ff(id);
                if load < c_lo || load > c_hi {
                    clamped_loads += 1;
                    // Only gate loads feed the delay kernel; a dangling
                    // or port net clamped at the boundary is expected and
                    // not worth a finding.
                    if matches!(node.kind(), NodeKind::Gate(_)) {
                        if let Some(f) = avfs_check::model::lint_operating_point(
                            space,
                            node.name(),
                            OperatingPoint::new(space.nominal_vdd(), load),
                        ) {
                            load_findings.push(f);
                        }
                    }
                }
                space
                    .normalize_clamped(OperatingPoint::new(space.nominal_vdd(), load))
                    .c
            })
            .collect();
        // Tier-1/tier-2 lints over what this artifact is permanently
        // bound to: the netlist, its levelization, and the annotated
        // loads the normalization above silently clamped into the
        // characterized interval. Per-launch data (slot operating points)
        // is checked at run time instead — the only validation work a
        // launch pays.
        let mut setup_findings = avfs_check::netlist::lint_netlist(&netlist);
        setup_findings.extend(avfs_check::netlist::lint_levels(&netlist, &levels));
        setup_findings.extend(avfs_check::cap_findings(load_findings));
        let setup_rendered: Vec<String> = setup_findings.iter().map(ToString::to_string).collect();
        let setup_deny = setup_findings
            .iter()
            .any(|f| f.severity >= avfs_check::Severity::Warn);
        // Per-level task plans: gates become pool tasks; primary outputs
        // are mere passthroughs, copied cell-to-cell at the barrier.
        // Formerly rebuilt on the coordinator per batch per level.
        let level_plans = (0..levels.depth())
            .map(|level| {
                let mut plan = LevelPlan::default();
                if level == 0 {
                    return plan; // Stimuli level: no gate tasks.
                }
                let mut offset = 0usize;
                for &node_id in levels.level(level) {
                    match netlist.node(node_id).kind() {
                        NodeKind::Gate(_) => {
                            plan.gate_nodes.push(node_id);
                            plan.gate_offsets.push(offset);
                            offset += netlist.node(node_id).fanin().len();
                        }
                        NodeKind::Output => plan.output_nodes.push(node_id),
                        NodeKind::Input => {}
                    }
                }
                plan
            })
            .collect();
        Ok(CompiledNetlist {
            netlist,
            levels,
            annotation,
            model,
            c_norm,
            clamped_loads,
            setup_findings,
            setup_rendered,
            setup_deny,
            level_plans,
            delay_tables: Mutex::new(Lru::new(DELAY_TABLE_SLOTS)),
        })
    }

    /// The bound netlist.
    pub fn netlist(&self) -> &Arc<Netlist> {
        &self.netlist
    }

    /// The bound levelization.
    pub fn levels(&self) -> &Arc<Levelization> {
        &self.levels
    }

    /// The bound annotation.
    pub fn annotation(&self) -> &Arc<TimingAnnotation> {
        &self.annotation
    }

    /// The bound delay model.
    pub fn model(&self) -> &Arc<dyn DelayModel> {
        &self.model
    }

    /// The artifact's cached tier-1/tier-2 findings (netlist lints,
    /// levelization cross-check, clamped annotated loads) — the
    /// compile-time part of what
    /// [`SimOptions::strict_validation`](crate::SimOptions::strict_validation)
    /// reports per run.
    pub fn setup_findings(&self) -> &[Finding] {
        &self.setup_findings
    }

    /// Annotated loads the compile clamped into the characterized
    /// interval (surfaced per run as
    /// [`RunDiagnostics::clamped_loads`](crate::RunDiagnostics::clamped_loads)).
    pub fn clamped_loads(&self) -> usize {
        self.clamped_loads
    }
}

// The artifact is shared across sessions and worker threads; everything
// inside is immutable and the model trait object is `Send + Sync` by
// bound. Asserted here so a regression fails to compile.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CompiledNetlist>();
};
