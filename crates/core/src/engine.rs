//! The parallel thread-grid time simulator (paper Sec. IV, Fig. 3).
//!
//! A CPU realization of the GPU kernel organization: slots × gates of a
//! level form the parallel work of one launch; a barrier separates
//! levels. Waveforms live in one flat structure-of-arrays arena indexed
//! `(slot, net)`, and slots are processed in batches sized by a memory
//! budget — the direct analogue of launching as many slots as fit in GPU
//! global memory.
//!
//! Every gate evaluation runs the paper's online delay calculation
//! (Sec. IV.A): load the nominal pin delays from the annotation, read the
//! slot's operating point, evaluate the delay kernel for each
//! (pin, polarity), scale, then run the waveform-processing loop.

use crate::results::{SimRun, SlotResult};
use crate::slots::SlotSpec;
use crate::SimError;
use avfs_atpg::PatternSet;
use avfs_delay::model::DelayModel;
use avfs_delay::op::NormalizedPoint;
use avfs_delay::TimingAnnotation;
use avfs_netlist::{Levelization, Netlist, NodeId, NodeKind};
use avfs_waveform::{evaluate_gate_scratch, GateScratch, PinDelays, SwitchingActivity, Waveform, WaveformStats};
use std::sync::Arc;
use std::time::Instant;

/// Runtime options of one engine launch.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Worker threads (the SIMD lanes of the substitute device). Defaults
    /// to the machine's available parallelism.
    pub threads: usize,
    /// Time at which pattern pairs launch their transition, ps.
    pub launch_time_ps: f64,
    /// Upper bound on `slots × nodes` waveforms resident at once; slots
    /// are processed in batches respecting it (the global-memory budget).
    pub waveform_budget: usize,
    /// Retain full per-net waveforms in each [`SlotResult`] (small runs
    /// and tests only).
    pub keep_waveforms: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            launch_time_ps: 0.0,
            waveform_budget: 16 << 20,
            keep_waveforms: false,
        }
    }
}

/// The parallel time simulator bound to one netlist, annotation and delay
/// model.
#[derive(Debug, Clone)]
pub struct Engine {
    netlist: Arc<Netlist>,
    levels: Arc<Levelization>,
    annotation: Arc<TimingAnnotation>,
    model: Arc<dyn DelayModel>,
    /// Pre-normalized `φ_C(load)` per node (clamped into the model's
    /// characterized interval; dangling nets sit at the lower bound).
    c_norm: Vec<f64>,
}

impl Engine {
    /// Creates an engine.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::AnnotationMismatch`] if the annotation does not
    /// cover the netlist.
    pub fn new(
        netlist: Arc<Netlist>,
        annotation: Arc<TimingAnnotation>,
        model: Arc<dyn DelayModel>,
    ) -> Result<Engine, SimError> {
        if !annotation.matches(&netlist) {
            return Err(SimError::AnnotationMismatch);
        }
        let levels = Arc::new(Levelization::of(&netlist));
        let space = model.space();
        let c_norm = netlist
            .iter()
            .map(|(id, _)| {
                space
                    .normalize_clamped(avfs_delay::op::OperatingPoint::new(
                        space.nominal_vdd(),
                        annotation.load_ff(id),
                    ))
                    .c
            })
            .collect();
        Ok(Engine {
            netlist,
            levels,
            annotation,
            model,
            c_norm,
        })
    }

    /// The bound netlist.
    pub fn netlist(&self) -> &Arc<Netlist> {
        &self.netlist
    }

    /// The bound levelization.
    pub fn levels(&self) -> &Arc<Levelization> {
        &self.levels
    }

    /// The bound annotation.
    pub fn annotation(&self) -> &Arc<TimingAnnotation> {
        &self.annotation
    }

    /// The bound delay model.
    pub fn model(&self) -> &Arc<dyn DelayModel> {
        &self.model
    }

    /// Simulates `slots` over `patterns`.
    ///
    /// # Errors
    ///
    /// * [`SimError::EmptySlots`] for an empty slot list,
    /// * [`SimError::PatternWidth`] / [`SimError::BadPatternIndex`] for
    ///   inconsistent stimuli,
    /// * [`SimError::Model`] if the delay model rejects an operating point
    ///   or lacks a kernel.
    pub fn run(
        &self,
        patterns: &PatternSet,
        slots: &[SlotSpec],
        options: &SimOptions,
    ) -> Result<SimRun, SimError> {
        if slots.is_empty() {
            return Err(SimError::EmptySlots);
        }
        let width = self.netlist.inputs().len();
        for pair in patterns {
            if pair.width() != width {
                return Err(SimError::PatternWidth {
                    expected: width,
                    got: pair.width(),
                });
            }
        }
        for spec in slots {
            if spec.pattern >= patterns.len() {
                return Err(SimError::BadPatternIndex {
                    index: spec.pattern,
                    available: patterns.len(),
                });
            }
        }

        // Per-slot normalized voltage — computed once per slot, like the
        // paper's parameter memory (clamped so a sweep endpoint such as
        // exactly V_max stays valid under floating-point noise).
        let space = self.model.space();
        let work: Vec<SlotWork> = slots
            .iter()
            .map(|s| SlotWork {
                pattern: s.pattern,
                assign: VoltageAssign::Uniform(
                    space
                        .normalize_clamped(avfs_delay::op::OperatingPoint::new(
                            s.voltage,
                            space.load_range().0,
                        ))
                        .v,
                ),
                voltage: s.voltage,
            })
            .collect();
        self.run_work(patterns, &work, options)
    }

    /// Simulates with per-node voltage *domains* (voltage islands): every
    /// slot assigns one supply voltage to each domain of `domains`.
    ///
    /// This extends the paper's per-instance operating points to the
    /// multi-rail AVFS systems its introduction describes ("actively
    /// control internal voltages", plural): one launch can sweep island
    /// configurations the way [`Engine::run`] sweeps global supplies. The
    /// reported [`SlotSpec::voltage`] of each result is the slot's
    /// domain-0 voltage (results are in slot order, so callers index the
    /// spec list they passed).
    ///
    /// # Errors
    ///
    /// Same as [`Engine::run`], plus [`SimError::Model`] variants surfaced
    /// through domain validation in
    /// [`VoltageDomains`](crate::domains::VoltageDomains).
    pub fn run_domains(
        &self,
        patterns: &PatternSet,
        domains: &crate::domains::VoltageDomains,
        specs: &[crate::domains::DomainSlotSpec],
        options: &SimOptions,
    ) -> Result<SimRun, SimError> {
        if specs.is_empty() {
            return Err(SimError::EmptySlots);
        }
        if domains.len() != self.netlist.num_nodes() {
            return Err(SimError::AnnotationMismatch);
        }
        let space = self.model.space();
        let c_min = space.load_range().0;
        let work: Vec<SlotWork> = specs
            .iter()
            .map(|spec| {
                if spec.voltages.len() != domains.count() {
                    return Err(SimError::BadPatternIndex {
                        index: spec.voltages.len(),
                        available: domains.count(),
                    });
                }
                // Normalize each domain voltage once, then expand per node.
                let per_domain: Vec<f64> = spec
                    .voltages
                    .iter()
                    .map(|&v| {
                        space
                            .normalize_clamped(avfs_delay::op::OperatingPoint::new(v, c_min))
                            .v
                    })
                    .collect();
                let per_node: Vec<f64> = (0..self.netlist.num_nodes())
                    .map(|n| per_domain[domains.domain_of_index(n)])
                    .collect();
                Ok(SlotWork {
                    pattern: spec.pattern,
                    assign: VoltageAssign::PerNode(Arc::new(per_node)),
                    voltage: spec.voltages[0],
                })
            })
            .collect::<Result<_, _>>()?;
        for w in &work {
            if w.pattern >= patterns.len() {
                return Err(SimError::BadPatternIndex {
                    index: w.pattern,
                    available: patterns.len(),
                });
            }
        }
        self.run_work(patterns, &work, options)
    }

    fn run_work(
        &self,
        patterns: &PatternSet,
        work: &[SlotWork],
        options: &SimOptions,
    ) -> Result<SimRun, SimError> {
        let nodes = self.netlist.num_nodes();
        let batch_size = (options.waveform_budget / nodes.max(1)).clamp(1, work.len());
        let mut results: Vec<SlotResult> = Vec::with_capacity(work.len());
        let start = Instant::now();

        // The waveform arena is reused across batches.
        let mut arena: Vec<Waveform> = vec![Waveform::constant(false); batch_size * nodes];
        for batch in work.chunks(batch_size) {
            self.run_batch(patterns, batch, options, &mut arena, &mut results)?;
        }
        let elapsed = start.elapsed();
        Ok(SimRun {
            slots: results,
            elapsed,
            node_evaluations: (nodes as u64) * (work.len() as u64),
        })
    }

    fn run_batch(
        &self,
        patterns: &PatternSet,
        batch: &[SlotWork],
        options: &SimOptions,
        arena: &mut [Waveform],
        results: &mut Vec<SlotResult>,
    ) -> Result<(), SimError> {
        let nodes = self.netlist.num_nodes();

        // Level 0: stimuli waveforms.
        for (si, work) in batch.iter().enumerate() {
            let pair = &patterns.pairs()[work.pattern];
            for (k, &pi) in self.netlist.inputs().iter().enumerate() {
                arena[si * nodes + pi.index()] = Waveform::from_pattern(
                    pair.launch.bit(k),
                    pair.capture.bit(k),
                    options.launch_time_ps,
                );
            }
        }

        // Distinct voltage groups within the batch: slots at the same
        // operating point share identical delay kernels ("the delay
        // calculations of threads from parallel instances of a gate
        // utilize the same coefficients and delay function calls"), so the
        // per-gate initialization phase runs once per (level, voltage)
        // instead of once per (slot, gate).
        let mut group_assigns: Vec<&VoltageAssign> = Vec::new();
        let group_of_slot: Vec<usize> = batch
            .iter()
            .map(|work| {
                match group_assigns.iter().position(|g| **g == work.assign) {
                    Some(g) => g,
                    None => {
                        group_assigns.push(&work.assign);
                        group_assigns.len() - 1
                    }
                }
            })
            .collect();

        // Levels 1…L: the vertical dimension with a barrier per level.
        let mut level_delays: Vec<Vec<PinDelays>> = vec![Vec::new(); group_assigns.len()];
        let mut level_offsets: Vec<usize> = Vec::new();
        for level in 1..self.levels.depth() {
            let level_nodes = self.levels.level(level);
            let tasks = batch.len() * level_nodes.len();
            if tasks == 0 {
                continue;
            }

            // Initialization phase (Sec. IV.A): modified pin delays for
            // every gate of this level, per voltage group.
            level_offsets.clear();
            for buf in &mut level_delays {
                buf.clear();
            }
            let mut offset = 0usize;
            for &node_id in level_nodes {
                level_offsets.push(offset);
                if let NodeKind::Gate(cell_id) = self.netlist.node(node_id).kind() {
                    let nominal = self.annotation.node_delays(node_id);
                    let c = self.c_norm[node_id.index()];
                    for (g, buf) in level_delays.iter_mut().enumerate() {
                        let p = NormalizedPoint {
                            v: group_assigns[g].v_norm_for(node_id.index()),
                            c,
                        };
                        for (pin, d) in nominal.iter().enumerate() {
                            let f_rise = self.model.factor(
                                cell_id,
                                pin,
                                avfs_netlist::library::Polarity::Rise,
                                p,
                            )?;
                            let f_fall = self.model.factor(
                                cell_id,
                                pin,
                                avfs_netlist::library::Polarity::Fall,
                                p,
                            )?;
                            buf.push(PinDelays {
                                rise: (d.rise * f_rise).max(0.0),
                                fall: (d.fall * f_fall).max(0.0),
                            });
                        }
                    }
                    offset += nominal.len();
                }
            }

            let workers = options.threads.clamp(1, tasks);
            let ctx = LevelCtx {
                level_nodes,
                level_delays: &level_delays,
                level_offsets: &level_offsets,
                group_of_slot: &group_of_slot,
                nodes,
            };
            if workers == 1 {
                // Same collect-then-write discipline as the parallel path:
                // reads of previous levels and writes of this level are
                // separated by the (here trivial) barrier.
                let mut writes: Vec<(usize, Waveform)> = Vec::with_capacity(tasks);
                {
                    let arena_ref: &[Waveform] = arena;
                    let mut scratch = GateScratch::new();
                    let mut inputs: Vec<&Waveform> = Vec::new();
                    for t in 0..tasks {
                        writes.push(self.eval_task(t, &ctx, arena_ref, &mut scratch, &mut inputs));
                        inputs.clear();
                    }
                }
                for (idx, wf) in writes {
                    arena[idx] = wf;
                }
            } else {
                // Fork-join over the horizontal plane: workers read the
                // arena (previous levels only) and return their writes,
                // which are applied after the join — the level barrier.
                let chunk = tasks.div_ceil(workers);
                let arena_ref: &[Waveform] = arena;
                let ctx_ref = &ctx;
                let writes: Vec<Vec<(usize, Waveform)>> = std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..workers)
                        .map(|w| {
                            scope.spawn(move || {
                                let lo = w * chunk;
                                let hi = ((w + 1) * chunk).min(tasks);
                                let mut out = Vec::with_capacity(hi.saturating_sub(lo));
                                let mut scratch = GateScratch::new();
                                let mut inputs: Vec<&Waveform> = Vec::new();
                                for t in lo..hi {
                                    let (idx, wf) = self.eval_task(
                                        t,
                                        ctx_ref,
                                        arena_ref,
                                        &mut scratch,
                                        &mut inputs,
                                    );
                                    inputs.clear();
                                    out.push((idx, wf));
                                }
                                out
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("worker panicked"))
                        .collect()
                });
                for w in writes {
                    for (idx, wf) in w {
                        arena[idx] = wf;
                    }
                }
            }
        }

        // Waveform analysis (Fig. 2, step 4).
        for (si, work) in batch.iter().enumerate() {
            let slot_wfs = &arena[si * nodes..(si + 1) * nodes];
            let mut responses = Vec::with_capacity(self.netlist.outputs().len());
            let mut latest: Option<f64> = None;
            for &po in self.netlist.outputs() {
                let stats = WaveformStats::of(&slot_wfs[po.index()]);
                responses.push(stats.final_value);
                latest = match (latest, stats.latest_transition) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    (a, b) => a.or(b),
                };
            }
            let activity = SwitchingActivity::of(slot_wfs.iter());
            results.push(SlotResult {
                spec: SlotSpec {
                    pattern: work.pattern,
                    voltage: work.voltage,
                },
                responses,
                latest_output_transition_ps: latest,
                activity,
                waveforms: options.keep_waveforms.then(|| slot_wfs.to_vec()),
            });
        }
        // Reset the arena for the next batch (cheap: drops transition
        // vectors, keeps the outer allocation).
        for wf in arena.iter_mut() {
            *wf = Waveform::constant(false);
        }
        Ok(())
    }

    /// Evaluates one (slot, node) task of a level — the body of a device
    /// thread. The modified delays were precomputed per (level, voltage
    /// group) by the initialization phase; `inputs` is reusable scratch
    /// whose borrows of `arena` end when the function returns.
    fn eval_task<'a>(
        &self,
        task: usize,
        ctx: &LevelCtx<'_>,
        arena: &'a [Waveform],
        scratch: &mut GateScratch,
        inputs: &mut Vec<&'a Waveform>,
    ) -> (usize, Waveform) {
        let si = task / ctx.level_nodes.len();
        let pos = task % ctx.level_nodes.len();
        let node_id = ctx.level_nodes[pos];
        let node = self.netlist.node(node_id);
        let base = si * ctx.nodes;
        let out_index = base + node_id.index();
        let wf = match node.kind() {
            NodeKind::Input => unreachable!("inputs are level 0"),
            NodeKind::Output => arena[base + node.fanin()[0].index()].clone(),
            NodeKind::Gate(_) => {
                let cell = self.netlist.cell_of(node_id).expect("gate has a cell");
                let npins = node.fanin().len();
                let off = ctx.level_offsets[pos];
                let delays =
                    &ctx.level_delays[ctx.group_of_slot[si]][off..off + npins];
                inputs.clear();
                inputs.extend(node.fanin().iter().map(|f| &arena[base + f.index()]));
                evaluate_gate_scratch(inputs, delays, |vals| cell.eval(vals), scratch)
            }
        };
        (out_index, wf)
    }
}

/// One slot's resolved work: which pattern to replay under which voltage
/// assignment.
#[derive(Debug, Clone)]
struct SlotWork {
    pattern: usize,
    assign: VoltageAssign,
    /// Representative voltage reported in the result spec (the global
    /// supply for uniform slots, the domain-0 supply for island slots).
    voltage: f64,
}

/// Normalized voltage assignment of one slot.
#[derive(Debug, Clone, PartialEq)]
enum VoltageAssign {
    /// One global supply (normalized).
    Uniform(f64),
    /// Per-node normalized voltage (voltage islands), expanded from the
    /// domain map once per slot.
    PerNode(Arc<Vec<f64>>),
}

impl VoltageAssign {
    #[inline]
    fn v_norm_for(&self, node: usize) -> f64 {
        match self {
            VoltageAssign::Uniform(v) => *v,
            VoltageAssign::PerNode(per_node) => per_node[node],
        }
    }
}

/// Shared per-level context handed to the device threads.
struct LevelCtx<'l> {
    level_nodes: &'l [NodeId],
    /// `level_delays[group][level_offsets[pos] + pin]` — modified pin
    /// delays per voltage group.
    level_delays: &'l [Vec<PinDelays>],
    level_offsets: &'l [usize],
    group_of_slot: &'l [usize],
    nodes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slots::{at_voltage, cross};
    use avfs_delay::{ParameterSpace, StaticModel};
    use avfs_netlist::{CellLibrary, NetlistBuilder};

    fn chain_netlist() -> Arc<Netlist> {
        let lib = CellLibrary::nangate15_like();
        let mut b = NetlistBuilder::new("chain", &lib);
        let a = b.add_input("a").unwrap();
        let g1 = b.add_gate("g1", "INV_X1", &[a]).unwrap();
        let g2 = b.add_gate("g2", "INV_X1", &[g1]).unwrap();
        b.add_output("y", g2).unwrap();
        Arc::new(b.finish().unwrap())
    }

    fn static_engine(netlist: &Arc<Netlist>, rise: f64, fall: f64) -> Engine {
        let mut ann = TimingAnnotation::zero(netlist);
        for (id, node) in netlist.iter() {
            if matches!(node.kind(), NodeKind::Gate(_)) {
                for pin in 0..node.fanin().len() {
                    ann.node_delays_mut(id)[pin] = PinDelays { rise, fall };
                }
            }
        }
        Engine::new(
            Arc::clone(netlist),
            Arc::new(ann),
            Arc::new(StaticModel::new(ParameterSpace::paper())),
        )
        .unwrap()
    }

    fn one_pattern() -> PatternSet {
        use avfs_atpg::pattern::{Pattern, PatternPair};
        std::iter::once(
            PatternPair::new(
                Pattern::from_bits([false]),
                Pattern::from_bits([true]),
            )
            .unwrap(),
        )
        .collect()
    }

    #[test]
    fn chain_propagates_with_static_delays() {
        let n = chain_netlist();
        let engine = static_engine(&n, 10.0, 10.0);
        let opts = SimOptions {
            keep_waveforms: true,
            threads: 1,
            ..SimOptions::default()
        };
        let run = engine
            .run(&one_pattern(), &at_voltage(1, 0.8), &opts)
            .unwrap();
        assert_eq!(run.slots.len(), 1);
        let slot = &run.slots[0];
        // Input rises at 0; y (after two inverters) rises at 20.
        assert_eq!(slot.latest_output_transition_ps, Some(20.0));
        assert_eq!(slot.responses, vec![true]);
        let wfs = slot.waveforms.as_ref().unwrap();
        let g1 = n.find("g1").unwrap();
        assert_eq!(wfs[g1.index()].transitions(), &[10.0]);
        assert!(!wfs[g1.index()].final_value());
        assert_eq!(run.node_evaluations, 4);
        assert!(run.meps() >= 0.0);
    }

    #[test]
    fn voltage_slots_share_pattern() {
        let n = chain_netlist();
        let engine = static_engine(&n, 5.0, 7.0);
        let run = engine
            .run(
                &one_pattern(),
                &cross(1, &[0.6, 0.8, 1.0]),
                &SimOptions { threads: 1, ..SimOptions::default() },
            )
            .unwrap();
        // Static model: identical timing regardless of voltage.
        assert_eq!(run.slots.len(), 3);
        let t0 = run.slots[0].latest_output_transition_ps;
        assert!(run.slots.iter().all(|s| s.latest_output_transition_ps == t0));
        assert_eq!(run.voltages(), vec![0.6, 0.8, 1.0]);
    }

    #[test]
    fn batching_is_transparent() {
        // Force a one-slot batch via a tiny waveform budget and compare
        // against an unbatched run.
        let n = chain_netlist();
        let engine = static_engine(&n, 3.0, 4.0);
        let patterns = one_pattern();
        let slots = cross(1, &[0.8, 0.9, 1.0, 1.1]);
        let big = engine
            .run(&patterns, &slots, &SimOptions { threads: 1, ..SimOptions::default() })
            .unwrap();
        let tiny = engine
            .run(
                &patterns,
                &slots,
                &SimOptions {
                    threads: 1,
                    waveform_budget: 1, // → batch of one slot
                    ..SimOptions::default()
                },
            )
            .unwrap();
        assert_eq!(big.slots.len(), tiny.slots.len());
        for (a, b) in big.slots.iter().zip(&tiny.slots) {
            assert_eq!(a.responses, b.responses);
            assert_eq!(a.latest_output_transition_ps, b.latest_output_transition_ps);
            assert_eq!(a.activity, b.activity);
        }
    }

    #[test]
    fn multithreaded_matches_single_threaded() {
        let lib = CellLibrary::nangate15_like();
        let cfg = avfs_circuits::GeneratorConfig::small();
        let n = Arc::new(avfs_circuits::random_netlist("rnd", &cfg, &lib, 11).unwrap());
        let engine = static_engine(&n, 8.0, 9.5);
        let patterns = PatternSet::lfsr(n.inputs().len(), 4, 5);
        let slots = cross(4, &[0.8, 1.0]);
        let single = engine
            .run(&patterns, &slots, &SimOptions { threads: 1, ..SimOptions::default() })
            .unwrap();
        let multi = engine
            .run(&patterns, &slots, &SimOptions { threads: 4, ..SimOptions::default() })
            .unwrap();
        for (a, b) in single.slots.iter().zip(&multi.slots) {
            assert_eq!(a.responses, b.responses);
            assert_eq!(a.latest_output_transition_ps, b.latest_output_transition_ps);
            assert_eq!(a.activity, b.activity);
        }
    }

    #[test]
    fn launch_time_offsets_all_transitions() {
        let n = chain_netlist();
        let engine = static_engine(&n, 10.0, 10.0);
        let patterns = one_pattern();
        let base = engine
            .run(
                &patterns,
                &at_voltage(1, 0.8),
                &SimOptions { threads: 1, launch_time_ps: 0.0, ..SimOptions::default() },
            )
            .unwrap();
        let shifted = engine
            .run(
                &patterns,
                &at_voltage(1, 0.8),
                &SimOptions { threads: 1, launch_time_ps: 250.0, ..SimOptions::default() },
            )
            .unwrap();
        let (t0, t1) = (
            base.slots[0].latest_output_transition_ps.unwrap(),
            shifted.slots[0].latest_output_transition_ps.unwrap(),
        );
        assert!((t1 - t0 - 250.0).abs() < 1e-9, "{t0} vs {t1}");
        assert_eq!(base.slots[0].responses, shifted.slots[0].responses);
    }

    #[test]
    fn mixed_island_vectors_group_correctly() {
        // Slots with different per-domain voltage vectors in ONE launch:
        // the per-(level, voltage-assignment) grouping must keep them
        // apart; results must match per-vector launches.
        let lib = CellLibrary::nangate15_like();
        let n = Arc::new(avfs_circuits::ripple_carry_adder(4, &lib).unwrap());
        // A voltage-sensitive analytic model so distinct vectors actually
        // produce distinct timing.
        let mut ann = TimingAnnotation::zero(&n);
        for (id, node) in n.iter() {
            if matches!(node.kind(), NodeKind::Gate(_)) {
                for pin in 0..node.fanin().len() {
                    ann.node_delays_mut(id)[pin] = PinDelays { rise: 6.0, fall: 7.0 };
                }
            }
        }
        let engine = Engine::new(
            Arc::clone(&n),
            Arc::new(ann),
            Arc::new(avfs_delay::AlphaPowerModel::new(0.24, 1.35, ParameterSpace::paper())),
        )
        .unwrap();
        let domains = crate::domains::VoltageDomains::by_output_cones(&n, 2);
        let patterns = PatternSet::lfsr(n.inputs().len(), 2, 8);
        let opts = SimOptions { threads: 1, ..SimOptions::default() };
        let mixed = vec![
            crate::domains::DomainSlotSpec { pattern: 0, voltages: vec![0.8, 0.8] },
            crate::domains::DomainSlotSpec { pattern: 1, voltages: vec![0.6, 1.0] },
            crate::domains::DomainSlotSpec { pattern: 0, voltages: vec![0.6, 1.0] },
        ];
        let run = engine.run_domains(&patterns, &domains, &mixed, &opts).unwrap();
        assert_eq!(run.slots.len(), 3);
        for (spec, slot) in mixed.iter().zip(&run.slots) {
            let solo = engine
                .run_domains(&patterns, &domains, std::slice::from_ref(spec), &opts)
                .unwrap();
            assert_eq!(slot.responses, solo.slots[0].responses);
            assert_eq!(
                slot.latest_output_transition_ps,
                solo.slots[0].latest_output_transition_ps
            );
        }
    }

    #[test]
    fn input_validation() {
        let n = chain_netlist();
        let engine = static_engine(&n, 1.0, 1.0);
        let patterns = one_pattern();
        assert!(matches!(
            engine.run(&patterns, &[], &SimOptions::default()),
            Err(SimError::EmptySlots)
        ));
        assert!(matches!(
            engine.run(
                &patterns,
                &[SlotSpec { pattern: 7, voltage: 0.8 }],
                &SimOptions::default()
            ),
            Err(SimError::BadPatternIndex { index: 7, available: 1 })
        ));
        // Wrong-width pattern.
        use avfs_atpg::pattern::{Pattern, PatternPair};
        let wide: PatternSet = std::iter::once(
            PatternPair::new(Pattern::zeros(3), Pattern::zeros(3)).unwrap(),
        )
        .collect();
        assert!(matches!(
            engine.run(&wide, &at_voltage(1, 0.8), &SimOptions::default()),
            Err(SimError::PatternWidth { expected: 1, got: 3 })
        ));
    }

    #[test]
    fn annotation_mismatch_rejected() {
        let n = chain_netlist();
        let other = {
            let lib = CellLibrary::nangate15_like();
            let mut b = NetlistBuilder::new("other", &lib);
            let a = b.add_input("a").unwrap();
            b.add_output("y", a).unwrap();
            Arc::new(b.finish().unwrap())
        };
        let ann = Arc::new(TimingAnnotation::zero(&other));
        let model = Arc::new(StaticModel::new(ParameterSpace::paper()));
        assert!(matches!(
            Engine::new(Arc::clone(&n), ann, model),
            Err(SimError::AnnotationMismatch)
        ));
    }

    #[test]
    fn glitch_visible_in_activity() {
        // Reconvergent XOR: a ─┬────────► x
        //                      └─ inv ──► x ; x = a ⊕ ā glitches on input
        // change when path delays differ.
        let lib = CellLibrary::nangate15_like();
        let mut b = NetlistBuilder::new("glitch", &lib);
        let a = b.add_input("a").unwrap();
        let inv = b.add_gate("inv", "INV_X1", &[a]).unwrap();
        let x = b.add_gate("x", "XOR2_X1", &[a, inv]).unwrap();
        b.add_output("y", x).unwrap();
        let n = Arc::new(b.finish().unwrap());
        let engine = static_engine(&n, 10.0, 10.0);
        let run = engine
            .run(
                &one_pattern(),
                &at_voltage(1, 0.8),
                &SimOptions { threads: 1, keep_waveforms: true, ..SimOptions::default() },
            )
            .unwrap();
        let slot = &run.slots[0];
        // x is 1 in steady state both before and after (a ⊕ ā = 1); the
        // inverter delay opens a 10 ps window where both inputs agree →
        // a glitch pulse at the XOR output.
        let wfs = slot.waveforms.as_ref().unwrap();
        let x_wf = &wfs[n.find("x").unwrap().index()];
        assert_eq!(x_wf.num_transitions(), 2, "expected a glitch pulse");
        assert!(x_wf.initial_value() && x_wf.final_value());
        assert!(slot.activity.total_glitch_transitions >= 2);
    }
}
