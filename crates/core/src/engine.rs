//! The parallel thread-grid time simulator (paper Sec. IV, Fig. 3).
//!
//! A CPU realization of the GPU kernel organization: slots × gates of a
//! level form the parallel work of one launch; a barrier separates
//! levels. Waveforms live in one flat structure-of-arrays arena indexed
//! `(slot, net)`, and slots are processed in batches sized by a memory
//! budget — the direct analogue of launching as many slots as fit in GPU
//! global memory.
//!
//! Every gate evaluation runs the paper's online delay calculation
//! (Sec. IV.A): load the nominal pin delays from the annotation, read the
//! slot's operating point, evaluate the delay kernel for each
//! (pin, polarity), scale, then run the waveform-processing loop.
//!
//! # Fault isolation
//!
//! The arena is *capacity-bounded*: every `(slot, net)` cell holds at most
//! [`SimOptions::arena_capacity`] transitions, exactly like the GPU's
//! fixed-size waveform buffers. A slot whose gates overflow is not an
//! error — it is quarantined (its remaining work skipped) and re-simulated
//! after the batch with geometrically grown capacity, up to
//! [`SimOptions::overflow_retries`] rounds; the GPU original's
//! overflow-flag-and-relaunch loop. A slot whose worker panics is likewise
//! contained via `catch_unwind` and reported in the run's
//! [`RunDiagnostics`] instead of poisoning the batch. Only when *every*
//! slot fails does a run return an error.

use crate::phases;
use crate::results::{RunDiagnostics, SimRun, SlotResult, SlotStatus};
use crate::slots::SlotSpec;
use crate::SimError;
use avfs_atpg::PatternSet;
use avfs_delay::model::DelayModel;
use avfs_delay::op::NormalizedPoint;
use avfs_delay::TimingAnnotation;
use avfs_netlist::{Levelization, Netlist, NodeId, NodeKind};
use avfs_obs::{time_option, Metrics};
use avfs_waveform::{
    evaluate_gate_bounded_scratch, CapacityOverflow, GateScratch, PinDelays, SwitchingActivity,
    Waveform, WaveformArena, WaveformStats, WaveformView,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// Default per-`(slot, net)` transition capacity when
/// [`SimOptions::arena_capacity`] is 0 (auto).
const DEFAULT_ARENA_CAPACITY: usize = 64;

/// Capacity growth factor per quarantine-and-retry round.
const CAPACITY_GROWTH: usize = 4;

/// Runtime options of one engine launch.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Worker threads (the SIMD lanes of the substitute device). Defaults
    /// to the machine's available parallelism.
    pub threads: usize,
    /// Time at which pattern pairs launch their transition, ps.
    pub launch_time_ps: f64,
    /// Upper bound on total transitions resident in the waveform arena at
    /// once (`slots × nodes × capacity`); slots are processed in batches
    /// respecting it (the global-memory budget).
    pub waveform_budget: usize,
    /// Retain full per-net waveforms in each [`SlotResult`] (small runs
    /// and tests only).
    pub keep_waveforms: bool,
    /// Transition capacity of one `(slot, net)` arena cell; 0 selects the
    /// default (64). Slots that overflow it are quarantined and retried at
    /// geometrically grown capacity.
    pub arena_capacity: usize,
    /// Quarantine-and-retry rounds for overflowing slots; each round
    /// multiplies the slot's capacity by 4. Slots still overflowing after
    /// the last round are reported as [`SlotStatus::Overflowed`].
    pub overflow_retries: u32,
    /// Collect a phase-level performance profile into
    /// [`SimRun::profile`]. All timing happens on the coordinator thread,
    /// so simulation results are bit-for-bit identical with profiling on
    /// or off; when off (the default) the only cost is an `Option`
    /// check per phase boundary.
    pub profiling: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            launch_time_ps: 0.0,
            waveform_budget: 16 << 20,
            keep_waveforms: false,
            arena_capacity: 0,
            overflow_retries: 4,
            profiling: false,
        }
    }
}

/// The parallel time simulator bound to one netlist, annotation and delay
/// model.
#[derive(Debug, Clone)]
pub struct Engine {
    netlist: Arc<Netlist>,
    levels: Arc<Levelization>,
    annotation: Arc<TimingAnnotation>,
    model: Arc<dyn DelayModel>,
    /// Pre-normalized `φ_C(load)` per node (clamped into the model's
    /// characterized interval; dangling nets sit at the lower bound).
    c_norm: Vec<f64>,
    /// Annotated loads outside the characterized interval that the
    /// normalization above clamped — reported per run in
    /// [`RunDiagnostics::clamped_loads`].
    clamped_loads: usize,
}

impl Engine {
    /// Creates an engine.
    ///
    /// # Errors
    ///
    /// * [`SimError::AnnotationMismatch`] if the annotation does not cover
    ///   the netlist,
    /// * [`SimError::Netlist`] if the netlist contains a combinational
    ///   loop,
    /// * [`SimError::InvalidLoad`] / [`SimError::InvalidDelay`] if the
    ///   annotation carries non-finite or negative loads or delays.
    pub fn new(
        netlist: Arc<Netlist>,
        annotation: Arc<TimingAnnotation>,
        model: Arc<dyn DelayModel>,
    ) -> Result<Engine, SimError> {
        if !annotation.matches(&netlist) {
            return Err(SimError::AnnotationMismatch);
        }
        let levels = Arc::new(Levelization::of(&netlist)?);
        // Input hardening: reject corrupt annotations up front instead of
        // letting NaNs propagate into waveforms.
        for (id, node) in netlist.iter() {
            let load = annotation.load_ff(id);
            if !load.is_finite() || load < 0.0 {
                return Err(SimError::InvalidLoad {
                    node: node.name().to_owned(),
                    load,
                });
            }
            if matches!(node.kind(), NodeKind::Gate(_)) {
                for (pin, d) in annotation.node_delays(id).iter().enumerate() {
                    if !d.rise.is_finite() || d.rise < 0.0 || !d.fall.is_finite() || d.fall < 0.0 {
                        return Err(SimError::InvalidDelay {
                            gate: node.name().to_owned(),
                            pin,
                        });
                    }
                }
            }
        }
        let space = model.space();
        let (c_lo, c_hi) = space.load_range();
        let mut clamped_loads = 0usize;
        let c_norm = netlist
            .iter()
            .map(|(id, _)| {
                let load = annotation.load_ff(id);
                if load < c_lo || load > c_hi {
                    clamped_loads += 1;
                }
                space
                    .normalize_clamped(avfs_delay::op::OperatingPoint::new(
                        space.nominal_vdd(),
                        load,
                    ))
                    .c
            })
            .collect();
        Ok(Engine {
            netlist,
            levels,
            annotation,
            model,
            c_norm,
            clamped_loads,
        })
    }

    /// The bound netlist.
    pub fn netlist(&self) -> &Arc<Netlist> {
        &self.netlist
    }

    /// The bound levelization.
    pub fn levels(&self) -> &Arc<Levelization> {
        &self.levels
    }

    /// The bound annotation.
    pub fn annotation(&self) -> &Arc<TimingAnnotation> {
        &self.annotation
    }

    /// The bound delay model.
    pub fn model(&self) -> &Arc<dyn DelayModel> {
        &self.model
    }

    /// Simulates `slots` over `patterns`.
    ///
    /// # Errors
    ///
    /// * [`SimError::EmptySlots`] for an empty slot list,
    /// * [`SimError::PatternWidth`] / [`SimError::BadPatternIndex`] for
    ///   inconsistent stimuli,
    /// * [`SimError::InvalidOperatingPoint`] for a non-finite or
    ///   non-positive supply voltage,
    /// * [`SimError::Model`] if the delay model rejects an operating point
    ///   or lacks a kernel,
    /// * [`SimError::AllSlotsFailed`] if no slot produced a usable result
    ///   (individual slot failures are reported per slot instead).
    pub fn run(
        &self,
        patterns: &PatternSet,
        slots: &[SlotSpec],
        options: &SimOptions,
    ) -> Result<SimRun, SimError> {
        if slots.is_empty() {
            return Err(SimError::EmptySlots);
        }
        let width = self.netlist.inputs().len();
        for pair in patterns {
            if pair.width() != width {
                return Err(SimError::PatternWidth {
                    expected: width,
                    got: pair.width(),
                });
            }
        }
        for (i, spec) in slots.iter().enumerate() {
            if spec.pattern >= patterns.len() {
                return Err(SimError::BadPatternIndex {
                    index: spec.pattern,
                    available: patterns.len(),
                });
            }
            if !spec.voltage.is_finite() || spec.voltage <= 0.0 {
                return Err(SimError::InvalidOperatingPoint {
                    slot: i,
                    voltage: spec.voltage,
                });
            }
        }

        // Per-slot normalized voltage — computed once per slot, like the
        // paper's parameter memory (clamped so a sweep endpoint such as
        // exactly V_max stays valid under floating-point noise).
        let space = self.model.space();
        let work: Vec<SlotWork> = slots
            .iter()
            .map(|s| SlotWork {
                pattern: s.pattern,
                assign: VoltageAssign::Uniform(
                    space
                        .normalize_clamped(avfs_delay::op::OperatingPoint::new(
                            s.voltage,
                            space.load_range().0,
                        ))
                        .v,
                ),
                voltage: s.voltage,
            })
            .collect();
        self.run_work(patterns, &work, options)
    }

    /// Simulates with per-node voltage *domains* (voltage islands): every
    /// slot assigns one supply voltage to each domain of `domains`.
    ///
    /// This extends the paper's per-instance operating points to the
    /// multi-rail AVFS systems its introduction describes ("actively
    /// control internal voltages", plural): one launch can sweep island
    /// configurations the way [`Engine::run`] sweeps global supplies. The
    /// reported [`SlotSpec::voltage`] of each result is the slot's
    /// domain-0 voltage (results are in slot order, so callers index the
    /// spec list they passed).
    ///
    /// # Errors
    ///
    /// Same as [`Engine::run`], plus [`SimError::Model`] variants surfaced
    /// through domain validation in
    /// [`VoltageDomains`](crate::domains::VoltageDomains).
    pub fn run_domains(
        &self,
        patterns: &PatternSet,
        domains: &crate::domains::VoltageDomains,
        specs: &[crate::domains::DomainSlotSpec],
        options: &SimOptions,
    ) -> Result<SimRun, SimError> {
        if specs.is_empty() {
            return Err(SimError::EmptySlots);
        }
        if domains.len() != self.netlist.num_nodes() {
            return Err(SimError::AnnotationMismatch);
        }
        let space = self.model.space();
        let c_min = space.load_range().0;
        let work: Vec<SlotWork> = specs
            .iter()
            .map(|spec| {
                if spec.voltages.len() != domains.count() {
                    return Err(SimError::BadPatternIndex {
                        index: spec.voltages.len(),
                        available: domains.count(),
                    });
                }
                // Normalize each domain voltage once, then expand per node.
                let per_domain: Vec<f64> = spec
                    .voltages
                    .iter()
                    .map(|&v| {
                        space
                            .normalize_clamped(avfs_delay::op::OperatingPoint::new(v, c_min))
                            .v
                    })
                    .collect();
                let per_node: Vec<f64> = (0..self.netlist.num_nodes())
                    .map(|n| per_domain[domains.domain_of_index(n)])
                    .collect();
                Ok(SlotWork {
                    pattern: spec.pattern,
                    assign: VoltageAssign::PerNode(Arc::new(per_node)),
                    voltage: spec.voltages[0],
                })
            })
            .collect::<Result<_, _>>()?;
        for w in &work {
            if w.pattern >= patterns.len() {
                return Err(SimError::BadPatternIndex {
                    index: w.pattern,
                    available: patterns.len(),
                });
            }
        }
        self.run_work(patterns, &work, options)
    }

    fn run_work(
        &self,
        patterns: &PatternSet,
        work: &[SlotWork],
        options: &SimOptions,
    ) -> Result<SimRun, SimError> {
        let nodes = self.netlist.num_nodes();
        let base_cap = if options.arena_capacity == 0 {
            DEFAULT_ARENA_CAPACITY
        } else {
            options.arena_capacity.max(1)
        };
        // Profiling is strictly observational: all instruments live in a
        // per-run registry touched only by this coordinator thread, so the
        // deterministic schedule (and therefore every waveform) is
        // identical whether the registry exists or not.
        let metrics = options.profiling.then(|| Metrics::new("engine"));
        let metrics = metrics.as_ref();
        let run_span = metrics.map(|m| m.span(phases::ENGINE_RUN));
        let start = Instant::now();
        let mut diag = RunDiagnostics {
            clamped_loads: self.clamped_loads,
            ..RunDiagnostics::default()
        };
        let mut results: Vec<Option<SlotResult>> = vec![None; work.len()];
        let mut slot_sims = 0u64;
        // Quarantine-and-retry rounds: round 0 simulates every slot at the
        // base capacity; each later round re-simulates only the slots that
        // overflowed, at geometrically grown capacity — the CPU analogue of
        // the GPU's overflow-flag-and-relaunch loop.
        let mut pending: Vec<usize> = (0..work.len()).collect();
        let mut cap = base_cap;
        let mut round = 0u32;
        loop {
            let batch_slots =
                (options.waveform_budget / (nodes.max(1) * cap)).clamp(1, pending.len());
            let mut arena = WaveformArena::new(batch_slots * nodes, cap);
            let mut overflowed: Vec<usize> = Vec::new();
            for chunk in pending.chunks(batch_slots) {
                slot_sims += chunk.len() as u64;
                if let Some(m) = metrics {
                    m.add(phases::ENGINE_BATCHES, 1);
                    m.record(phases::ENGINE_BATCH_SLOTS, chunk.len() as u64);
                }
                self.run_batch(
                    patterns,
                    work,
                    chunk,
                    options,
                    round,
                    &mut arena,
                    &mut results,
                    &mut overflowed,
                    &mut diag,
                    metrics,
                )?;
                if let Some(m) = metrics {
                    m.record(
                        phases::ENGINE_ARENA_OCCUPANCY,
                        arena.peak_occupancy() as u64,
                    );
                }
            }
            diag.peak_arena_occupancy = diag.peak_arena_occupancy.max(arena.peak_occupancy());
            for &s in &overflowed {
                if !diag.overflowed_slots.contains(&s) {
                    diag.overflowed_slots.push(s);
                }
            }
            if overflowed.is_empty() {
                break;
            }
            if round >= options.overflow_retries {
                for &s in &overflowed {
                    results[s] = Some(SlotResult::failed(
                        SlotSpec {
                            pattern: work[s].pattern,
                            voltage: work[s].voltage,
                        },
                        SlotStatus::Overflowed { capacity: cap },
                    ));
                    diag.failed_slots.push(s);
                }
                break;
            }
            round += 1;
            if let Some(m) = metrics {
                m.add(phases::ENGINE_RETRY_ROUNDS, 1);
            }
            diag.slot_retries += overflowed.len() as u64;
            cap = cap.saturating_mul(CAPACITY_GROWTH);
            pending = overflowed;
        }
        diag.overflowed_slots.sort_unstable();
        diag.panicked_slots.sort_unstable();
        diag.failed_slots.sort_unstable();
        let slots: Vec<SlotResult> = results
            .into_iter()
            .map(|r| r.expect("every slot resolved by the retry loop"))
            .collect();
        if slots.iter().all(|s| !s.status.is_completed()) {
            return Err(SimError::AllSlotsFailed { slots: slots.len() });
        }
        let elapsed = start.elapsed();
        if let Some(span) = run_span {
            span.finish();
        }
        Ok(SimRun {
            slots,
            elapsed,
            node_evaluations: (nodes as u64) * slot_sims,
            diagnostics: diag,
            profile: metrics.map(Metrics::snapshot),
        })
    }

    /// Simulates one batch (`chunk` indexes into `work`) against the
    /// bounded `arena`. Slots that overflow the arena are appended to
    /// `overflowed` for the caller's retry loop; slots whose delay
    /// evaluation panics are contained and recorded as failed. Only errors
    /// affecting the whole run (a delay-model error) propagate as `Err`.
    #[allow(clippy::too_many_arguments)]
    fn run_batch(
        &self,
        patterns: &PatternSet,
        work: &[SlotWork],
        chunk: &[usize],
        options: &SimOptions,
        round: u32,
        arena: &mut WaveformArena,
        results: &mut [Option<SlotResult>],
        overflowed: &mut Vec<usize>,
        diag: &mut RunDiagnostics,
        metrics: Option<&Metrics>,
    ) -> Result<(), SimError> {
        let nodes = self.netlist.num_nodes();
        arena.reset();

        // Per-slot fault status within this batch. A dead slot's remaining
        // work is skipped; flags are only updated at level barriers so the
        // schedule stays deterministic.
        let mut dead: Vec<Option<Dead>> = vec![None; chunk.len()];

        // Level 0: stimuli waveforms.
        time_option(metrics, phases::ENGINE_STIMULI, || {
            for (si, &slot) in chunk.iter().enumerate() {
                let pair = &patterns.pairs()[work[slot].pattern];
                for (k, &pi) in self.netlist.inputs().iter().enumerate() {
                    let wf = Waveform::from_pattern(
                        pair.launch.bit(k),
                        pair.capture.bit(k),
                        options.launch_time_ps,
                    );
                    if arena.write(si * nodes + pi.index(), &wf).is_err() {
                        dead[si] = Some(Dead::Overflow);
                    }
                }
            }
        });

        // Distinct voltage groups within the batch: slots at the same
        // operating point share identical delay kernels ("the delay
        // calculations of threads from parallel instances of a gate
        // utilize the same coefficients and delay function calls"), so the
        // per-gate initialization phase runs once per (level, voltage)
        // instead of once per (slot, gate).
        let mut group_assigns: Vec<&VoltageAssign> = Vec::new();
        let group_of_slot: Vec<usize> = chunk
            .iter()
            .map(
                |&slot| match group_assigns.iter().position(|g| **g == work[slot].assign) {
                    Some(g) => g,
                    None => {
                        group_assigns.push(&work[slot].assign);
                        group_assigns.len() - 1
                    }
                },
            )
            .collect();

        // Levels 1…L: the vertical dimension with a barrier per level.
        let mut fallbacks = 0u64;
        let mut level_delays: Vec<Vec<PinDelays>> = vec![Vec::new(); group_assigns.len()];
        let mut level_offsets: Vec<usize> = Vec::new();
        for level in 1..self.levels.depth() {
            if dead.iter().all(Option::is_some) {
                break;
            }
            let level_nodes = self.levels.level(level);
            let tasks = chunk.len() * level_nodes.len();
            if tasks == 0 {
                continue;
            }
            if let Some(m) = metrics {
                m.add(phases::ENGINE_LEVELS, 1);
            }

            // Initialization phase (Sec. IV.A): modified pin delays for
            // every gate of this level, per voltage group. A panic inside a
            // delay model is contained per group: it kills only the slots
            // at that operating point.
            level_offsets.clear();
            let mut offset = 0usize;
            for &node_id in level_nodes {
                level_offsets.push(offset);
                if matches!(self.netlist.node(node_id).kind(), NodeKind::Gate(_)) {
                    offset += self.netlist.node(node_id).fanin().len();
                }
            }
            let kernel_span = metrics.map(|m| m.span(phases::ENGINE_DELAY_KERNEL));
            let mut kernel_evals = 0u64;
            for (g, buf) in level_delays.iter_mut().enumerate() {
                buf.clear();
                let group_live = group_of_slot
                    .iter()
                    .zip(&dead)
                    .any(|(&gg, d)| gg == g && d.is_none());
                if !group_live {
                    continue;
                }
                let assign = group_assigns[g];
                let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<u64, SimError> {
                    let mut fb = 0u64;
                    for &node_id in level_nodes {
                        if let NodeKind::Gate(cell_id) = self.netlist.node(node_id).kind() {
                            let nominal = self.annotation.node_delays(node_id);
                            let p = NormalizedPoint {
                                v: assign.v_norm_for(node_id.index()),
                                c: self.c_norm[node_id.index()],
                            };
                            for (pin, d) in nominal.iter().enumerate() {
                                let f_rise = self.model.factor(
                                    cell_id,
                                    pin,
                                    avfs_netlist::library::Polarity::Rise,
                                    p,
                                )?;
                                let f_fall = self.model.factor(
                                    cell_id,
                                    pin,
                                    avfs_netlist::library::Polarity::Fall,
                                    p,
                                )?;
                                buf.push(PinDelays {
                                    rise: scale_or_fallback(d.rise, f_rise, &mut fb),
                                    fall: scale_or_fallback(d.fall, f_fall, &mut fb),
                                });
                            }
                        }
                    }
                    Ok(fb)
                }));
                match outcome {
                    Ok(Ok(fb)) => {
                        fallbacks += fb;
                        // Two kernel evaluations (rise + fall) per pin.
                        kernel_evals += 2 * buf.len() as u64;
                    }
                    Ok(Err(e)) => return Err(e),
                    Err(_) => {
                        buf.clear();
                        for (si, &gg) in group_of_slot.iter().enumerate() {
                            if gg == g && dead[si].is_none() {
                                dead[si] = Some(Dead::Panic);
                            }
                        }
                    }
                }
            }

            if let Some(m) = metrics {
                m.add(phases::ENGINE_KERNEL_EVALS, kernel_evals);
            }
            if let Some(span) = kernel_span {
                span.finish();
            }

            let workers = options.threads.clamp(1, tasks);
            let ctx = LevelCtx {
                level_nodes,
                level_delays: &level_delays,
                level_offsets: &level_offsets,
                group_of_slot: &group_of_slot,
                nodes,
            };
            // Snapshot of slot liveness for this level: workers skip tasks
            // of dead slots; deaths discovered during the level take effect
            // at the barrier below.
            let alive: Vec<bool> = dead.iter().map(Option::is_none).collect();
            let arena_ref: &WaveformArena = arena;
            let ctx_ref = &ctx;
            let alive_ref = &alive;
            // One worker's share of the level: evaluate tasks, catching
            // panics and capacity overflows per task.
            let eval_range = |lo: usize, hi: usize| -> Vec<TaskOut> {
                let mut out = Vec::with_capacity(hi.saturating_sub(lo));
                let mut scratch = GateScratch::new();
                let mut inputs: Vec<WaveformView<'_>> = Vec::new();
                for t in lo..hi {
                    let si = t / ctx_ref.level_nodes.len();
                    if !alive_ref[si] {
                        continue;
                    }
                    let r = catch_unwind(AssertUnwindSafe(|| {
                        self.eval_task(t, ctx_ref, arena_ref, &mut scratch, &mut inputs)
                    }));
                    inputs.clear();
                    out.push(match r {
                        Ok(Ok((idx, wf))) => TaskOut::Write(idx, wf),
                        Ok(Err(_)) => TaskOut::Overflow(si),
                        Err(_) => TaskOut::Panic(si),
                    });
                }
                out
            };
            let merge_span = metrics.map(|m| m.span(phases::ENGINE_WAVEFORM_MERGE));
            let writes: Vec<Vec<TaskOut>> = if workers == 1 {
                // Same collect-then-write discipline as the parallel path:
                // reads of previous levels and writes of this level are
                // separated by the (here trivial) barrier.
                vec![eval_range(0, tasks)]
            } else {
                // Fork-join over the horizontal plane: workers read the
                // arena (previous levels only) and return their writes,
                // which are applied after the join — the level barrier.
                let per_worker = tasks.div_ceil(workers);
                let eval_range = &eval_range;
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..workers)
                        .map(|w| {
                            scope.spawn(move || {
                                eval_range(w * per_worker, ((w + 1) * per_worker).min(tasks))
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("worker thread itself must not die"))
                        .collect()
                })
            };
            if let Some(span) = merge_span {
                span.finish();
            }
            // The barrier: apply surviving writes, then liveness updates.
            time_option(metrics, phases::ENGINE_BARRIER, || {
                for w in writes {
                    for out in w {
                        match out {
                            TaskOut::Write(idx, wf) => {
                                arena
                                    .write(idx, &wf)
                                    .expect("bounded evaluation fits the arena");
                            }
                            TaskOut::Overflow(si) => {
                                if dead[si].is_none() {
                                    dead[si] = Some(Dead::Overflow);
                                }
                            }
                            TaskOut::Panic(si) => {
                                if dead[si].is_none() {
                                    dead[si] = Some(Dead::Panic);
                                }
                            }
                        }
                    }
                }
            });
        }
        diag.kernel_fallbacks += fallbacks;

        // Waveform analysis (Fig. 2, step 4) for surviving slots;
        // quarantine verdicts for the rest.
        let analysis_span = metrics.map(|m| m.span(phases::ENGINE_ANALYSIS));
        for (si, &slot) in chunk.iter().enumerate() {
            let spec = SlotSpec {
                pattern: work[slot].pattern,
                voltage: work[slot].voltage,
            };
            match dead[si] {
                Some(Dead::Overflow) => overflowed.push(slot),
                Some(Dead::Panic) => {
                    results[slot] = Some(SlotResult::failed(spec, SlotStatus::Panicked));
                    diag.panicked_slots.push(slot);
                    diag.failed_slots.push(slot);
                }
                None => {
                    let base = si * nodes;
                    let mut responses = Vec::with_capacity(self.netlist.outputs().len());
                    let mut latest: Option<f64> = None;
                    for &po in self.netlist.outputs() {
                        let stats = WaveformStats::of(&arena.view(base + po.index()));
                        responses.push(stats.final_value);
                        latest = match (latest, stats.latest_transition) {
                            (Some(a), Some(b)) => Some(a.max(b)),
                            (a, b) => a.or(b),
                        };
                    }
                    let activity =
                        SwitchingActivity::of((base..base + nodes).map(|i| arena.view(i)));
                    results[slot] = Some(SlotResult {
                        spec,
                        status: SlotStatus::Completed { retries: round },
                        responses,
                        latest_output_transition_ps: latest,
                        activity,
                        waveforms: options
                            .keep_waveforms
                            .then(|| (base..base + nodes).map(|i| arena.to_waveform(i)).collect()),
                    });
                }
            }
        }
        if let Some(span) = analysis_span {
            span.finish();
        }
        Ok(())
    }

    /// Evaluates one (slot, node) task of a level — the body of a device
    /// thread. The modified delays were precomputed per (level, voltage
    /// group) by the initialization phase; `inputs` is reusable scratch
    /// whose borrows of `arena` end when the function returns.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityOverflow`] when the gate's output history would
    /// outgrow the arena's per-net capacity — the quarantine signal.
    fn eval_task<'a>(
        &self,
        task: usize,
        ctx: &LevelCtx<'_>,
        arena: &'a WaveformArena,
        scratch: &mut GateScratch,
        inputs: &mut Vec<WaveformView<'a>>,
    ) -> Result<(usize, Waveform), CapacityOverflow> {
        let si = task / ctx.level_nodes.len();
        let pos = task % ctx.level_nodes.len();
        let node_id = ctx.level_nodes[pos];
        let node = self.netlist.node(node_id);
        let base = si * ctx.nodes;
        let out_index = base + node_id.index();
        let wf = match node.kind() {
            NodeKind::Input => unreachable!("inputs are level 0"),
            NodeKind::Output => arena.to_waveform(base + node.fanin()[0].index()),
            NodeKind::Gate(_) => {
                let cell = self.netlist.cell_of(node_id).expect("gate has a cell");
                let npins = node.fanin().len();
                let off = ctx.level_offsets[pos];
                let delays = &ctx.level_delays[ctx.group_of_slot[si]][off..off + npins];
                inputs.clear();
                inputs.extend(node.fanin().iter().map(|f| arena.view(base + f.index())));
                evaluate_gate_bounded_scratch(
                    inputs,
                    delays,
                    |vals| cell.eval(vals),
                    scratch,
                    arena.capacity(),
                )?
            }
        };
        Ok((out_index, wf))
    }
}

/// Guards the online delay calculation: a non-finite scaled delay falls
/// back to the nominal delay and is counted in
/// [`RunDiagnostics::kernel_fallbacks`].
fn scale_or_fallback(nominal: f64, factor: f64, fallbacks: &mut u64) -> f64 {
    let scaled = nominal * factor;
    if scaled.is_finite() {
        scaled.max(0.0)
    } else {
        *fallbacks += 1;
        nominal.max(0.0)
    }
}

/// Why a slot died within a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dead {
    /// A gate's output outgrew the bounded arena — retry at larger
    /// capacity.
    Overflow,
    /// The slot's evaluation panicked — contained, no retry.
    Panic,
}

/// One task's outcome, applied at the level barrier.
enum TaskOut {
    Write(usize, Waveform),
    Overflow(usize),
    Panic(usize),
}

/// One slot's resolved work: which pattern to replay under which voltage
/// assignment.
#[derive(Debug, Clone)]
struct SlotWork {
    pattern: usize,
    assign: VoltageAssign,
    /// Representative voltage reported in the result spec (the global
    /// supply for uniform slots, the domain-0 supply for island slots).
    voltage: f64,
}

/// Normalized voltage assignment of one slot.
#[derive(Debug, Clone, PartialEq)]
enum VoltageAssign {
    /// One global supply (normalized).
    Uniform(f64),
    /// Per-node normalized voltage (voltage islands), expanded from the
    /// domain map once per slot.
    PerNode(Arc<Vec<f64>>),
}

impl VoltageAssign {
    #[inline]
    fn v_norm_for(&self, node: usize) -> f64 {
        match self {
            VoltageAssign::Uniform(v) => *v,
            VoltageAssign::PerNode(per_node) => per_node[node],
        }
    }
}

/// Shared per-level context handed to the device threads.
struct LevelCtx<'l> {
    level_nodes: &'l [NodeId],
    /// `level_delays[group][level_offsets[pos] + pin]` — modified pin
    /// delays per voltage group.
    level_delays: &'l [Vec<PinDelays>],
    level_offsets: &'l [usize],
    group_of_slot: &'l [usize],
    nodes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slots::{at_voltage, cross};
    use avfs_delay::{ParameterSpace, StaticModel};
    use avfs_netlist::{CellLibrary, NetlistBuilder};

    fn chain_netlist() -> Arc<Netlist> {
        let lib = CellLibrary::nangate15_like();
        let mut b = NetlistBuilder::new("chain", &lib);
        let a = b.add_input("a").unwrap();
        let g1 = b.add_gate("g1", "INV_X1", &[a]).unwrap();
        let g2 = b.add_gate("g2", "INV_X1", &[g1]).unwrap();
        b.add_output("y", g2).unwrap();
        Arc::new(b.finish().unwrap())
    }

    fn static_engine(netlist: &Arc<Netlist>, rise: f64, fall: f64) -> Engine {
        let mut ann = TimingAnnotation::zero(netlist);
        for (id, node) in netlist.iter() {
            if matches!(node.kind(), NodeKind::Gate(_)) {
                for pin in 0..node.fanin().len() {
                    ann.node_delays_mut(id)[pin] = PinDelays { rise, fall };
                }
            }
        }
        Engine::new(
            Arc::clone(netlist),
            Arc::new(ann),
            Arc::new(StaticModel::new(ParameterSpace::paper())),
        )
        .unwrap()
    }

    fn one_pattern() -> PatternSet {
        use avfs_atpg::pattern::{Pattern, PatternPair};
        std::iter::once(
            PatternPair::new(Pattern::from_bits([false]), Pattern::from_bits([true])).unwrap(),
        )
        .collect()
    }

    #[test]
    fn chain_propagates_with_static_delays() {
        let n = chain_netlist();
        let engine = static_engine(&n, 10.0, 10.0);
        let opts = SimOptions {
            keep_waveforms: true,
            threads: 1,
            ..SimOptions::default()
        };
        let run = engine
            .run(&one_pattern(), &at_voltage(1, 0.8), &opts)
            .unwrap();
        assert_eq!(run.slots.len(), 1);
        let slot = &run.slots[0];
        // Input rises at 0; y (after two inverters) rises at 20.
        assert_eq!(slot.latest_output_transition_ps, Some(20.0));
        assert_eq!(slot.responses, vec![true]);
        let wfs = slot.waveforms.as_ref().unwrap();
        let g1 = n.find("g1").unwrap();
        assert_eq!(wfs[g1.index()].transitions(), &[10.0]);
        assert!(!wfs[g1.index()].final_value());
        assert_eq!(run.node_evaluations, 4);
        assert!(run.meps() >= 0.0);
    }

    #[test]
    fn voltage_slots_share_pattern() {
        let n = chain_netlist();
        let engine = static_engine(&n, 5.0, 7.0);
        let run = engine
            .run(
                &one_pattern(),
                &cross(1, &[0.6, 0.8, 1.0]),
                &SimOptions {
                    threads: 1,
                    ..SimOptions::default()
                },
            )
            .unwrap();
        // Static model: identical timing regardless of voltage.
        assert_eq!(run.slots.len(), 3);
        let t0 = run.slots[0].latest_output_transition_ps;
        assert!(run
            .slots
            .iter()
            .all(|s| s.latest_output_transition_ps == t0));
        assert_eq!(run.voltages(), vec![0.6, 0.8, 1.0]);
    }

    #[test]
    fn batching_is_transparent() {
        // Force a one-slot batch via a tiny waveform budget and compare
        // against an unbatched run.
        let n = chain_netlist();
        let engine = static_engine(&n, 3.0, 4.0);
        let patterns = one_pattern();
        let slots = cross(1, &[0.8, 0.9, 1.0, 1.1]);
        let big = engine
            .run(
                &patterns,
                &slots,
                &SimOptions {
                    threads: 1,
                    ..SimOptions::default()
                },
            )
            .unwrap();
        let tiny = engine
            .run(
                &patterns,
                &slots,
                &SimOptions {
                    threads: 1,
                    waveform_budget: 1, // → batch of one slot
                    ..SimOptions::default()
                },
            )
            .unwrap();
        assert_eq!(big.slots.len(), tiny.slots.len());
        for (a, b) in big.slots.iter().zip(&tiny.slots) {
            assert_eq!(a.responses, b.responses);
            assert_eq!(a.latest_output_transition_ps, b.latest_output_transition_ps);
            assert_eq!(a.activity, b.activity);
        }
    }

    #[test]
    fn multithreaded_matches_single_threaded() {
        let lib = CellLibrary::nangate15_like();
        let cfg = avfs_circuits::GeneratorConfig::small();
        let n = Arc::new(avfs_circuits::random_netlist("rnd", &cfg, &lib, 11).unwrap());
        let engine = static_engine(&n, 8.0, 9.5);
        let patterns = PatternSet::lfsr(n.inputs().len(), 4, 5);
        let slots = cross(4, &[0.8, 1.0]);
        let single = engine
            .run(
                &patterns,
                &slots,
                &SimOptions {
                    threads: 1,
                    ..SimOptions::default()
                },
            )
            .unwrap();
        let multi = engine
            .run(
                &patterns,
                &slots,
                &SimOptions {
                    threads: 4,
                    ..SimOptions::default()
                },
            )
            .unwrap();
        for (a, b) in single.slots.iter().zip(&multi.slots) {
            assert_eq!(a.responses, b.responses);
            assert_eq!(a.latest_output_transition_ps, b.latest_output_transition_ps);
            assert_eq!(a.activity, b.activity);
        }
    }

    #[test]
    fn launch_time_offsets_all_transitions() {
        let n = chain_netlist();
        let engine = static_engine(&n, 10.0, 10.0);
        let patterns = one_pattern();
        let base = engine
            .run(
                &patterns,
                &at_voltage(1, 0.8),
                &SimOptions {
                    threads: 1,
                    launch_time_ps: 0.0,
                    ..SimOptions::default()
                },
            )
            .unwrap();
        let shifted = engine
            .run(
                &patterns,
                &at_voltage(1, 0.8),
                &SimOptions {
                    threads: 1,
                    launch_time_ps: 250.0,
                    ..SimOptions::default()
                },
            )
            .unwrap();
        let (t0, t1) = (
            base.slots[0].latest_output_transition_ps.unwrap(),
            shifted.slots[0].latest_output_transition_ps.unwrap(),
        );
        assert!((t1 - t0 - 250.0).abs() < 1e-9, "{t0} vs {t1}");
        assert_eq!(base.slots[0].responses, shifted.slots[0].responses);
    }

    #[test]
    fn mixed_island_vectors_group_correctly() {
        // Slots with different per-domain voltage vectors in ONE launch:
        // the per-(level, voltage-assignment) grouping must keep them
        // apart; results must match per-vector launches.
        let lib = CellLibrary::nangate15_like();
        let n = Arc::new(avfs_circuits::ripple_carry_adder(4, &lib).unwrap());
        // A voltage-sensitive analytic model so distinct vectors actually
        // produce distinct timing.
        let mut ann = TimingAnnotation::zero(&n);
        for (id, node) in n.iter() {
            if matches!(node.kind(), NodeKind::Gate(_)) {
                for pin in 0..node.fanin().len() {
                    ann.node_delays_mut(id)[pin] = PinDelays {
                        rise: 6.0,
                        fall: 7.0,
                    };
                }
            }
        }
        let engine = Engine::new(
            Arc::clone(&n),
            Arc::new(ann),
            Arc::new(avfs_delay::AlphaPowerModel::new(
                0.24,
                1.35,
                ParameterSpace::paper(),
            )),
        )
        .unwrap();
        let domains = crate::domains::VoltageDomains::by_output_cones(&n, 2);
        let patterns = PatternSet::lfsr(n.inputs().len(), 2, 8);
        let opts = SimOptions {
            threads: 1,
            ..SimOptions::default()
        };
        let mixed = vec![
            crate::domains::DomainSlotSpec {
                pattern: 0,
                voltages: vec![0.8, 0.8],
            },
            crate::domains::DomainSlotSpec {
                pattern: 1,
                voltages: vec![0.6, 1.0],
            },
            crate::domains::DomainSlotSpec {
                pattern: 0,
                voltages: vec![0.6, 1.0],
            },
        ];
        let run = engine
            .run_domains(&patterns, &domains, &mixed, &opts)
            .unwrap();
        assert_eq!(run.slots.len(), 3);
        for (spec, slot) in mixed.iter().zip(&run.slots) {
            let solo = engine
                .run_domains(&patterns, &domains, std::slice::from_ref(spec), &opts)
                .unwrap();
            assert_eq!(slot.responses, solo.slots[0].responses);
            assert_eq!(
                slot.latest_output_transition_ps,
                solo.slots[0].latest_output_transition_ps
            );
        }
    }

    #[test]
    fn input_validation() {
        let n = chain_netlist();
        let engine = static_engine(&n, 1.0, 1.0);
        let patterns = one_pattern();
        assert!(matches!(
            engine.run(&patterns, &[], &SimOptions::default()),
            Err(SimError::EmptySlots)
        ));
        assert!(matches!(
            engine.run(
                &patterns,
                &[SlotSpec {
                    pattern: 7,
                    voltage: 0.8
                }],
                &SimOptions::default()
            ),
            Err(SimError::BadPatternIndex {
                index: 7,
                available: 1
            })
        ));
        // Wrong-width pattern.
        use avfs_atpg::pattern::{Pattern, PatternPair};
        let wide: PatternSet =
            std::iter::once(PatternPair::new(Pattern::zeros(3), Pattern::zeros(3)).unwrap())
                .collect();
        assert!(matches!(
            engine.run(&wide, &at_voltage(1, 0.8), &SimOptions::default()),
            Err(SimError::PatternWidth {
                expected: 1,
                got: 3
            })
        ));
    }

    #[test]
    fn annotation_mismatch_rejected() {
        let n = chain_netlist();
        let other = {
            let lib = CellLibrary::nangate15_like();
            let mut b = NetlistBuilder::new("other", &lib);
            let a = b.add_input("a").unwrap();
            b.add_output("y", a).unwrap();
            Arc::new(b.finish().unwrap())
        };
        let ann = Arc::new(TimingAnnotation::zero(&other));
        let model = Arc::new(StaticModel::new(ParameterSpace::paper()));
        assert!(matches!(
            Engine::new(Arc::clone(&n), ann, model),
            Err(SimError::AnnotationMismatch)
        ));
    }

    /// A delay model that panics for operating points at the top of the
    /// normalized voltage range — the fault-injection vehicle for the
    /// panic-containment tests (distinct voltages form distinct kernel
    /// groups, so the panic hits exactly the marker slot).
    #[derive(Debug)]
    struct PanickyModel {
        inner: StaticModel,
    }

    impl avfs_delay::model::DelayModel for PanickyModel {
        fn factor(
            &self,
            cell: avfs_netlist::CellId,
            pin: usize,
            polarity: avfs_netlist::library::Polarity,
            p: NormalizedPoint,
        ) -> Result<f64, avfs_delay::DelayError> {
            assert!(p.v < 0.999, "injected fault: poisoned operating point");
            self.inner.factor(cell, pin, polarity, p)
        }
        fn name(&self) -> &str {
            "panicky"
        }
        fn space(&self) -> &ParameterSpace {
            self.inner.space()
        }
    }

    /// A delay model whose kernel output is garbage (non-finite factors):
    /// exercises the online-delay-calculation guard.
    #[derive(Debug)]
    struct BrokenKernelModel {
        space: ParameterSpace,
    }

    impl avfs_delay::model::DelayModel for BrokenKernelModel {
        fn factor(
            &self,
            _cell: avfs_netlist::CellId,
            _pin: usize,
            _polarity: avfs_netlist::library::Polarity,
            _p: NormalizedPoint,
        ) -> Result<f64, avfs_delay::DelayError> {
            Ok(f64::INFINITY)
        }
        fn name(&self) -> &str {
            "broken-kernel"
        }
        fn space(&self) -> &ParameterSpace {
            &self.space
        }
    }

    /// A glitching netlist: reconvergent XOR whose output pulses on every
    /// input transition (see `glitch_visible_in_activity`).
    fn glitch_netlist() -> Arc<Netlist> {
        let lib = CellLibrary::nangate15_like();
        let mut b = NetlistBuilder::new("glitch", &lib);
        let a = b.add_input("a").unwrap();
        let inv = b.add_gate("inv", "INV_X1", &[a]).unwrap();
        let x = b.add_gate("x", "XOR2_X1", &[a, inv]).unwrap();
        b.add_output("y", x).unwrap();
        Arc::new(b.finish().unwrap())
    }

    #[test]
    fn invalid_operating_points_rejected() {
        let n = chain_netlist();
        let engine = static_engine(&n, 1.0, 1.0);
        let patterns = one_pattern();
        for bad in [f64::NAN, f64::INFINITY, 0.0, -0.8] {
            let slots = [
                SlotSpec {
                    pattern: 0,
                    voltage: 0.8,
                },
                SlotSpec {
                    pattern: 0,
                    voltage: bad,
                },
            ];
            match engine.run(&patterns, &slots, &SimOptions::default()) {
                Err(SimError::InvalidOperatingPoint { slot: 1, voltage }) => {
                    assert!(voltage.is_nan() || voltage == bad);
                }
                other => panic!("expected InvalidOperatingPoint, got {other:?}"),
            }
        }
    }

    #[test]
    fn corrupt_annotation_rejected() {
        let n = chain_netlist();
        let model: Arc<dyn DelayModel> = Arc::new(StaticModel::new(ParameterSpace::paper()));
        // Non-finite load.
        let mut ann = TimingAnnotation::zero(&n);
        ann.set_load_ff(n.find("g1").unwrap(), f64::NAN);
        assert!(matches!(
            Engine::new(Arc::clone(&n), Arc::new(ann), Arc::clone(&model)),
            Err(SimError::InvalidLoad { node, .. }) if node == "g1"
        ));
        // Negative load.
        let mut ann = TimingAnnotation::zero(&n);
        ann.set_load_ff(n.find("g2").unwrap(), -3.0);
        assert!(matches!(
            Engine::new(Arc::clone(&n), Arc::new(ann), Arc::clone(&model)),
            Err(SimError::InvalidLoad { node, load }) if node == "g2" && load == -3.0
        ));
        // Non-finite delay.
        let mut ann = TimingAnnotation::zero(&n);
        ann.node_delays_mut(n.find("g1").unwrap())[0] = PinDelays {
            rise: f64::NAN,
            fall: 1.0,
        };
        assert!(matches!(
            Engine::new(Arc::clone(&n), Arc::new(ann), Arc::clone(&model)),
            Err(SimError::InvalidDelay { gate, pin: 0 }) if gate == "g1"
        ));
        // Negative delay.
        let mut ann = TimingAnnotation::zero(&n);
        ann.node_delays_mut(n.find("g2").unwrap())[0] = PinDelays {
            rise: 1.0,
            fall: -2.0,
        };
        assert!(matches!(
            Engine::new(Arc::clone(&n), Arc::new(ann), Arc::clone(&model)),
            Err(SimError::InvalidDelay { gate, pin: 0 }) if gate == "g2"
        ));
    }

    #[test]
    fn combinational_loop_rejected() {
        let lib = CellLibrary::nangate15_like();
        let mut b = NetlistBuilder::new("loop", &lib);
        let a = b.add_input("a").unwrap();
        let g1 = b.add_gate("g1", "NAND2_X1", &[a, a]).unwrap();
        let g2 = b.add_gate("g2", "INV_X1", &[g1]).unwrap();
        b.add_output("y", g2).unwrap();
        b.rewire_unchecked(g1, 1, g2);
        let n = Arc::new(b.finish_unchecked());
        let ann = Arc::new(TimingAnnotation::zero(&n));
        let model = Arc::new(StaticModel::new(ParameterSpace::paper()));
        match Engine::new(n, ann, model) {
            Err(SimError::Netlist(avfs_netlist::NetlistError::CombinationalLoop { nodes })) => {
                let mut nodes = nodes;
                nodes.sort();
                assert_eq!(nodes, vec!["g1".to_owned(), "g2".to_owned()]);
            }
            other => panic!("expected a combinational-loop error, got {other:?}"),
        }
    }

    #[test]
    fn model_error_propagates() {
        /// Rejects every factor request.
        #[derive(Debug)]
        struct NoKernelModel {
            space: ParameterSpace,
        }
        impl avfs_delay::model::DelayModel for NoKernelModel {
            fn factor(
                &self,
                cell: avfs_netlist::CellId,
                _pin: usize,
                _polarity: avfs_netlist::library::Polarity,
                _p: NormalizedPoint,
            ) -> Result<f64, avfs_delay::DelayError> {
                Err(avfs_delay::DelayError::MissingCell {
                    cell_index: cell.index(),
                })
            }
            fn name(&self) -> &str {
                "no-kernel"
            }
            fn space(&self) -> &ParameterSpace {
                &self.space
            }
        }
        let n = chain_netlist();
        let engine = Engine::new(
            Arc::clone(&n),
            Arc::new(TimingAnnotation::zero(&n)),
            Arc::new(NoKernelModel {
                space: ParameterSpace::paper(),
            }),
        )
        .unwrap();
        assert!(matches!(
            engine.run(&one_pattern(), &at_voltage(1, 0.8), &SimOptions::default()),
            Err(SimError::Model(avfs_delay::DelayError::MissingCell { .. }))
        ));
    }

    #[test]
    fn overflow_quarantine_and_retry_converges() {
        // The glitch pulse needs 2 transitions per net; a capacity-1 arena
        // must overflow, quarantine the slot and retry at capacity 4.
        let n = glitch_netlist();
        let engine = static_engine(&n, 10.0, 10.0);
        let patterns = one_pattern();
        let tight = SimOptions {
            threads: 1,
            keep_waveforms: true,
            arena_capacity: 1,
            ..SimOptions::default()
        };
        let run = engine.run(&patterns, &at_voltage(1, 0.8), &tight).unwrap();
        assert!(run.is_complete());
        assert_eq!(run.slots[0].status, SlotStatus::Completed { retries: 1 });
        assert_eq!(run.diagnostics.overflowed_slots, vec![0]);
        assert_eq!(run.diagnostics.slot_retries, 1);
        assert!(run.diagnostics.failed_slots.is_empty());
        assert_eq!(run.diagnostics.peak_arena_occupancy, 2);
        // Retries are visible in the throughput accounting.
        assert_eq!(run.node_evaluations, 2 * n.num_nodes() as u64);
        // The retried result is identical to an untroubled run.
        let easy = engine
            .run(
                &patterns,
                &at_voltage(1, 0.8),
                &SimOptions {
                    threads: 1,
                    keep_waveforms: true,
                    ..SimOptions::default()
                },
            )
            .unwrap();
        assert_eq!(run.slots[0].responses, easy.slots[0].responses);
        assert_eq!(run.slots[0].activity, easy.slots[0].activity);
        assert_eq!(run.slots[0].waveforms, easy.slots[0].waveforms);
    }

    #[test]
    fn overflow_past_retry_limit_fails_only_that_slot() {
        let n = glitch_netlist();
        let engine = static_engine(&n, 10.0, 10.0);
        // Pattern 0 glitches (input rises); pattern 1 is quiet.
        use avfs_atpg::pattern::{Pattern, PatternPair};
        let patterns: PatternSet = [
            PatternPair::new(Pattern::from_bits([false]), Pattern::from_bits([true])).unwrap(),
            PatternPair::new(Pattern::from_bits([false]), Pattern::from_bits([false])).unwrap(),
        ]
        .into_iter()
        .collect();
        let slots = [
            SlotSpec {
                pattern: 0,
                voltage: 0.8,
            },
            SlotSpec {
                pattern: 1,
                voltage: 0.8,
            },
        ];
        let opts = SimOptions {
            threads: 1,
            arena_capacity: 1,
            overflow_retries: 0,
            ..SimOptions::default()
        };
        let run = engine.run(&patterns, &slots, &opts).unwrap();
        assert!(!run.is_complete());
        assert_eq!(run.slots[0].status, SlotStatus::Overflowed { capacity: 1 });
        assert!(run.slots[0].responses.is_empty());
        assert_eq!(run.slots[1].status, SlotStatus::Completed { retries: 0 });
        assert_eq!(run.slots[1].responses, vec![true]); // quiet XOR: a ⊕ ā = 1
        assert_eq!(run.diagnostics.failed_slots, vec![0]);
        assert_eq!(run.diagnostics.overflowed_slots, vec![0]);
        assert_eq!(run.diagnostics.slot_retries, 0);
    }

    #[test]
    fn all_slots_failed_is_an_error() {
        let n = glitch_netlist();
        let engine = static_engine(&n, 10.0, 10.0);
        let opts = SimOptions {
            threads: 1,
            arena_capacity: 1,
            overflow_retries: 0,
            ..SimOptions::default()
        };
        assert!(matches!(
            engine.run(&one_pattern(), &at_voltage(1, 0.8), &opts),
            Err(SimError::AllSlotsFailed { slots: 1 })
        ));
    }

    #[test]
    fn panicking_slot_is_contained() {
        let n = chain_netlist();
        let engine = Engine::new(
            Arc::clone(&n),
            Arc::new(static_engine(&n, 10.0, 10.0).annotation().as_ref().clone()),
            Arc::new(PanickyModel {
                inner: StaticModel::new(ParameterSpace::paper()),
            }),
        )
        .unwrap();
        let patterns = one_pattern();
        // 1.1 V normalizes to 1.0 — the poisoned operating point.
        let slots = cross(1, &[0.8, 1.1, 0.9]);
        for threads in [1, 4] {
            let opts = SimOptions {
                threads,
                ..SimOptions::default()
            };
            let run = engine.run(&patterns, &slots, &opts).unwrap();
            assert!(!run.is_complete());
            assert_eq!(run.slots[1].status, SlotStatus::Panicked);
            assert!(run.slots[1].responses.is_empty());
            assert_eq!(run.diagnostics.panicked_slots, vec![1]);
            assert_eq!(run.diagnostics.failed_slots, vec![1]);
            // The healthy slots are unaffected.
            for i in [0, 2] {
                assert_eq!(run.slots[i].status, SlotStatus::Completed { retries: 0 });
                assert_eq!(run.slots[i].latest_output_transition_ps, Some(20.0));
                assert_eq!(run.slots[i].responses, vec![true]);
            }
        }
        // All slots at the poisoned point → the run itself errors.
        assert!(matches!(
            engine.run(&patterns, &at_voltage(1, 1.1), &SimOptions::default()),
            Err(SimError::AllSlotsFailed { slots: 1 })
        ));
    }

    #[test]
    fn kernel_fallback_guards_nonfinite_delays() {
        let n = chain_netlist();
        let mut ann = TimingAnnotation::zero(&n);
        for (id, node) in n.iter() {
            if matches!(node.kind(), NodeKind::Gate(_)) {
                ann.node_delays_mut(id)[0] = PinDelays {
                    rise: 10.0,
                    fall: 10.0,
                };
            }
        }
        let broken = Engine::new(
            Arc::clone(&n),
            Arc::new(ann),
            Arc::new(BrokenKernelModel {
                space: ParameterSpace::paper(),
            }),
        )
        .unwrap();
        let opts = SimOptions {
            threads: 1,
            ..SimOptions::default()
        };
        let run = broken
            .run(&one_pattern(), &at_voltage(1, 0.8), &opts)
            .unwrap();
        // Every scaled delay was non-finite; all fell back to nominal.
        assert!(run.diagnostics.kernel_fallbacks > 0);
        assert!(run.is_complete());
        let nominal = static_engine(&n, 10.0, 10.0)
            .run(&one_pattern(), &at_voltage(1, 0.8), &opts)
            .unwrap();
        assert_eq!(run.slots[0].responses, nominal.slots[0].responses);
        assert_eq!(
            run.slots[0].latest_output_transition_ps,
            nominal.slots[0].latest_output_transition_ps
        );
        // A healthy kernel reports no fallbacks.
        assert_eq!(nominal.diagnostics.kernel_fallbacks, 0);
    }

    #[test]
    fn dangling_net_clamp_reported() {
        // TimingAnnotation::zero leaves dangling nets at 0 fF, below the
        // paper space's 0.5 fF minimum — the engine clamps and reports.
        let n = chain_netlist();
        let engine = static_engine(&n, 1.0, 1.0);
        let run = engine
            .run(
                &one_pattern(),
                &at_voltage(1, 0.8),
                &SimOptions {
                    threads: 1,
                    ..SimOptions::default()
                },
            )
            .unwrap();
        assert!(run.diagnostics.clamped_loads > 0);
    }

    #[test]
    fn glitch_visible_in_activity() {
        // Reconvergent XOR: a ─┬────────► x
        //                      └─ inv ──► x ; x = a ⊕ ā glitches on input
        // change when path delays differ.
        let lib = CellLibrary::nangate15_like();
        let mut b = NetlistBuilder::new("glitch", &lib);
        let a = b.add_input("a").unwrap();
        let inv = b.add_gate("inv", "INV_X1", &[a]).unwrap();
        let x = b.add_gate("x", "XOR2_X1", &[a, inv]).unwrap();
        b.add_output("y", x).unwrap();
        let n = Arc::new(b.finish().unwrap());
        let engine = static_engine(&n, 10.0, 10.0);
        let run = engine
            .run(
                &one_pattern(),
                &at_voltage(1, 0.8),
                &SimOptions {
                    threads: 1,
                    keep_waveforms: true,
                    ..SimOptions::default()
                },
            )
            .unwrap();
        let slot = &run.slots[0];
        // x is 1 in steady state both before and after (a ⊕ ā = 1); the
        // inverter delay opens a 10 ps window where both inputs agree →
        // a glitch pulse at the XOR output.
        let wfs = slot.waveforms.as_ref().unwrap();
        let x_wf = &wfs[n.find("x").unwrap().index()];
        assert_eq!(x_wf.num_transitions(), 2, "expected a glitch pulse");
        assert!(x_wf.initial_value() && x_wf.final_value());
        assert!(slot.activity.total_glitch_transitions >= 2);
    }
}
