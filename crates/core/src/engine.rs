//! The parallel thread-grid time simulator (paper Sec. IV, Fig. 3).
//!
//! A CPU realization of the GPU kernel organization: slots × gates of a
//! level form the parallel work of one launch; a barrier separates
//! levels. Waveforms live in one flat structure-of-arrays arena indexed
//! `(slot, net)`, and slots are processed in batches sized by a memory
//! budget — the direct analogue of launching as many slots as fit in GPU
//! global memory.
//!
//! Every gate evaluation runs the paper's online delay calculation
//! (Sec. IV.A): load the nominal pin delays from the annotation, read the
//! slot's operating point, evaluate the delay kernel for each
//! (pin, polarity), scale, then run the waveform-processing loop.
//!
//! # Fault isolation
//!
//! The arena is *capacity-bounded*: every `(slot, net)` cell holds at most
//! [`SimOptions::arena_capacity`] transitions, exactly like the GPU's
//! fixed-size waveform buffers. A slot whose gates overflow is not an
//! error — it is quarantined (its remaining work skipped) and re-simulated
//! after the batch with geometrically grown capacity, up to
//! [`SimOptions::overflow_retries`] rounds; the GPU original's
//! overflow-flag-and-relaunch loop. A slot whose worker panics is likewise
//! contained via `catch_unwind` and reported in the run's
//! [`RunDiagnostics`] instead of poisoning the batch. Only when *every*
//! slot fails does a run return an error.

use crate::compile::CompiledNetlist;
use crate::phases;
use crate::pool::{Watchdog, WorkerPool};
use crate::results::{RunDiagnostics, SimRun, SlotResult, SlotStatus, TrippedBudget};
use crate::slots::SlotSpec;
use crate::SimError;
use avfs_atpg::PatternSet;
use avfs_delay::model::DelayModel;
use avfs_delay::op::{NormalizedPoint, OperatingPoint};
use avfs_delay::TimingAnnotation;
use avfs_inject::{FaultPlan, InjectionSite, Injector};
use avfs_netlist::{Levelization, Netlist, NodeId, NodeKind};
use avfs_obs::{time_option, Metrics};
use avfs_waveform::{
    evaluate_gate_bounded_raw, CapacityOverflow, GateScratch, LaneLayout, LevelWriter, PinDelays,
    SwitchingActivity, Waveform, WaveformArena, WaveformStats, WaveformView,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Default per-`(slot, net)` transition capacity when
/// [`SimOptions::arena_capacity`] is 0 (auto).
const DEFAULT_ARENA_CAPACITY: usize = 64;

/// Capacity growth factor per quarantine-and-retry round.
const CAPACITY_GROWTH: usize = 4;

/// Default lane width when [`SimOptions::lanes`] is 0 (auto): 8 slots
/// per lane group balances lane-word utilization on typical launches
/// against partial-tail waste on small ones.
const DEFAULT_LANES: usize = 8;

/// Work-stealing granularity: the cursor hands out chunks sized so each
/// worker sees about this many grabs per level, bounding both contention
/// (few grabs) and imbalance (small chunks).
const STEAL_GRABS_PER_WORKER: usize = 4;

/// Upper bound on one work-stealing chunk, so huge levels still rebalance.
const MAX_STEAL_CHUNK: usize = 64;

/// How much up-front validation a run performs.
///
/// The checks are the tier-1 (netlist) and tier-2 (operating point) lints
/// of `avfs-check`, run against the engine's bound netlist and the slots
/// of the launch. They catch inputs the engine would otherwise *silently
/// repair* — most importantly operating points outside the delay model's
/// characterized domain, which the online delay calculation clamps to the
/// domain boundary and simulates anyway.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ValidationMode {
    /// Skip validation entirely (findings list stays empty).
    Off,
    /// Run the checks and record rendered findings in
    /// [`RunDiagnostics::validation_findings`]; the simulation proceeds
    /// regardless. The default.
    #[default]
    Warn,
    /// Refuse to simulate when any warn-or-worse finding exists: the run
    /// returns [`SimError::Validation`] carrying the findings.
    Deny,
}

/// Runtime options of one engine launch.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Worker threads (the SIMD lanes of the substitute device); 0 — the
    /// default — selects the machine's available parallelism at run time
    /// (see [`SimOptions::resolved_threads`]). Workers are spawned once
    /// per run and parked between levels; at each level the count is
    /// further clamped to the level's task count.
    pub threads: usize,
    /// Time at which pattern pairs launch their transition, ps.
    pub launch_time_ps: f64,
    /// Upper bound on total transitions resident in the waveform arena at
    /// once (`slots × nodes × capacity`); slots are processed in batches
    /// respecting it (the global-memory budget).
    pub waveform_budget: usize,
    /// Retain full per-net waveforms in each [`SlotResult`] (small runs
    /// and tests only).
    pub keep_waveforms: bool,
    /// Transition capacity of one `(slot, net)` arena cell; 0 selects the
    /// default (64). Slots that overflow it are quarantined and retried at
    /// geometrically grown capacity.
    pub arena_capacity: usize,
    /// Quarantine-and-retry rounds for overflowing slots; each round
    /// multiplies the slot's capacity by 4. Slots still overflowing after
    /// the last round are reported as [`SlotStatus::Overflowed`].
    pub overflow_retries: u32,
    /// Collect a phase-level performance profile into
    /// [`SimRun::profile`]. All timing happens on the coordinator thread,
    /// so simulation results are bit-for-bit identical with profiling on
    /// or off; when off (the default) the only cost is an `Option`
    /// check per phase boundary.
    pub profiling: bool,
    /// Activity-gated level execution (on by default): a gate whose fanin
    /// cells all carry zero transitions — *quiet* inputs — has a constant
    /// output, so the engine resolves it with a cheap constant cell write
    /// on the coordinator and schedules only the remaining *active* gates
    /// on the worker pool, skipping delay-kernel scheduling and inertial
    /// pulse filtering for the quiet ones. Results are bit-for-bit
    /// identical with gating on or off; the switch exists for A/B
    /// measurement (see the `activity_sweep` bench bin).
    ///
    /// ```
    /// use avfs_core::{slots, Engine, SimOptions};
    /// use avfs_atpg::PatternSet;
    /// use avfs_delay::{ParameterSpace, StaticModel, TimingAnnotation};
    /// use avfs_netlist::CellLibrary;
    /// use std::sync::Arc;
    ///
    /// let library = CellLibrary::nangate15_like();
    /// let netlist = Arc::new(avfs_circuits::ripple_carry_adder(4, &library)?);
    /// let engine = Engine::new(
    ///     Arc::clone(&netlist),
    ///     Arc::new(TimingAnnotation::zero(&netlist)),
    ///     Arc::new(StaticModel::new(ParameterSpace::paper())),
    /// )?;
    /// let patterns = PatternSet::lfsr(netlist.inputs().len(), 4, 7);
    /// let slot_list = slots::at_voltage(patterns.len(), 0.8);
    /// let gated = engine.run(&patterns, &slot_list, &SimOptions::default())?;
    /// let ungated = engine.run(
    ///     &patterns,
    ///     &slot_list,
    ///     &SimOptions {
    ///         activity_gating: false,
    ///         ..SimOptions::default()
    ///     },
    /// )?;
    /// assert_eq!(gated.slots, ungated.slots); // gating never changes results
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub activity_gating: bool,
    /// Lane width `L` of the slot-packed (lane-major) arena layout: slots
    /// are grouped `L` at a time and one net's `L` waveforms are stored
    /// contiguously, so gate evaluation advances `L` slots per pass —
    /// logic values bit-packed into `u64` lane words on the quiet fast
    /// path, the delay kernel batched with hand-unrolled Horner blocks,
    /// and claim/quiet bookkeeping handled as per-lane-word masks. Must
    /// be a power of two ≤ 64 (lane masks are single `u64` words, and
    /// power-of-two widths keep a full group's claim run inside one
    /// atomic word); 0 — the default — selects 8. `lanes: 1` is exactly
    /// the scalar slot-major path, and every lane width produces
    /// bit-for-bit identical results: the layout change is a pure memory
    /// permutation and the batched arithmetic performs the identical
    /// per-lane operation sequence.
    pub lanes: usize,
    /// Up-front validation of the netlist and the launch's operating
    /// points (tier-1/tier-2 `avfs-check` lints). Defaults to
    /// [`ValidationMode::Warn`]: findings land in
    /// [`RunDiagnostics::validation_findings`] without affecting the
    /// simulation. [`ValidationMode::Deny`] turns warn-or-worse findings
    /// into [`SimError::Validation`].
    pub strict_validation: ValidationMode,
    /// Armed fault plan for deterministic fault injection (`None` — the
    /// default — compiles every probe down to one `Option`-discriminant
    /// branch). An *empty* plan (all rates zero) is bit-for-bit identical
    /// to no plan at all; a firing plan exercises the engine's quarantine,
    /// containment and budget paths exactly as the matching organic fault
    /// would. Decisions are pure functions of `(seed, site, key, salt)`,
    /// so a plan replays identically across thread counts and runs; the
    /// plan also records what fired (see [`FaultPlan`]).
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Wall-clock budget for the whole run, checked cooperatively at
    /// level barriers and between batches and retry rounds. On expiry the
    /// run degrades gracefully: slots already completed are returned,
    /// every unfinished slot resolves to
    /// [`SlotStatus::DeadlineExceeded`], and
    /// [`RunDiagnostics::budget_tripped`] records the trip. `None` (the
    /// default) never expires. A run whose *every* slot hits the deadline
    /// returns [`SimError::AllSlotsFailed`] like any other total loss.
    pub deadline: Option<Duration>,
    /// Arms a coordinator-side watchdog that samples pool progress and
    /// counts stalls longer than this timeout into
    /// [`RunDiagnostics::watchdog_stalls`]. Observation only — a stalled
    /// epoch is waited out, never killed — so the deterministic schedule
    /// is untouched. `None` (the default) runs without a watchdog.
    pub stall_timeout: Option<Duration>,
    /// Global memory budget in bytes for quarantine-retry capacity
    /// growth (admission control): a retry round is only admitted when
    /// its projected per-slot arena footprint
    /// (`nodes × capacity × sizeof(f64)` plus per-cell bookkeeping) fits
    /// the budget. Denied slots resolve to
    /// [`SlotStatus::BudgetExceeded`] without growing capacity, counted
    /// in [`RunDiagnostics::budget_denials`]. `0` (the default) is
    /// unlimited — the seed behavior of unconditional ×4 growth.
    pub memory_budget: usize,
    /// Shard size — slots per shard — used by
    /// [`BatchRunner::run`](crate::batch::BatchRunner::run) when it
    /// splits an oversized slot grid into back-to-back sub-runs on the
    /// parked pool. `0` (the default) sizes shards to the engine's own
    /// round-0 arena batch (`waveform_budget / (nodes × arena
    /// capacity)`), so shard boundaries coincide with internal batch
    /// boundaries. Ignored by direct [`Engine::run`] /
    /// [`Session`](crate::session::Session) launches, which batch
    /// internally regardless.
    pub shard_slots: usize,
}

impl SimOptions {
    /// The effective worker count: `threads`, with 0 resolved to the
    /// machine's available parallelism.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        }
    }

    /// The effective lane width: `lanes`, with 0 resolved to the default
    /// of 8.
    pub fn resolved_lanes(&self) -> usize {
        if self.lanes == 0 {
            DEFAULT_LANES
        } else {
            self.lanes
        }
    }

    /// The effective per-`(slot, net)` arena transition capacity:
    /// `arena_capacity`, with 0 resolved to the default of 64.
    pub fn resolved_arena_capacity(&self) -> usize {
        if self.arena_capacity == 0 {
            DEFAULT_ARENA_CAPACITY
        } else {
            self.arena_capacity.max(1)
        }
    }
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            threads: 0,
            launch_time_ps: 0.0,
            waveform_budget: 16 << 20,
            keep_waveforms: false,
            arena_capacity: 0,
            overflow_retries: 4,
            profiling: false,
            activity_gating: true,
            lanes: 0,
            strict_validation: ValidationMode::default(),
            fault_plan: None,
            deadline: None,
            stall_timeout: None,
            memory_budget: 0,
            shard_slots: 0,
        }
    }
}

/// Projected arena bytes one slot needs at `capacity` transitions per
/// cell: the `times` lane (`f64`), the `len` lane (`u32`) and the
/// `initial`/claim bookkeeping — the accounting unit of
/// [`SimOptions::memory_budget`].
fn slot_arena_bytes(nodes: usize, capacity: usize) -> usize {
    nodes.saturating_mul(
        capacity
            .saturating_mul(std::mem::size_of::<f64>())
            .saturating_add(std::mem::size_of::<u32>() + 2),
    )
}

/// The parallel time simulator bound to one netlist, annotation and delay
/// model — since the compile/launch split, a thin cheaply-cloneable shim
/// over an `Arc`-shared [`CompiledNetlist`].
///
/// [`Engine::new`] compiles at construction and [`Engine::run`] launches
/// directly, so existing one-shot callers keep working unchanged — but
/// every such run re-resolves threads and spawns a fresh worker pool.
/// Repeated-run workloads should compile once and launch through
/// [`Session`](crate::session::Session) (parked pool) or
/// [`BatchRunner`](crate::batch::BatchRunner) (parked pool + artifact
/// cache + grid sharding); [`Engine::compiled`] hands the artifact over.
///
/// ```
/// // The legacy one-shot shim still works (and is still the simplest
/// // way to run exactly once):
/// use avfs_core::{slots, Engine, SimOptions};
/// use avfs_atpg::PatternSet;
/// use avfs_delay::{ParameterSpace, StaticModel, TimingAnnotation};
/// use avfs_netlist::CellLibrary;
/// use std::sync::Arc;
///
/// let library = CellLibrary::nangate15_like();
/// let netlist = Arc::new(avfs_circuits::ripple_carry_adder(2, &library)?);
/// let engine = Engine::new(
///     Arc::clone(&netlist),
///     Arc::new(TimingAnnotation::zero(&netlist)),
///     Arc::new(StaticModel::new(ParameterSpace::paper())),
/// )?;
/// let patterns = PatternSet::lfsr(netlist.inputs().len(), 2, 7);
/// let run = engine.run(&patterns, &slots::at_voltage(2, 0.8), &SimOptions::default())?;
/// assert_eq!(run.slots.len(), 2);
/// // Repeated runs? Reuse the compiled artifact instead:
/// let compiled = Arc::clone(engine.compiled());
/// # let _ = compiled;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    compiled: Arc<CompiledNetlist>,
}

impl Engine {
    /// Creates an engine by compiling the triple into a
    /// [`CompiledNetlist`] (which this delegates to) and wrapping it.
    ///
    /// # Errors
    ///
    /// * [`SimError::AnnotationMismatch`] if the annotation does not cover
    ///   the netlist,
    /// * [`SimError::Netlist`] if the netlist contains a combinational
    ///   loop,
    /// * [`SimError::InvalidLoad`] / [`SimError::InvalidDelay`] if the
    ///   annotation carries non-finite or negative loads or delays.
    pub fn new(
        netlist: Arc<Netlist>,
        annotation: Arc<TimingAnnotation>,
        model: Arc<dyn DelayModel>,
    ) -> Result<Engine, SimError> {
        Ok(Engine {
            compiled: Arc::new(CompiledNetlist::compile(netlist, annotation, model)?),
        })
    }

    /// Wraps an already-compiled artifact; no compile cost is paid.
    pub fn from_compiled(compiled: Arc<CompiledNetlist>) -> Engine {
        Engine { compiled }
    }

    /// The underlying compiled artifact, for sharing with
    /// [`Session`](crate::session::Session) or
    /// [`BatchRunner`](crate::batch::BatchRunner).
    pub fn compiled(&self) -> &Arc<CompiledNetlist> {
        &self.compiled
    }

    /// The bound netlist.
    pub fn netlist(&self) -> &Arc<Netlist> {
        self.compiled.netlist()
    }

    /// The bound levelization.
    pub fn levels(&self) -> &Arc<Levelization> {
        self.compiled.levels()
    }

    /// The bound annotation.
    pub fn annotation(&self) -> &Arc<TimingAnnotation> {
        self.compiled.annotation()
    }

    /// The bound delay model.
    pub fn model(&self) -> &Arc<dyn DelayModel> {
        self.compiled.model()
    }

    /// The compile-time tier-1/tier-2 findings (netlist lints,
    /// levelization cross-check, clamped annotated loads) — the
    /// construction-time part of what
    /// [`SimOptions::strict_validation`] reports per run.
    pub fn setup_findings(&self) -> &[avfs_check::Finding] {
        self.compiled.setup_findings()
    }

    /// Simulates `slots` over `patterns` — the one-shot shim over
    /// [`CompiledNetlist::launch`]; see there for semantics and errors.
    /// A fresh worker pool is spawned per call when `threads > 1`.
    pub fn run(
        &self,
        patterns: &PatternSet,
        slots: &[SlotSpec],
        options: &SimOptions,
    ) -> Result<SimRun, SimError> {
        self.compiled.launch(patterns, slots, options)
    }

    /// Simulates with per-node voltage *domains* — the one-shot shim
    /// over [`CompiledNetlist::launch_domains`]; see there for semantics
    /// and errors.
    pub fn run_domains(
        &self,
        patterns: &PatternSet,
        domains: &crate::domains::VoltageDomains,
        specs: &[crate::domains::DomainSlotSpec],
        options: &SimOptions,
    ) -> Result<SimRun, SimError> {
        self.compiled
            .launch_domains(patterns, domains, specs, options)
    }

    /// Simulates piecewise-scheduled scenarios (optionally Monte Carlo
    /// sampled) — the one-shot shim over
    /// [`CompiledNetlist::launch_scenarios`]; see there for semantics
    /// and errors.
    pub fn run_scenarios(
        &self,
        patterns: &PatternSet,
        scenarios: &[crate::scenario::ScenarioSpec],
        mc: Option<&crate::scenario::MonteCarlo>,
        capture_deadline_ps: Option<f64>,
        options: &SimOptions,
    ) -> Result<SimRun, SimError> {
        self.compiled
            .launch_scenarios(patterns, scenarios, mc, capture_deadline_ps, options)
    }
}

/// How one launch executes beyond its [`SimOptions`]: which worker pool
/// to use (a caller-parked one, or none — then the run spawns its own
/// when `threads > 1`), whether a total loss is an error (sharded runs
/// re-check over the stitched grid instead), and optionally
/// pre-rendered validation findings (a grid-level caller validates once,
/// not per shard).
#[derive(Default)]
pub(crate) struct Exec<'a> {
    /// A caller-owned parked pool ([`Session`](crate::session::Session),
    /// [`BatchRunner`](crate::batch::BatchRunner)); `None` spawns per
    /// run — the legacy `Engine::run` shape.
    pub(crate) pool: Option<&'a WorkerPool>,
    /// Suppress the [`SimError::AllSlotsFailed`] check; the sharding
    /// caller re-checks over the whole stitched grid.
    pub(crate) allow_total_loss: bool,
    /// Pre-rendered validation findings; `Some` skips per-launch
    /// validation entirely (the grid-level caller already ran it).
    pub(crate) prevalidated: Option<Vec<String>>,
}

impl CompiledNetlist {
    /// Runs the launch validation: the artifact's pre-rendered setup
    /// findings plus an `AVC-D005` check of every slot operating point
    /// in `slot_points` — the only validation work left per run after
    /// the netlist/delay-model tiers were hoisted into compile. Returns
    /// the rendered findings for
    /// [`RunDiagnostics::validation_findings`], or
    /// [`SimError::Validation`] under [`ValidationMode::Deny`] when any
    /// warn-or-worse finding exists.
    pub(crate) fn validate_launch(
        &self,
        mode: ValidationMode,
        slot_points: &[(String, OperatingPoint)],
    ) -> Result<Vec<String>, SimError> {
        self.validate_launch_extra(mode, slot_points, &[])
    }

    /// [`CompiledNetlist::validate_launch`] with additional
    /// launch-specific findings already produced by the caller (the
    /// scenario layer's `AVC-N010`/`AVC-D006` schedule lints): they join
    /// the rendered findings and participate in the Deny decision
    /// exactly like slot-operating-point findings.
    pub(crate) fn validate_launch_extra(
        &self,
        mode: ValidationMode,
        slot_points: &[(String, OperatingPoint)],
        extra: &[avfs_check::Finding],
    ) -> Result<Vec<String>, SimError> {
        if mode == ValidationMode::Off {
            return Ok(Vec::new());
        }
        let op_findings = avfs_check::model::lint_operating_points(self.model.space(), slot_points);
        let mut rendered = self.setup_rendered.clone();
        rendered.extend(op_findings.iter().map(ToString::to_string));
        rendered.extend(extra.iter().map(ToString::to_string));
        let warn_or_worse = |f: &avfs_check::Finding| f.severity >= avfs_check::Severity::Warn;
        if mode == ValidationMode::Deny
            && (self.setup_deny
                || op_findings.iter().any(warn_or_worse)
                || extra.iter().any(warn_or_worse))
        {
            return Err(SimError::Validation { findings: rendered });
        }
        Ok(rendered)
    }

    /// Validates one uniform-voltage launch's stimuli and slot list and
    /// resolves them into the internal work list (per-slot normalized
    /// voltage assignments) plus the labelled operating points the
    /// launch validation checks. Shared by [`CompiledNetlist::launch`]
    /// and the sharding [`BatchRunner`](crate::batch::BatchRunner),
    /// which prepares the whole grid once — global `slot {i}` labels —
    /// and slices the work list per shard.
    #[allow(clippy::type_complexity)]
    pub(crate) fn prepare_uniform(
        &self,
        patterns: &PatternSet,
        slots: &[SlotSpec],
    ) -> Result<(Vec<SlotWork>, Vec<(String, OperatingPoint)>), SimError> {
        if slots.is_empty() {
            return Err(SimError::EmptySlots);
        }
        let width = self.netlist.inputs().len();
        for pair in patterns {
            if pair.width() != width {
                return Err(SimError::PatternWidth {
                    expected: width,
                    got: pair.width(),
                });
            }
        }
        for (i, spec) in slots.iter().enumerate() {
            if spec.pattern >= patterns.len() {
                return Err(SimError::BadPatternIndex {
                    index: spec.pattern,
                    available: patterns.len(),
                });
            }
            if !spec.voltage.is_finite() || spec.voltage <= 0.0 {
                return Err(SimError::InvalidOperatingPoint {
                    slot: i,
                    voltage: spec.voltage,
                });
            }
        }
        // Slot operating points are checked against the model's
        // characterized domain *before* normalization clamps them into
        // it, so an out-of-domain sweep point is recorded (Warn) or
        // refused (Deny) instead of silently repaired.
        let space = self.model.space();
        let slot_points: Vec<(String, OperatingPoint)> = slots
            .iter()
            .enumerate()
            .map(|(i, s)| {
                (
                    format!("slot {i}"),
                    OperatingPoint::new(s.voltage, space.load_range().0),
                )
            })
            .collect();
        // Per-slot normalized voltage — computed once per slot, like the
        // paper's parameter memory (clamped so a sweep endpoint such as
        // exactly V_max stays valid under floating-point noise).
        let work: Vec<SlotWork> = slots
            .iter()
            .map(|s| SlotWork {
                pattern: s.pattern,
                assign: VoltageAssign::Uniform(
                    space
                        .normalize_clamped(OperatingPoint::new(s.voltage, space.load_range().0))
                        .v,
                ),
                voltage: s.voltage,
                variation: None,
            })
            .collect();
        Ok((work, slot_points))
    }

    /// Simulates `slots` over `patterns` — the launch half of the
    /// compile/launch split. Pays no compile cost; a worker pool is
    /// spawned per call when `threads > 1` (use a
    /// [`Session`](crate::session::Session) or
    /// [`BatchRunner`](crate::batch::BatchRunner) to park one across
    /// runs).
    ///
    /// # Errors
    ///
    /// * [`SimError::EmptySlots`] for an empty slot list,
    /// * [`SimError::PatternWidth`] / [`SimError::BadPatternIndex`] for
    ///   inconsistent stimuli,
    /// * [`SimError::InvalidOperatingPoint`] for a non-finite or
    ///   non-positive supply voltage,
    /// * [`SimError::Validation`] under
    ///   [`ValidationMode::Deny`] when the up-front checks find a
    ///   warn-or-worse problem (e.g. a slot voltage outside the model's
    ///   characterized domain, which `Warn` mode would clamp and record),
    /// * [`SimError::Model`] if the delay model rejects an operating point
    ///   or lacks a kernel,
    /// * [`SimError::AllSlotsFailed`] if no slot produced a usable result
    ///   (individual slot failures are reported per slot instead).
    pub fn launch(
        &self,
        patterns: &PatternSet,
        slots: &[SlotSpec],
        options: &SimOptions,
    ) -> Result<SimRun, SimError> {
        self.launch_with(patterns, slots, options, Exec::default())
    }

    pub(crate) fn launch_with(
        &self,
        patterns: &PatternSet,
        slots: &[SlotSpec],
        options: &SimOptions,
        mut exec: Exec<'_>,
    ) -> Result<SimRun, SimError> {
        let (work, slot_points) = self.prepare_uniform(patterns, slots)?;
        let validation = match exec.prevalidated.take() {
            Some(v) => v,
            None => self.validate_launch(options.strict_validation, &slot_points)?,
        };
        self.run_work(patterns, &work, options, validation, &exec)
    }

    /// Simulates with per-node voltage *domains* (voltage islands): every
    /// slot assigns one supply voltage to each domain of `domains`.
    ///
    /// This extends the paper's per-instance operating points to the
    /// multi-rail AVFS systems its introduction describes ("actively
    /// control internal voltages", plural): one launch can sweep island
    /// configurations the way [`CompiledNetlist::launch`] sweeps global
    /// supplies. The reported [`SlotSpec::voltage`] of each result is the
    /// slot's domain-0 voltage (results are in slot order, so callers
    /// index the spec list they passed).
    ///
    /// # Errors
    ///
    /// Same as [`CompiledNetlist::launch`], plus [`SimError::Model`]
    /// variants surfaced through domain validation in
    /// [`VoltageDomains`](crate::domains::VoltageDomains).
    pub fn launch_domains(
        &self,
        patterns: &PatternSet,
        domains: &crate::domains::VoltageDomains,
        specs: &[crate::domains::DomainSlotSpec],
        options: &SimOptions,
    ) -> Result<SimRun, SimError> {
        self.launch_domains_with(patterns, domains, specs, options, Exec::default())
    }

    pub(crate) fn launch_domains_with(
        &self,
        patterns: &PatternSet,
        domains: &crate::domains::VoltageDomains,
        specs: &[crate::domains::DomainSlotSpec],
        options: &SimOptions,
        mut exec: Exec<'_>,
    ) -> Result<SimRun, SimError> {
        if specs.is_empty() {
            return Err(SimError::EmptySlots);
        }
        if domains.len() != self.netlist.num_nodes() {
            return Err(SimError::AnnotationMismatch);
        }
        let space = self.model.space();
        let c_min = space.load_range().0;
        // Each distinct (slot, domain) supply is a checked operating
        // point — islands extend the validation the same way they extend
        // the voltage assignment.
        let slot_points: Vec<(String, OperatingPoint)> = specs
            .iter()
            .enumerate()
            .flat_map(|(i, spec)| {
                spec.voltages.iter().enumerate().map(move |(d, &v)| {
                    (
                        format!("slot {i}/domain {d}"),
                        OperatingPoint::new(v, c_min),
                    )
                })
            })
            .collect();
        let validation = match exec.prevalidated.take() {
            Some(v) => v,
            None => self.validate_launch(options.strict_validation, &slot_points)?,
        };
        let work: Vec<SlotWork> = specs
            .iter()
            .map(|spec| {
                if spec.voltages.len() != domains.count() {
                    return Err(SimError::BadPatternIndex {
                        index: spec.voltages.len(),
                        available: domains.count(),
                    });
                }
                // Normalize each domain voltage once, then expand per node.
                let per_domain: Vec<f64> = spec
                    .voltages
                    .iter()
                    .map(|&v| {
                        space
                            .normalize_clamped(avfs_delay::op::OperatingPoint::new(v, c_min))
                            .v
                    })
                    .collect();
                let per_node: Vec<f64> = (0..self.netlist.num_nodes())
                    .map(|n| per_domain[domains.domain_of_index(n)])
                    .collect();
                Ok(SlotWork {
                    pattern: spec.pattern,
                    assign: VoltageAssign::PerNode(Arc::new(per_node)),
                    voltage: spec.voltages[0],
                    variation: None,
                })
            })
            .collect::<Result<_, _>>()?;
        for w in &work {
            if w.pattern >= patterns.len() {
                return Err(SimError::BadPatternIndex {
                    index: w.pattern,
                    available: patterns.len(),
                });
            }
        }
        self.run_work(patterns, &work, options, validation, &exec)
    }

    pub(crate) fn run_work(
        &self,
        patterns: &PatternSet,
        work: &[SlotWork],
        options: &SimOptions,
        validation_findings: Vec<String>,
        exec: &Exec<'_>,
    ) -> Result<SimRun, SimError> {
        let nodes = self.netlist.num_nodes();
        // Lane-width hygiene before any work launches: masks are single
        // u64 words and power-of-two widths keep full lane groups inside
        // one claim word.
        let lanes = options.resolved_lanes();
        if !lanes.is_power_of_two() || lanes > 64 {
            return Err(SimError::InvalidLanes {
                lanes: options.lanes,
            });
        }
        let base_cap = options.resolved_arena_capacity();
        // Profiling is strictly observational: all instruments live in a
        // per-run registry touched only by this coordinator thread, so the
        // deterministic schedule (and therefore every waveform) is
        // identical whether the registry exists or not.
        let metrics = options.profiling.then(|| Metrics::new("engine"));
        let metrics = metrics.as_ref();
        let run_span = metrics.map(|m| m.span(phases::ENGINE_RUN));
        if let Some(m) = metrics {
            m.record(phases::ENGINE_LANES_WIDTH, lanes as u64);
            // Scenario instruments are recorded only when the work list
            // actually carries a multi-segment schedule or a Monte Carlo
            // die: a constant-schedule scenario launch lowers to static
            // slots and stays bit-identical to the static run — profile
            // included (DESIGN.md §15).
            if work
                .iter()
                .any(|w| w.assign.segments() > 1 || w.variation.is_some())
            {
                m.add(
                    phases::ENGINE_SCENARIO_SEGMENTS,
                    work.iter().map(|w| w.assign.segments() as u64).sum(),
                );
                m.add(
                    phases::ENGINE_MC_SAMPLES,
                    work.iter().filter(|w| w.variation.is_some()).count() as u64,
                );
            }
        }
        let start = Instant::now();
        // Fault injection: unarmed (the default) reduces every probe to
        // one Option-discriminant branch; an armed plan is consulted with
        // pure (site, key, salt) decisions, so the schedule — and with an
        // all-zero plan, every result bit — is identical to a clean run.
        let injector = options
            .fault_plan
            .as_ref()
            .map_or_else(Injector::unarmed, |p| Injector::armed(Arc::clone(p)));
        // Snapshot so a plan reused across runs reports per-run deltas.
        let fired_before = options.fault_plan.as_ref().map_or(0, |p| p.total_fired());
        let deadline_at = options.deadline.map(|d| start + d);
        // The watchdog observes coordinator progress (bumped at level
        // barriers) from a monitor thread; it never intervenes, so arming
        // it cannot perturb results. Disarmed on drop, Err paths included.
        let watchdog = options.stall_timeout.map(Watchdog::arm);
        // The persistent pool: a caller-parked pool (Session/BatchRunner)
        // is reused as-is; otherwise workers are spawned once here and
        // parked between levels. Either way every level of every batch
        // and retry round is released through the pool's epoch barrier
        // (the GPU grid analogue). A single-threaded run needs no pool.
        let threads = options.resolved_threads();
        let owned_pool = (exec.pool.is_none() && threads > 1).then(|| WorkerPool::new(threads));
        let pool = exec.pool.or(owned_pool.as_ref());
        let tallies = PoolTallies::new(pool.map_or(1, WorkerPool::size));
        let mut diag = RunDiagnostics {
            clamped_loads: self.clamped_loads,
            validation_findings,
            ..RunDiagnostics::default()
        };
        let mut results: Vec<Option<SlotResult>> = vec![None; work.len()];
        let mut slot_sims = 0u64;
        // Quarantine-and-retry rounds: round 0 simulates every slot at the
        // base capacity; each later round re-simulates only the slots that
        // overflowed, at geometrically grown capacity — the CPU analogue of
        // the GPU's overflow-flag-and-relaunch loop.
        let mut pending: Vec<usize> = (0..work.len()).collect();
        let mut cap = base_cap;
        let mut round = 0u32;
        loop {
            let batch_slots =
                (options.waveform_budget / (nodes.max(1) * cap)).clamp(1, pending.len());
            let mut arena = WaveformArena::new(batch_slots * nodes, cap);
            let mut overflowed: Vec<usize> = Vec::new();
            for chunk in pending.chunks(batch_slots) {
                // Between-batch deadline check: once the budget is spent,
                // remaining batches are not even launched — their slots
                // resolve to DeadlineExceeded while completed ones keep
                // their results (graceful degradation).
                if deadline_at.is_some_and(|t| Instant::now() >= t) {
                    for &slot in chunk {
                        results[slot] = Some(SlotResult::failed(
                            SlotSpec {
                                pattern: work[slot].pattern,
                                voltage: work[slot].voltage,
                            },
                            SlotStatus::DeadlineExceeded,
                        ));
                        diag.deadline_aborts += 1;
                        diag.budget_tripped = Some(TrippedBudget::Deadline);
                        diag.failed_slots.push(slot);
                    }
                    continue;
                }
                slot_sims += chunk.len() as u64;
                if let Some(m) = metrics {
                    m.add(phases::ENGINE_BATCHES, 1);
                    m.record(phases::ENGINE_BATCH_SLOTS, chunk.len() as u64);
                }
                self.run_batch(
                    patterns,
                    work,
                    chunk,
                    options,
                    round,
                    pool,
                    &tallies,
                    &injector,
                    deadline_at,
                    watchdog.as_ref(),
                    &mut arena,
                    &mut results,
                    &mut overflowed,
                    &mut diag,
                    metrics,
                )?;
                if let Some(m) = metrics {
                    m.record(
                        phases::ENGINE_ARENA_OCCUPANCY,
                        arena.peak_occupancy() as u64,
                    );
                }
            }
            diag.peak_arena_occupancy = diag.peak_arena_occupancy.max(arena.peak_occupancy());
            for &s in &overflowed {
                if !diag.overflowed_slots.contains(&s) {
                    diag.overflowed_slots.push(s);
                }
            }
            if overflowed.is_empty() {
                break;
            }
            if round >= options.overflow_retries {
                for &s in &overflowed {
                    results[s] = Some(SlotResult::failed(
                        SlotSpec {
                            pattern: work[s].pattern,
                            voltage: work[s].voltage,
                        },
                        SlotStatus::Overflowed { capacity: cap },
                    ));
                    diag.failed_slots.push(s);
                }
                break;
            }
            round += 1;
            // Retry admission control: growing the arena ×4 is the one
            // place the engine's memory use escalates, so the memory
            // budget (and the injected allocation-cap breach that
            // rehearses it) gates entry into the next round. Denied slots
            // fail as BudgetExceeded at today's capacity instead of
            // growing it.
            let next_cap = cap.saturating_mul(CAPACITY_GROWTH);
            let admitted: Vec<usize> = if options.memory_budget != 0 || injector.is_armed() {
                let mut admitted = Vec::with_capacity(overflowed.len());
                for &slot in &overflowed {
                    let over_budget = options.memory_budget != 0
                        && slot_arena_bytes(nodes, next_cap) > options.memory_budget;
                    let injected = injector.fires(
                        InjectionSite::AllocCapBreach,
                        slot as u64,
                        u64::from(round),
                    );
                    if over_budget || injected {
                        results[slot] = Some(SlotResult::failed(
                            SlotSpec {
                                pattern: work[slot].pattern,
                                voltage: work[slot].voltage,
                            },
                            SlotStatus::BudgetExceeded,
                        ));
                        diag.budget_denials += 1;
                        diag.budget_tripped = Some(TrippedBudget::Memory);
                        diag.failed_slots.push(slot);
                    } else {
                        admitted.push(slot);
                    }
                }
                admitted
            } else {
                overflowed
            };
            if admitted.is_empty() {
                break;
            }
            if let Some(m) = metrics {
                m.add(phases::ENGINE_RETRY_ROUNDS, 1);
            }
            diag.slot_retries += admitted.len() as u64;
            cap = next_cap;
            pending = admitted;
        }
        diag.overflowed_slots.sort_unstable();
        diag.panicked_slots.sort_unstable();
        diag.failed_slots.sort_unstable();
        if let Some(wd) = &watchdog {
            diag.watchdog_stalls = wd.stalls();
        }
        diag.faults_injected = options
            .fault_plan
            .as_ref()
            .map_or(0, |p| p.total_fired())
            .saturating_sub(fired_before);
        if let Some(m) = metrics {
            // Always recorded (created at zero on clean runs) so report
            // tooling can assert a profiled run was fault- and budget-free.
            m.add(phases::ENGINE_FAULTS_INJECTED, diag.faults_injected);
            m.add(phases::ENGINE_DEADLINE_ABORTS, diag.deadline_aborts);
            m.add(phases::ENGINE_BUDGET_DENIALS, diag.budget_denials);
        }
        let slots: Vec<SlotResult> = results
            .into_iter()
            .map(|r| r.expect("every slot resolved by the retry loop"))
            .collect();
        if !exec.allow_total_loss && slots.iter().all(|s| !s.status.is_completed()) {
            return Err(SimError::AllSlotsFailed { slots: slots.len() });
        }
        if let Some(m) = metrics {
            let mut steals = 0u64;
            for w in 0..tallies.tasks.len() {
                m.record(
                    phases::ENGINE_POOL_WORKER_TASKS,
                    tallies.tasks[w].load(Ordering::Relaxed),
                );
                steals += tallies.steals[w].load(Ordering::Relaxed);
            }
            m.add(phases::ENGINE_POOL_STEALS, steals);
        }
        let elapsed = start.elapsed();
        if let Some(span) = run_span {
            span.finish();
        }
        Ok(SimRun {
            slots,
            elapsed,
            node_evaluations: (nodes as u64) * slot_sims,
            diagnostics: diag,
            profile: metrics.map(Metrics::snapshot),
            scenario: None,
        })
    }

    /// Simulates one batch (`chunk` indexes into `work`) against the
    /// bounded `arena`. Slots that overflow the arena are appended to
    /// `overflowed` for the caller's retry loop; slots whose delay
    /// evaluation panics are contained and recorded as failed. Only errors
    /// affecting the whole run (a delay-model error) propagate as `Err`.
    #[allow(clippy::too_many_arguments)]
    fn run_batch(
        &self,
        patterns: &PatternSet,
        work: &[SlotWork],
        chunk: &[usize],
        options: &SimOptions,
        round: u32,
        pool: Option<&WorkerPool>,
        tallies: &PoolTallies,
        injector: &Injector,
        deadline_at: Option<Instant>,
        watchdog: Option<&Watchdog>,
        arena: &mut WaveformArena,
        results: &mut [Option<SlotResult>],
        overflowed: &mut Vec<usize>,
        diag: &mut RunDiagnostics,
        metrics: Option<&Metrics>,
    ) -> Result<(), SimError> {
        let nodes = self.netlist.num_nodes();
        // The lane-major (slot-packed) address map of this batch: chunk
        // slots are grouped `L` at a time and one net's `L` waveforms are
        // stored contiguously, so every per-gate pass below advances a
        // whole lane group. `L = 1` degenerates exactly to the slot-major
        // layout, which is what the determinism matrix compares against.
        let layout = LaneLayout::new(options.resolved_lanes(), nodes.max(1), chunk.len());
        arena.reset();

        // Per-slot fault status within this batch. A dead slot's remaining
        // work is skipped; flags are only updated at level barriers so the
        // schedule stays deterministic.
        let mut dead: Vec<Option<Dead>> = vec![None; chunk.len()];

        // Level 0: stimuli waveforms, written through lane-group-disjoint
        // arena partitions (one per lane group of the batch; a group's
        // cells are contiguous by construction).
        time_option(metrics, phases::ENGINE_STIMULI, || {
            for (g, mut part) in arena
                .partitions(layout.group_entries())
                .take(layout.groups())
                .enumerate()
            {
                let w = layout.group_width(g);
                for lane in 0..w {
                    let si = layout.group_slot(g) + lane;
                    let pair = &patterns.pairs()[work[chunk[si]].pattern];
                    for (k, &pi) in self.netlist.inputs().iter().enumerate() {
                        let wf = Waveform::from_pattern(
                            pair.launch.bit(k),
                            pair.capture.bit(k),
                            options.launch_time_ps,
                        );
                        // Partition-local lane-major index: net-major
                        // within the group, lanes contiguous.
                        if part.write(pi.index() * w + lane, &wf).is_err() {
                            dead[si] = Some(Dead::Overflow);
                        }
                    }
                }
            }
        });

        // Distinct voltage groups within the batch: slots at the same
        // operating point share identical delay kernels ("the delay
        // calculations of threads from parallel instances of a gate
        // utilize the same coefficients and delay function calls"), so the
        // per-gate initialization phase runs once per (level, voltage)
        // instead of once per (slot, gate). A Monte Carlo die is part of
        // the key: sampled slots only share a group with slots of the
        // same die, since variation derates the initialized delays.
        let mut group_keys: Vec<(&VoltageAssign, Option<VariationSample>)> = Vec::new();
        let group_of_slot: Vec<usize> = chunk
            .iter()
            .map(|&slot| {
                let key = (&work[slot].assign, work[slot].variation);
                match group_keys
                    .iter()
                    .position(|(a, v)| *a == key.0 && *v == key.1)
                {
                    Some(g) => g,
                    None => {
                        group_keys.push(key);
                        group_keys.len() - 1
                    }
                }
            })
            .collect();
        let group_assigns: Vec<&VoltageAssign> = group_keys.iter().map(|(a, _)| *a).collect();
        let group_variation: Vec<Option<VariationSample>> =
            group_keys.iter().map(|(_, v)| *v).collect();

        // Per-voltage delay tables cached on the artifact: when every
        // group in the batch is a uniform or scheduled assignment with no
        // Monte Carlo die (variation derates are per-sample, never
        // cacheable) and no fault plan is armed (factor corruption is
        // keyed per run and round), the per-level kernel initialization
        // below is a pure function of (artifact, supply) and is served
        // from [`CompiledNetlist::cached_delay_table`] instead of being
        // re-evaluated — a scheduled group fetches one table per segment,
        // so a droop schedule over an already-swept voltage grid pays no
        // kernel work at all. All-or-nothing per batch: any island
        // assignment, sampled die, armed injector or failed table build
        // takes the online path for the whole batch, which reproduces
        // uncached error/panic semantics exactly.
        let group_tables: Option<Vec<Vec<Arc<DelayTable>>>> =
            if injector.is_armed() || group_variation.iter().any(Option::is_some) {
                None
            } else {
                // Table fetches (and first-use builds) are delay-kernel
                // work; attribute them to the same phase the online path
                // uses.
                let table_span = metrics.map(|m| m.span(phases::ENGINE_DELAY_KERNEL));
                let tables: Option<Vec<Vec<Arc<DelayTable>>>> = group_assigns
                    .iter()
                    .map(|a| match a {
                        VoltageAssign::Uniform(v) => {
                            self.cached_delay_table(*v, metrics).map(|t| vec![t])
                        }
                        VoltageAssign::Scheduled(s) => s
                            .v_norms
                            .iter()
                            .map(|&v| self.cached_delay_table(v, metrics))
                            .collect(),
                        VoltageAssign::PerNode(_) => None,
                    })
                    .collect();
                if let Some(span) = table_span {
                    span.finish();
                }
                if tables.is_some() {
                    if let Some(m) = metrics {
                        m.add(phases::ENGINE_DELAY_TABLE_HITS, 1);
                    }
                }
                tables
            };

        // Levels 1…L: the vertical dimension with a barrier per level.
        let mut fallbacks = 0u64;
        let mut variation_draws = 0u64;
        // One buffer per (voltage group, schedule segment); static groups
        // have exactly one segment.
        let mut level_delays: Vec<Vec<Vec<PinDelays>>> = group_assigns
            .iter()
            .map(|a| vec![Vec::new(); a.segments()])
            .collect();
        for level in 1..self.levels.depth() {
            if dead.iter().all(Option::is_some) {
                break;
            }
            let level_nodes = self.levels.level(level);
            if level_nodes.is_empty() {
                continue;
            }
            if let Some(m) = metrics {
                m.add(phases::ENGINE_LEVELS, 1);
            }

            // Level plan: gates become pool tasks; primary outputs are mere
            // passthroughs, copied cell-to-cell at the barrier instead of
            // being scheduled as tasks. Precomputed once at compile.
            let plan = &self.level_plans[level];
            let gate_nodes = &plan.gate_nodes;
            let gate_offsets = &plan.gate_offsets;
            let output_nodes = &plan.output_nodes;
            let kernel_span = metrics.map(|m| m.span(phases::ENGINE_DELAY_KERNEL));
            let mut kernel_evals = 0u64;
            let mut lane_batches = 0u64;
            for bufs in level_delays.iter_mut() {
                for buf in bufs.iter_mut() {
                    buf.clear();
                }
            }
            // Voltage groups still live this level (a group is live while
            // any of its slots is).
            let live_vgroups: Vec<usize> = (0..group_assigns.len())
                .filter(|&g| {
                    group_of_slot
                        .iter()
                        .zip(&dead)
                        .any(|(&gg, d)| gg == g && d.is_none())
                })
                .collect();
            if let Some(tables) = &group_tables {
                // Cached per-voltage tables: skip the kernel and replay
                // each table's fallback tally for the live groups (every
                // segment of a scheduled group), so cached and online
                // launches report identical
                // [`RunDiagnostics::kernel_fallbacks`].
                for &g in &live_vgroups {
                    for t in &tables[g] {
                        fallbacks += t.fallbacks_per_level[level];
                    }
                }
            } else {
                // Injected non-finite kernel output, keyed by the global slot
                // of each group's first batch member (voltage groups share one
                // kernel evaluation, so the site is per group): corrupted
                // factors flow into scale_or_fallback exactly like an
                // organically broken kernel would.
                let nf_keys: Vec<Option<u64>> = live_vgroups
                    .iter()
                    .map(|&g| {
                        injector.is_armed().then(|| {
                            let si = group_of_slot
                                .iter()
                                .position(|&gg| gg == g)
                                .expect("live group has a member");
                            chunk[si] as u64
                        })
                    })
                    .collect();
                // Lane-batched kernel initialization: for each (gate, pin,
                // polarity) the factors of ALL live voltage groups — one
                // lane per (group, schedule segment) — are evaluated in
                // one `factor_lanes` call: the hand-unrolled Horner path
                // of `avfs_delay`. The batched arithmetic performs the
                // identical per-lane operation sequence as scalar
                // `factor`, so this path and the per-group scalar fallback
                // below produce bit-identical delays; the fallback exists only
                // to preserve per-group panic attribution when a model panics
                // mid-batch. Monte Carlo derates are hashed per
                // (die, node, pin, polarity) — segment- and
                // schedule-independent — and multiply the scaled delay
                // after the fallback guard (a nominal die multiplies by
                // exactly 1.0).
                let lane_count: usize = live_vgroups
                    .iter()
                    .map(|&g| group_assigns[g].segments())
                    .sum();
                let batched = (!live_vgroups.is_empty()).then(|| {
                    catch_unwind(AssertUnwindSafe(|| -> Result<(u64, u64), SimError> {
                        let mut fb = 0u64;
                        let mut draws = 0u64;
                        let mut points: Vec<NormalizedPoint> = Vec::with_capacity(lane_count);
                        let mut f_rise = vec![0.0f64; lane_count];
                        let mut f_fall = vec![0.0f64; lane_count];
                        for &node_id in level_nodes {
                            if let NodeKind::Gate(cell_id) = self.netlist.node(node_id).kind() {
                                let nominal = self.annotation.node_delays(node_id);
                                points.clear();
                                for &g in &live_vgroups {
                                    for seg in 0..group_assigns[g].segments() {
                                        points.push(NormalizedPoint {
                                            v: group_assigns[g].v_norm_at(node_id.index(), seg),
                                            c: self.c_norm[node_id.index()],
                                        });
                                    }
                                }
                                for (pin, d) in nominal.iter().enumerate() {
                                    self.model.factor_lanes(
                                        cell_id,
                                        pin,
                                        avfs_netlist::library::Polarity::Rise,
                                        &points,
                                        &mut f_rise,
                                    )?;
                                    self.model.factor_lanes(
                                        cell_id,
                                        pin,
                                        avfs_netlist::library::Polarity::Fall,
                                        &points,
                                        &mut f_fall,
                                    )?;
                                    lane_batches += 2;
                                    let mut lane = 0;
                                    for (k, &g) in live_vgroups.iter().enumerate() {
                                        let (dr, df) = match &group_variation[g] {
                                            Some(vs) => {
                                                draws += 2;
                                                (
                                                    avfs_delay::variation::derate(
                                                        &vs.config,
                                                        vs.sample,
                                                        node_id,
                                                        pin,
                                                        avfs_netlist::library::Polarity::Rise,
                                                    ),
                                                    avfs_delay::variation::derate(
                                                        &vs.config,
                                                        vs.sample,
                                                        node_id,
                                                        pin,
                                                        avfs_netlist::library::Polarity::Fall,
                                                    ),
                                                )
                                            }
                                            None => (1.0, 1.0),
                                        };
                                        let segs = group_assigns[g].segments();
                                        for seg_buf in level_delays[g].iter_mut().take(segs) {
                                            let (mut fr, mut ff) = (f_rise[lane], f_fall[lane]);
                                            lane += 1;
                                            if let Some(key) = nf_keys[k] {
                                                fr = injector.corrupt_factor(
                                                    fr,
                                                    key,
                                                    u64::from(round),
                                                );
                                                ff = injector.corrupt_factor(
                                                    ff,
                                                    key,
                                                    u64::from(round),
                                                );
                                            }
                                            seg_buf.push(PinDelays {
                                                rise: derate_delay(
                                                    scale_or_fallback(d.rise, fr, &mut fb),
                                                    dr,
                                                ),
                                                fall: derate_delay(
                                                    scale_or_fallback(d.fall, ff, &mut fb),
                                                    df,
                                                ),
                                            });
                                        }
                                    }
                                }
                            }
                        }
                        Ok((fb, draws))
                    }))
                });
                match batched {
                    None => {}
                    Some(Ok(Ok((fb, draws)))) => {
                        fallbacks += fb;
                        variation_draws += draws;
                        // Two kernel evaluations (rise + fall) per pin per
                        // live (group, segment) lane.
                        for &g in &live_vgroups {
                            for buf in &level_delays[g] {
                                kernel_evals += 2 * buf.len() as u64;
                            }
                        }
                    }
                    Some(Ok(Err(e))) => return Err(e),
                    Some(Err(_)) => {
                        // A model panicked mid-batch. Re-run group by group so
                        // the panic is attributed to exactly the poisoned
                        // voltage group(s), as a scalar engine would; healthy
                        // groups recompute their (bit-identical) delays.
                        lane_batches = 0;
                        for bufs in level_delays.iter_mut() {
                            for buf in bufs.iter_mut() {
                                buf.clear();
                            }
                        }
                        for (k, &g) in live_vgroups.iter().enumerate() {
                            let bufs = &mut level_delays[g];
                            let assign = group_assigns[g];
                            let variation = group_variation[g];
                            let nf_key = nf_keys[k];
                            let outcome = catch_unwind(AssertUnwindSafe(
                                || -> Result<(u64, u64), SimError> {
                                    let mut fb = 0u64;
                                    let mut draws = 0u64;
                                    for &node_id in level_nodes {
                                        if let NodeKind::Gate(cell_id) =
                                            self.netlist.node(node_id).kind()
                                        {
                                            let nominal = self.annotation.node_delays(node_id);
                                            for (pin, d) in nominal.iter().enumerate() {
                                                let (dr, df) = match &variation {
                                                    Some(vs) => {
                                                        draws += 2;
                                                        (
                                                            avfs_delay::variation::derate(
                                                                &vs.config,
                                                                vs.sample,
                                                                node_id,
                                                                pin,
                                                                avfs_netlist::library::Polarity::Rise,
                                                            ),
                                                            avfs_delay::variation::derate(
                                                                &vs.config,
                                                                vs.sample,
                                                                node_id,
                                                                pin,
                                                                avfs_netlist::library::Polarity::Fall,
                                                            ),
                                                        )
                                                    }
                                                    None => (1.0, 1.0),
                                                };
                                                let segs = assign.segments();
                                                for (seg, seg_buf) in
                                                    bufs.iter_mut().enumerate().take(segs)
                                                {
                                                    let p = NormalizedPoint {
                                                        v: assign.v_norm_at(node_id.index(), seg),
                                                        c: self.c_norm[node_id.index()],
                                                    };
                                                    let mut f_rise = self.model.factor(
                                                        cell_id,
                                                        pin,
                                                        avfs_netlist::library::Polarity::Rise,
                                                        p,
                                                    )?;
                                                    let mut f_fall = self.model.factor(
                                                        cell_id,
                                                        pin,
                                                        avfs_netlist::library::Polarity::Fall,
                                                        p,
                                                    )?;
                                                    if let Some(key) = nf_key {
                                                        f_rise = injector.corrupt_factor(
                                                            f_rise,
                                                            key,
                                                            u64::from(round),
                                                        );
                                                        f_fall = injector.corrupt_factor(
                                                            f_fall,
                                                            key,
                                                            u64::from(round),
                                                        );
                                                    }
                                                    seg_buf.push(PinDelays {
                                                        rise: derate_delay(
                                                            scale_or_fallback(
                                                                d.rise, f_rise, &mut fb,
                                                            ),
                                                            dr,
                                                        ),
                                                        fall: derate_delay(
                                                            scale_or_fallback(
                                                                d.fall, f_fall, &mut fb,
                                                            ),
                                                            df,
                                                        ),
                                                    });
                                                }
                                            }
                                        }
                                    }
                                    Ok((fb, draws))
                                },
                            ));
                            match outcome {
                                Ok(Ok((fb, draws))) => {
                                    fallbacks += fb;
                                    variation_draws += draws;
                                    // Two kernel evaluations (rise + fall) per
                                    // pin per segment.
                                    for buf in bufs.iter() {
                                        kernel_evals += 2 * buf.len() as u64;
                                    }
                                }
                                Ok(Err(e)) => return Err(e),
                                Err(_) => {
                                    for buf in bufs.iter_mut() {
                                        buf.clear();
                                    }
                                    for (si, &gg) in group_of_slot.iter().enumerate() {
                                        if gg == g && dead[si].is_none() {
                                            dead[si] = Some(Dead::Panic);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }

            if let Some(m) = metrics {
                m.add(phases::ENGINE_KERNEL_EVALS, kernel_evals);
                m.add(phases::ENGINE_LANES_KERNEL_BATCHES, lane_batches);
            }
            if let Some(span) = kernel_span {
                span.finish();
            }

            // Task grid of the level: live lane groups × gates. Dead
            // lanes are masked out of their group's live mask up front, so
            // neither round 0 nor retry rounds ever evaluate a quarantined
            // slot's lanes; a fully dead group is dropped from the grid.
            let live_count = dead.iter().filter(|d| d.is_none()).count();
            let live_groups: Vec<(usize, u64)> = (0..layout.groups())
                .filter_map(|g| {
                    let mut mask = 0u64;
                    for lane in 0..layout.group_width(g) {
                        if dead[layout.group_slot(g) + lane].is_none() {
                            mask |= 1 << lane;
                        }
                    }
                    (mask != 0).then_some((g, mask))
                })
                .collect();
            if live_groups.is_empty() {
                continue;
            }
            if let Some(m) = metrics {
                m.add(phases::ENGINE_LANES_GROUPS, live_groups.len() as u64);
            }
            // Per-(slot, gate) grid size — the unit the activity counters
            // are denominated in, independent of the lane width.
            let grid_tasks = live_count * gate_nodes.len();
            // Per-group delay slices for this level — one slice per
            // schedule segment plus the boundaries selecting among them:
            // borrowed from the artifact's cached tables when the batch
            // qualified, from the freshly computed buffers otherwise.
            // Bit-identical either way (`factor_lanes` is documented and
            // tested bit-identical to scalar `factor`).
            let level_slices: Vec<GroupDelays<'_>> = match &group_tables {
                Some(tables) => group_assigns
                    .iter()
                    .zip(tables)
                    .map(|(a, ts)| GroupDelays {
                        segs: ts.iter().map(|t| t.per_level[level].as_slice()).collect(),
                        boundaries: a.boundaries(),
                    })
                    .collect(),
                None => group_assigns
                    .iter()
                    .zip(&level_delays)
                    .map(|(a, bufs)| GroupDelays {
                        segs: bufs.iter().map(Vec::as_slice).collect(),
                        boundaries: a.boundaries(),
                    })
                    .collect(),
            };
            let ctx = LevelCtx {
                gate_nodes,
                gate_offsets,
                level_delays: &level_slices,
                group_of_slot: &group_of_slot,
                live_groups: &live_groups,
                layout,
            };
            // Verdicts (grid-task index, fault) collected by workers;
            // applied deterministically at the barrier below.
            let verdicts: Mutex<Vec<(usize, Dead)>> = Mutex::new(Vec::new());
            let merge_span = metrics.map(|m| m.span(phases::ENGINE_WAVEFORM_MERGE));
            if grid_tasks > 0 {
                // Injected forced overflow: an armed run installs a hook
                // that maps the written cell back to its global slot and
                // asks the plan; a firing cell reports CapacityOverflow
                // exactly like a real capacity miss, feeding the same
                // quarantine-and-retry loop.
                let overflow_hook = injector.is_armed().then_some(move |idx: usize| {
                    injector.fires(
                        InjectionSite::ArenaOverflow,
                        chunk[layout.slot_of(idx)] as u64,
                        u64::from(round),
                    )
                });
                // In-place epoch writer: tasks write this level's cells
                // directly into the arena (claim-guarded, cell-disjoint)
                // while reading only previous levels' cells — no per-task
                // waveform allocation, no serial write-back.
                let writer = arena.level_writer_hooked(
                    overflow_hook
                        .as_ref()
                        .map(|h| h as &avfs_waveform::OverflowHook),
                );
                // Activity gating, lane-packed: a gate whose fanin cells
                // are all quiet (zero transitions) has a constant output.
                // Per (lane group, gate) the quiet lanes are found with
                // word-wide quiet-bit reads, the constant outputs computed
                // with one bit-parallel `eval_lanes` word op, and written
                // back under a single masked run claim — the coordinator
                // resolves whole lane words at once and only lanes with
                // active fanin survive into the scheduled task list. The
                // scan claims runs in (group, gate) order on one thread,
                // so the schedule stays deterministic; retry rounds
                // re-derive quiet bits from the surviving lanes' freshly
                // written cells.
                let active: Option<(Vec<(usize, u64)>, u64)> = options.activity_gating.then(|| {
                    let mut active: Vec<(usize, u64)> = Vec::new();
                    let mut quiet_lanes = 0u64;
                    let mut fan_words: Vec<u64> = Vec::new();
                    for (gi, &(g, live_mask)) in live_groups.iter().enumerate() {
                        let w = layout.group_width(g);
                        for (pos, &node_id) in gate_nodes.iter().enumerate() {
                            let node = self.netlist.node(node_id);
                            let mut quiet = live_mask;
                            for f in node.fanin() {
                                if quiet == 0 {
                                    break;
                                }
                                quiet &= writer.quiet_run(layout.run_start(g, f.index()), w);
                            }
                            if quiet != 0 {
                                fan_words.clear();
                                fan_words.extend(node.fanin().iter().map(|f| {
                                    writer.initial_run(layout.run_start(g, f.index()), w)
                                }));
                                let cell = self.netlist.cell_of(node_id).expect("gate has a cell");
                                writer.write_constant_run(
                                    layout.run_start(g, node_id.index()),
                                    quiet,
                                    cell.eval_lanes(&fan_words),
                                );
                                quiet_lanes += u64::from(quiet.count_ones());
                            }
                            let rest = live_mask & !quiet;
                            if rest != 0 {
                                active.push((gi * gate_nodes.len() + pos, rest));
                            }
                        }
                    }
                    (active, quiet_lanes)
                });
                if let (Some(m), Some((active, quiet_lanes))) = (metrics, active.as_ref()) {
                    m.add(phases::ENGINE_GATES_SKIPPED_QUIET, *quiet_lanes);
                    let active_lanes: u64 = active
                        .iter()
                        .map(|&(_, mask)| u64::from(mask.count_ones()))
                        .sum();
                    m.record(
                        phases::ENGINE_LEVEL_ACTIVITY,
                        active_lanes * 100 / grid_tasks as u64,
                    );
                }
                // The scheduled task list: (lane-group grid index, eval
                // mask) pairs — the whole grid when ungated, the surviving
                // active lanes when gated.
                let gates = gate_nodes.len();
                let scheduled: Vec<(usize, u64)> = match active {
                    Some((active, _)) => active,
                    None => live_groups
                        .iter()
                        .enumerate()
                        .flat_map(|(gi, &(_, mask))| {
                            (0..gates).map(move |pos| (gi * gates + pos, mask))
                        })
                        .collect(),
                };
                let tasks = scheduled.len();
                if tasks > 0 {
                    let workers = pool.map_or(1, WorkerPool::size).clamp(1, tasks);
                    let chunk_tasks =
                        (tasks / (workers * STEAL_GRABS_PER_WORKER)).clamp(1, MAX_STEAL_CHUNK);
                    let cursor = AtomicUsize::new(0);
                    let ctx_ref = &ctx;
                    let writer_ref = &writer;
                    let scheduled_ref = &scheduled;
                    // One worker's share of the level: steal task chunks
                    // off the shared cursor until it runs dry. A task is
                    // one (lane group, gate) pair; its eval mask names the
                    // lanes to run, each evaluated under its own
                    // catch_unwind so one lane's panic or overflow never
                    // takes down the group's other slots.
                    let job = |w: usize| {
                        let mut scratch = GateScratch::new();
                        let mut inputs: Vec<WaveformView<'_>> = Vec::new();
                        let mut local_verdicts: Vec<(usize, Dead)> = Vec::new();
                        let mut executed = 0u64;
                        let mut grabs = 0u64;
                        loop {
                            let t0 = cursor.fetch_add(chunk_tasks, Ordering::Relaxed);
                            if t0 >= tasks {
                                break;
                            }
                            grabs += 1;
                            let t1 = (t0 + chunk_tasks).min(tasks);
                            for &(gt, mask) in &scheduled_ref[t0..t1] {
                                let gi = gt / ctx_ref.gate_nodes.len();
                                let pos = gt % ctx_ref.gate_nodes.len();
                                let (g, _) = ctx_ref.live_groups[gi];
                                let mut rem = mask;
                                while rem != 0 {
                                    let lane = rem.trailing_zeros() as usize;
                                    rem &= rem - 1;
                                    let si = ctx_ref.layout.group_slot(g) + lane;
                                    executed += 1;
                                    // Verdicts carry the slot-major grid
                                    // index (slot × gates + gate) so
                                    // barrier reconciliation is independent
                                    // of gating, lane width and stealing.
                                    let grid = si * ctx_ref.gate_nodes.len() + pos;
                                    let r = catch_unwind(AssertUnwindSafe(|| {
                                        // Injected kernel panic: every lane
                                        // task of the affected (slot,
                                        // round) panics, so the
                                        // first-in-grid-order verdict is
                                        // schedule-independent.
                                        if injector.is_armed()
                                            && injector.fires(
                                                InjectionSite::KernelPanic,
                                                chunk[si] as u64,
                                                u64::from(round),
                                            )
                                        {
                                            panic!("injected kernel panic (slot {})", chunk[si]);
                                        }
                                        self.eval_lane(
                                            si,
                                            pos,
                                            ctx_ref,
                                            writer_ref,
                                            &mut scratch,
                                            &mut inputs,
                                        )
                                    }));
                                    inputs.clear();
                                    match r {
                                        Ok(Ok(())) => {}
                                        Ok(Err(_)) => {
                                            local_verdicts.push((grid, Dead::Overflow));
                                        }
                                        Err(_) => local_verdicts.push((grid, Dead::Panic)),
                                    }
                                }
                            }
                        }
                        if !local_verdicts.is_empty() {
                            verdicts
                                .lock()
                                .expect("verdict lock survives (worker panics are contained)")
                                .extend(local_verdicts);
                        }
                        tallies.tasks[w].fetch_add(executed, Ordering::Relaxed);
                        tallies.steals[w].fetch_add(grabs.saturating_sub(1), Ordering::Relaxed);
                    };
                    match pool {
                        Some(p) => {
                            let idle = p.run(&job, injector, metrics.is_some());
                            if let Some(m) = metrics {
                                m.record_duration(phases::ENGINE_POOL_IDLE, idle);
                            }
                        }
                        None => job(0),
                    }
                }
            }
            if let Some(span) = merge_span {
                span.finish();
            }
            // The barrier: primary-output passthroughs, then fault
            // verdicts. Sorting by task index makes reconciliation
            // independent of which worker stole which chunk — first fault
            // in task order wins, exactly as a serial sweep would decide.
            time_option(metrics, phases::ENGINE_BARRIER, || {
                for &(g, mask) in &live_groups {
                    let mut rem = mask;
                    while rem != 0 {
                        let lane = rem.trailing_zeros() as usize;
                        rem &= rem - 1;
                        let si = layout.group_slot(g) + lane;
                        for &out in output_nodes {
                            let from = self.netlist.node(out).fanin()[0].index();
                            arena.copy_cell(layout.index(si, from), layout.index(si, out.index()));
                        }
                    }
                }
                let mut pending = verdicts
                    .into_inner()
                    .expect("verdict lock survives (worker panics are contained)");
                pending.sort_unstable_by_key(|&(t, _)| t);
                for (t, verdict) in pending {
                    let si = t / gate_nodes.len();
                    if dead[si].is_none() {
                        dead[si] = Some(verdict);
                    }
                }
            });
            // Level-barrier progress bump (the watchdog's liveness signal)
            // and the cooperative deadline check: a level runs to its
            // barrier, then every still-live slot of an expired batch is
            // abandoned at once.
            if let Some(wd) = watchdog {
                wd.progress();
            }
            if deadline_at.is_some_and(|t| Instant::now() >= t) {
                for d in dead.iter_mut() {
                    if d.is_none() {
                        *d = Some(Dead::Deadline);
                    }
                }
                break;
            }
        }
        diag.kernel_fallbacks += fallbacks;
        if variation_draws > 0 {
            if let Some(m) = metrics {
                m.add(phases::ENGINE_VARIATION_DRAWS, variation_draws);
            }
        }

        // Waveform analysis (Fig. 2, step 4) for surviving slots;
        // quarantine verdicts for the rest.
        let analysis_span = metrics.map(|m| m.span(phases::ENGINE_ANALYSIS));
        for (si, &slot) in chunk.iter().enumerate() {
            let spec = SlotSpec {
                pattern: work[slot].pattern,
                voltage: work[slot].voltage,
            };
            match dead[si] {
                Some(Dead::Overflow) => overflowed.push(slot),
                Some(Dead::Panic) => {
                    results[slot] = Some(SlotResult::failed(spec, SlotStatus::Panicked));
                    diag.panicked_slots.push(slot);
                    diag.failed_slots.push(slot);
                }
                Some(Dead::Deadline) => {
                    results[slot] = Some(SlotResult::failed(spec, SlotStatus::DeadlineExceeded));
                    diag.deadline_aborts += 1;
                    diag.budget_tripped = Some(TrippedBudget::Deadline);
                    diag.failed_slots.push(slot);
                }
                None => {
                    let mut responses = Vec::with_capacity(self.netlist.outputs().len());
                    let mut latest: Option<f64> = None;
                    for &po in self.netlist.outputs() {
                        let stats = WaveformStats::of(&arena.view(layout.index(si, po.index())));
                        responses.push(stats.final_value);
                        latest = match (latest, stats.latest_transition) {
                            (Some(a), Some(b)) => Some(a.max(b)),
                            (a, b) => a.or(b),
                        };
                    }
                    let activity = SwitchingActivity::of(
                        (0..nodes).map(|net| arena.view(layout.index(si, net))),
                    );
                    if let Some(m) = metrics {
                        // The activity headroom gating exploits: quiet
                        // cells observed over the whole window (recorded
                        // whether or not gating is on).
                        m.add(
                            phases::ENGINE_QUIET_CELLS,
                            (activity.nets - activity.active_nets) as u64,
                        );
                    }
                    results[slot] = Some(SlotResult {
                        spec,
                        status: SlotStatus::Completed { retries: round },
                        responses,
                        latest_output_transition_ps: latest,
                        activity,
                        waveforms: options.keep_waveforms.then(|| {
                            (0..nodes)
                                .map(|net| arena.to_waveform(layout.index(si, net)))
                                .collect()
                        }),
                    });
                }
            }
        }
        if let Some(span) = analysis_span {
            span.finish();
        }
        Ok(())
    }

    /// Evaluates one lane of a (lane group, gate) task — gate
    /// `gate_nodes[pos]` for batch slot `si` — the body of a device
    /// thread. The modified delays were precomputed per (level, voltage
    /// group) by the initialization phase. Inputs are read through the
    /// epoch `writer` from previous levels' cells and the result is
    /// written in place into this level's output cell; `inputs` is
    /// reusable scratch whose borrows of the writer end when the function
    /// returns.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityOverflow`] when the gate's output history would
    /// outgrow the arena's per-net capacity — the quarantine signal (the
    /// output cell is left untouched and unclaimed).
    fn eval_lane<'a>(
        &self,
        si: usize,
        pos: usize,
        ctx: &LevelCtx<'_>,
        writer: &'a LevelWriter<'_>,
        scratch: &mut GateScratch,
        inputs: &mut Vec<WaveformView<'a>>,
    ) -> Result<(), CapacityOverflow> {
        let node_id = ctx.gate_nodes[pos];
        let node = self.netlist.node(node_id);
        let cell = self.netlist.cell_of(node_id).expect("gate has a cell");
        let npins = node.fanin().len();
        let off = ctx.gate_offsets[pos];
        let gd = &ctx.level_delays[ctx.group_of_slot[si]];
        inputs.clear();
        inputs.extend(
            node.fanin()
                .iter()
                .map(|f| writer.view(ctx.layout.index(si, f.index()))),
        );
        let initial = if gd.boundaries.is_empty() {
            // Static timeline: the exact single-segment evaluator every
            // non-scheduled slot has always used.
            let delays = &gd.segs[0][off..off + npins];
            evaluate_gate_bounded_raw(
                inputs,
                delays,
                |vals| cell.eval(vals),
                scratch,
                writer.capacity(),
            )?
        } else {
            // Scheduled timeline: each input event is charged the delay
            // of the segment its cause time falls in.
            avfs_waveform::evaluate_gate_bounded_raw_segmented(
                inputs,
                gd.boundaries,
                |seg, pin| gd.segs[seg][off + pin],
                |vals| cell.eval(vals),
                scratch,
                writer.capacity(),
            )?
        };
        writer.write(
            ctx.layout.index(si, node_id.index()),
            initial,
            scratch.scheduled(),
        )
    }

    /// Builds the fully-scaled per-level delay table for one uniform
    /// normalized supply with the scalar kernel. `avfs_delay` documents
    /// (and tests) `factor_lanes` as bit-identical to per-lane `factor`,
    /// so a table built here is bit-for-bit the buffer the lane-batched
    /// online path would produce for the same voltage group — the
    /// identity [`CompiledNetlist::cached_delay_table`] rests on.
    fn build_delay_table(
        &self,
        v_norm: f64,
        metrics: Option<&Metrics>,
    ) -> Result<DelayTable, SimError> {
        let depth = self.levels.depth();
        let mut evals = 0u64;
        let mut per_level: Vec<Vec<PinDelays>> = Vec::with_capacity(depth);
        let mut fallbacks_per_level: Vec<u64> = Vec::with_capacity(depth);
        for level in 0..depth {
            let mut buf = Vec::new();
            let mut fb = 0u64;
            // Level 0 is the stimuli level: no gates, empty buffer.
            if level > 0 {
                for &node_id in self.levels.level(level) {
                    if let NodeKind::Gate(cell_id) = self.netlist.node(node_id).kind() {
                        let nominal = self.annotation.node_delays(node_id);
                        let p = NormalizedPoint {
                            v: v_norm,
                            c: self.c_norm[node_id.index()],
                        };
                        for (pin, d) in nominal.iter().enumerate() {
                            let f_rise = self.model.factor(
                                cell_id,
                                pin,
                                avfs_netlist::library::Polarity::Rise,
                                p,
                            )?;
                            let f_fall = self.model.factor(
                                cell_id,
                                pin,
                                avfs_netlist::library::Polarity::Fall,
                                p,
                            )?;
                            evals += 2;
                            buf.push(PinDelays {
                                rise: scale_or_fallback(d.rise, f_rise, &mut fb),
                                fall: scale_or_fallback(d.fall, f_fall, &mut fb),
                            });
                        }
                    }
                }
            }
            per_level.push(buf);
            fallbacks_per_level.push(fb);
        }
        if let Some(m) = metrics {
            m.add(phases::ENGINE_KERNEL_EVALS, evals);
            m.add(phases::ENGINE_DELAY_TABLE_BUILDS, 1);
        }
        Ok(DelayTable {
            per_level,
            fallbacks_per_level,
        })
    }

    /// The artifact's cached fully-scaled delay table for one uniform
    /// normalized supply (keyed by the supply's bit pattern), built
    /// lazily on first use. Returns `None` — and caches nothing — when
    /// the model errors or panics on this voltage, or when the cache
    /// mutex is poisoned: the caller then takes the online per-launch
    /// path, which reproduces the uncached error/panic semantics
    /// exactly (and is why a model panic can never poison this mutex —
    /// the build runs outside the lock).
    pub(crate) fn cached_delay_table(
        &self,
        v_norm: f64,
        metrics: Option<&Metrics>,
    ) -> Option<Arc<DelayTable>> {
        let key = v_norm.to_bits();
        if let Some(hit) = self.delay_tables.lock().ok()?.get(&key) {
            return Some(Arc::clone(hit));
        }
        let table = catch_unwind(AssertUnwindSafe(|| self.build_delay_table(v_norm, metrics)))
            .ok()?
            .ok()?;
        let table = Arc::new(table);
        if let Ok(mut cache) = self.delay_tables.lock() {
            cache.insert(key, Arc::clone(&table));
        }
        Some(table)
    }
}

/// A fully-scaled per-level delay table for one uniform normalized
/// supply — the entire delay-kernel initialization phase of a launch,
/// materialized. Cached per voltage on the [`CompiledNetlist`]
/// (bounded LRU) so repeated launches of a compiled artifact skip the
/// kernel entirely when the batch qualifies: uniform assignments only,
/// no armed fault plan. `per_level[level]` is laid out exactly like the
/// online path's per-group buffer — gate-major in level order, one
/// [`PinDelays`] per fanin pin, addressed through the level plan's
/// `gate_offsets`.
#[derive(Debug)]
pub(crate) struct DelayTable {
    pub(crate) per_level: Vec<Vec<PinDelays>>,
    /// Non-finite scaled delays that fell back to nominal while the
    /// table was built, per level — replayed into
    /// [`RunDiagnostics::kernel_fallbacks`] for every launch the table
    /// serves, so cached and online runs report identical diagnostics.
    pub(crate) fallbacks_per_level: Vec<u64>,
}

/// Guards the online delay calculation: a non-finite scaled delay falls
/// back to the nominal delay and is counted in
/// [`RunDiagnostics::kernel_fallbacks`]. Crate-visible because the STA
/// glue (`crate::sta`) re-derives per-node scaled delays with the exact
/// same guard so oracle and kernel share one delay matrix bitwise.
pub(crate) fn scale_or_fallback(nominal: f64, factor: f64, fallbacks: &mut u64) -> f64 {
    let scaled = nominal * factor;
    if scaled.is_finite() {
        scaled.max(0.0)
    } else {
        *fallbacks += 1;
        nominal.max(0.0)
    }
}

/// Applies a Monte Carlo process-variation derate to an already-scaled
/// delay. The nominal die passes `derate == 1.0`, and `d * 1.0 == d`
/// bit-exactly for every value `scale_or_fallback` can return, so a
/// variation-free group's delays are untouched. Both operands are finite
/// and non-negative (the derate is `(1 + ε).max(0)` with bounded `ε`),
/// so the product needs no fallback guard of its own.
#[inline]
fn derate_delay(scaled: f64, derate: f64) -> f64 {
    (scaled * derate).max(0.0)
}

/// Why a slot died within a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dead {
    /// A gate's output outgrew the bounded arena — retry at larger
    /// capacity.
    Overflow,
    /// The slot's evaluation panicked — contained, no retry.
    Panic,
    /// The run's wall-clock deadline expired at a level barrier — the
    /// slot is abandoned, no retry.
    Deadline,
}

/// Per-worker execution tallies over a whole run (tasks executed and
/// work-stealing chunk grabs beyond the first per level), folded into the
/// profile at run end. Atomics make them writable from the pool without
/// synchronizing the level schedule.
struct PoolTallies {
    tasks: Vec<AtomicU64>,
    steals: Vec<AtomicU64>,
}

impl PoolTallies {
    fn new(workers: usize) -> PoolTallies {
        PoolTallies {
            tasks: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            steals: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// One slot's resolved work: which pattern to replay under which voltage
/// assignment.
#[derive(Debug, Clone)]
pub(crate) struct SlotWork {
    pub(crate) pattern: usize,
    pub(crate) assign: VoltageAssign,
    /// Representative voltage reported in the result spec (the global
    /// supply for uniform slots, the domain-0 supply for island slots,
    /// the segment-0 supply for scheduled slots).
    pub(crate) voltage: f64,
    /// Monte Carlo process-variation sample of this slot (`None` = the
    /// nominal die). Part of the voltage-group key: two slots share a
    /// delay-initialization group only when both their voltage
    /// assignment *and* their die agree.
    pub(crate) variation: Option<VariationSample>,
}

/// One Monte Carlo die: a variation configuration plus the sample index
/// that addresses its hashed draws (see
/// [`avfs_delay::variation::derate`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct VariationSample {
    pub(crate) config: avfs_delay::VariationConfig,
    pub(crate) sample: u32,
}

/// Normalized voltage assignment of one slot.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum VoltageAssign {
    /// One global supply (normalized).
    Uniform(f64),
    /// Per-node normalized voltage (voltage islands), expanded from the
    /// domain map once per slot.
    PerNode(Arc<Vec<f64>>),
    /// A piecewise operating-point schedule (always ≥ 2 segments: the
    /// scenario layer lowers a single-segment schedule to `Uniform`, so
    /// the constant-schedule ≡ static identity holds by construction).
    Scheduled(Arc<NormalizedSchedule>),
}

/// A slot's normalized piecewise supply schedule. Segment 0 covers the
/// launch instant; an input event at time `t` belongs to segment
/// `boundaries.partition_point(|b| *b <= t)` (an event exactly at a
/// boundary sees the *later* segment's supply).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct NormalizedSchedule {
    /// Per-segment normalized supply (clamped into the characterized
    /// domain, like every other assignment).
    pub(crate) v_norms: Vec<f64>,
    /// Start times (ps) of segments `1..` — strictly increasing; one
    /// fewer entry than `v_norms`.
    pub(crate) boundaries: Vec<f64>,
}

impl VoltageAssign {
    #[inline]
    fn v_norm_at(&self, node: usize, segment: usize) -> f64 {
        match self {
            VoltageAssign::Uniform(v) => *v,
            VoltageAssign::PerNode(per_node) => per_node[node],
            VoltageAssign::Scheduled(s) => s.v_norms[segment],
        }
    }

    /// How many delay-table segments this assignment needs (1 for every
    /// non-scheduled assignment).
    #[inline]
    pub(crate) fn segments(&self) -> usize {
        match self {
            VoltageAssign::Scheduled(s) => s.v_norms.len(),
            _ => 1,
        }
    }

    /// The segment boundaries (empty = static timeline).
    #[inline]
    fn boundaries(&self) -> &[f64] {
        match self {
            VoltageAssign::Scheduled(s) => &s.boundaries,
            _ => &[],
        }
    }
}

/// Shared per-level context handed to the device threads. The task grid
/// is `live_groups × gate_nodes`: scheduled entry `(gt, mask)` evaluates
/// gate `gate_nodes[gt % gates]` for every lane set in `mask` of lane
/// group `live_groups[gt / gates]`.
struct LevelCtx<'l> {
    /// The level's gate nodes (outputs are barrier passthroughs, not
    /// tasks).
    gate_nodes: &'l [NodeId],
    /// `level_delays[group].segs[segment][gate_offsets[pos] + pin]` —
    /// modified pin delays per voltage group and schedule segment
    /// (borrowed from the artifact's cached per-voltage tables or from
    /// the batch's freshly computed buffers). Static groups have exactly
    /// one segment and empty boundaries.
    level_delays: &'l [GroupDelays<'l>],
    gate_offsets: &'l [usize],
    group_of_slot: &'l [usize],
    /// Lane groups with at least one live lane at the start of the level,
    /// as `(group index, live-lane mask)`.
    live_groups: &'l [(usize, u64)],
    /// The batch's lane-major arena layout.
    layout: LaneLayout,
}

/// One voltage group's delay view of a level: one pin-delay slice per
/// schedule segment plus the segment boundaries that select among them.
/// `segs.len() == 1` with empty `boundaries` is the static case, which
/// [`CompiledNetlist::eval_lane`] dispatches to the exact single-segment
/// evaluator the static engine has always used.
struct GroupDelays<'l> {
    segs: Vec<&'l [PinDelays]>,
    boundaries: &'l [f64],
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slots::{at_voltage, cross};
    use avfs_delay::{ParameterSpace, StaticModel};
    use avfs_netlist::{CellLibrary, NetlistBuilder};

    fn chain_netlist() -> Arc<Netlist> {
        let lib = CellLibrary::nangate15_like();
        let mut b = NetlistBuilder::new("chain", &lib);
        let a = b.add_input("a").unwrap();
        let g1 = b.add_gate("g1", "INV_X1", &[a]).unwrap();
        let g2 = b.add_gate("g2", "INV_X1", &[g1]).unwrap();
        b.add_output("y", g2).unwrap();
        Arc::new(b.finish().unwrap())
    }

    fn static_engine(netlist: &Arc<Netlist>, rise: f64, fall: f64) -> Engine {
        let mut ann = TimingAnnotation::zero(netlist);
        for (id, node) in netlist.iter() {
            if matches!(node.kind(), NodeKind::Gate(_)) {
                for pin in 0..node.fanin().len() {
                    ann.node_delays_mut(id)[pin] = PinDelays { rise, fall };
                }
            }
        }
        Engine::new(
            Arc::clone(netlist),
            Arc::new(ann),
            Arc::new(StaticModel::new(ParameterSpace::paper())),
        )
        .unwrap()
    }

    fn one_pattern() -> PatternSet {
        use avfs_atpg::pattern::{Pattern, PatternPair};
        std::iter::once(
            PatternPair::new(Pattern::from_bits([false]), Pattern::from_bits([true])).unwrap(),
        )
        .collect()
    }

    #[test]
    fn chain_propagates_with_static_delays() {
        let n = chain_netlist();
        let engine = static_engine(&n, 10.0, 10.0);
        let opts = SimOptions {
            keep_waveforms: true,
            threads: 1,
            ..SimOptions::default()
        };
        let run = engine
            .run(&one_pattern(), &at_voltage(1, 0.8), &opts)
            .unwrap();
        assert_eq!(run.slots.len(), 1);
        let slot = &run.slots[0];
        // Input rises at 0; y (after two inverters) rises at 20.
        assert_eq!(slot.latest_output_transition_ps, Some(20.0));
        assert_eq!(slot.responses, vec![true]);
        let wfs = slot.waveforms.as_ref().unwrap();
        let g1 = n.find("g1").unwrap();
        assert_eq!(wfs[g1.index()].transitions(), &[10.0]);
        assert!(!wfs[g1.index()].final_value());
        assert_eq!(run.node_evaluations, 4);
        assert!(run.meps() >= 0.0);
    }

    #[test]
    fn voltage_slots_share_pattern() {
        let n = chain_netlist();
        let engine = static_engine(&n, 5.0, 7.0);
        let run = engine
            .run(
                &one_pattern(),
                &cross(1, &[0.6, 0.8, 1.0]),
                &SimOptions {
                    threads: 1,
                    ..SimOptions::default()
                },
            )
            .unwrap();
        // Static model: identical timing regardless of voltage.
        assert_eq!(run.slots.len(), 3);
        let t0 = run.slots[0].latest_output_transition_ps;
        assert!(run
            .slots
            .iter()
            .all(|s| s.latest_output_transition_ps == t0));
        assert_eq!(run.voltages(), vec![0.6, 0.8, 1.0]);
    }

    #[test]
    fn batching_is_transparent() {
        // Force a one-slot batch via a tiny waveform budget and compare
        // against an unbatched run.
        let n = chain_netlist();
        let engine = static_engine(&n, 3.0, 4.0);
        let patterns = one_pattern();
        let slots = cross(1, &[0.8, 0.9, 1.0, 1.1]);
        let big = engine
            .run(
                &patterns,
                &slots,
                &SimOptions {
                    threads: 1,
                    ..SimOptions::default()
                },
            )
            .unwrap();
        let tiny = engine
            .run(
                &patterns,
                &slots,
                &SimOptions {
                    threads: 1,
                    waveform_budget: 1, // → batch of one slot
                    ..SimOptions::default()
                },
            )
            .unwrap();
        assert_eq!(big.slots.len(), tiny.slots.len());
        for (a, b) in big.slots.iter().zip(&tiny.slots) {
            assert_eq!(a.responses, b.responses);
            assert_eq!(a.latest_output_transition_ps, b.latest_output_transition_ps);
            assert_eq!(a.activity, b.activity);
        }
    }

    /// Determinism matrix: the hard invariant of the pooled engine is that
    /// results are bit-for-bit identical to the single-threaded path
    /// across worker counts, profiling on/off, and the fault paths
    /// (overflow quarantine-and-retry, panic containment).
    #[test]
    fn multithreaded_matches_single_threaded() {
        let lib = CellLibrary::nangate15_like();
        let cfg = avfs_circuits::GeneratorConfig::small();
        let rnd = Arc::new(avfs_circuits::random_netlist("rnd", &cfg, &lib, 11).unwrap());
        let rnd_engine = static_engine(&rnd, 8.0, 9.5);
        let rnd_patterns = PatternSet::lfsr(rnd.inputs().len(), 4, 5);
        let glitch = glitch_netlist();
        let glitch_engine = static_engine(&glitch, 10.0, 10.0);
        let chain = chain_netlist();
        let panicky_engine = Engine::new(
            Arc::clone(&chain),
            Arc::new(
                static_engine(&chain, 10.0, 10.0)
                    .annotation()
                    .as_ref()
                    .clone(),
            ),
            Arc::new(PanickyModel {
                inner: StaticModel::new(ParameterSpace::paper()),
            }),
        )
        .unwrap();
        type Scenario<'a> = (&'a str, Box<dyn Fn(SimOptions) -> SimRun + 'a>);
        let scenarios: Vec<Scenario<'_>> = vec![
            (
                "normal",
                Box::new(|opts| {
                    rnd_engine
                        .run(
                            &rnd_patterns,
                            &cross(4, &[0.8, 1.0]),
                            &SimOptions {
                                keep_waveforms: true,
                                ..opts
                            },
                        )
                        .unwrap()
                }),
            ),
            (
                "overflow-retry",
                Box::new(|opts| {
                    glitch_engine
                        .run(
                            &one_pattern(),
                            &cross(1, &[0.7, 0.8, 0.9, 1.0]),
                            &SimOptions {
                                keep_waveforms: true,
                                arena_capacity: 1,
                                ..opts
                            },
                        )
                        .unwrap()
                }),
            ),
            (
                "panicking",
                Box::new(|opts| {
                    // 1.1 V normalizes to the poisoned operating point.
                    panicky_engine
                        .run(&one_pattern(), &cross(1, &[0.8, 1.1, 0.9]), &opts)
                        .unwrap()
                }),
            ),
        ];
        for (name, run) in &scenarios {
            // The reference is the plainest possible path: single thread,
            // unprofiled, activity gating off, scalar (lane width 1)
            // slot-major layout.
            let reference = run(SimOptions {
                threads: 1,
                profiling: false,
                activity_gating: false,
                lanes: 1,
                ..SimOptions::default()
            });
            if *name == "overflow-retry" {
                assert_eq!(reference.diagnostics.slot_retries, 4, "scenario {name}");
            }
            for injection in ["unarmed", "armed-empty"] {
                // The profiled-identity principle extended to injection:
                // an armed-but-empty fault plan (every rate zero) must be
                // bit-for-bit identical to no plan at all.
                let fault_plan =
                    (injection == "armed-empty").then(|| Arc::new(FaultPlan::empty(0xC0FFEE)));
                for activity_gating in [false, true] {
                    for lanes in [1, 4, 8] {
                        for threads in [1, 2, 4, 8] {
                            for profiling in [false, true] {
                                let got = run(SimOptions {
                                    threads,
                                    profiling,
                                    activity_gating,
                                    lanes,
                                    fault_plan: fault_plan.clone(),
                                    ..SimOptions::default()
                                });
                                let case = format!(
                                    "{name}, threads={threads}, lanes={lanes}, \
                                     profiling={profiling}, gating={activity_gating}, \
                                     injection={injection}"
                                );
                                assert_eq!(got.slots, reference.slots, "{case}");
                                assert_eq!(got.diagnostics, reference.diagnostics, "{case}");
                                assert_eq!(
                                    got.node_evaluations, reference.node_evaluations,
                                    "{case}"
                                );
                                assert_eq!(got.profile.is_some(), profiling, "{case}");
                            }
                        }
                    }
                }
                if let Some(plan) = &fault_plan {
                    assert_eq!(plan.total_fired(), 0, "an empty plan never fires");
                }
            }
        }
    }

    #[test]
    fn quiet_stimuli_resolve_without_pool_tasks() {
        // launch == capture: every stimulus is a constant, so every gate
        // of every level is quiet and the whole run resolves through the
        // coordinator's constant fast path — zero pool tasks.
        use avfs_atpg::pattern::PatternPair;
        let lib = CellLibrary::nangate15_like();
        let cfg = avfs_circuits::GeneratorConfig::small();
        let n = Arc::new(avfs_circuits::random_netlist("rnd", &cfg, &lib, 3).unwrap());
        let engine = static_engine(&n, 8.0, 9.0);
        let p = PatternSet::random(n.inputs().len(), 1, 0xBEEF).pairs()[0]
            .launch
            .clone();
        let patterns: PatternSet =
            std::iter::once(PatternPair::new(p.clone(), p).unwrap()).collect();
        let opts = SimOptions {
            threads: 1,
            profiling: true,
            keep_waveforms: true,
            ..SimOptions::default()
        };
        let run = engine.run(&patterns, &at_voltage(1, 0.8), &opts).unwrap();
        assert!(run.is_complete());
        let gates = n
            .iter()
            .filter(|(_, node)| matches!(node.kind(), NodeKind::Gate(_)))
            .count() as u64;
        let profile = run.profile.as_ref().unwrap();
        assert_eq!(
            profile.counter(phases::ENGINE_GATES_SKIPPED_QUIET),
            Some(gates),
            "every gate resolved by the quiet fast path"
        );
        assert_eq!(
            profile.counter(phases::ENGINE_QUIET_CELLS),
            Some(n.num_nodes() as u64),
            "every cell stayed quiet"
        );
        // Nothing toggles: every retained waveform is constant and the
        // responses are the combinational function of the launch values.
        assert_eq!(run.slots[0].activity.total_transitions, 0);
        for wf in run.slots[0].waveforms.as_ref().unwrap() {
            assert_eq!(wf.num_transitions(), 0);
        }
        // The ungated run agrees bit for bit and reports no skip counter.
        let ungated = engine
            .run(
                &patterns,
                &at_voltage(1, 0.8),
                &SimOptions {
                    activity_gating: false,
                    ..opts
                },
            )
            .unwrap();
        assert_eq!(run.slots, ungated.slots);
        assert_eq!(
            ungated
                .profile
                .as_ref()
                .unwrap()
                .counter(phases::ENGINE_GATES_SKIPPED_QUIET),
            None,
            "ungated runs record no skip counter"
        );
    }

    #[test]
    fn lane_width_validation() {
        let n = chain_netlist();
        let engine = static_engine(&n, 1.0, 1.0);
        let patterns = one_pattern();
        for lanes in [3usize, 5, 6, 128] {
            let err = engine
                .run(
                    &patterns,
                    &at_voltage(1, 0.8),
                    &SimOptions {
                        lanes,
                        threads: 1,
                        ..SimOptions::default()
                    },
                )
                .unwrap_err();
            assert_eq!(err, SimError::InvalidLanes { lanes });
        }
        // 0 resolves to the default width; every power of two ≤ 64 works.
        for lanes in [0usize, 1, 2, 64] {
            engine
                .run(
                    &patterns,
                    &at_voltage(1, 0.8),
                    &SimOptions {
                        lanes,
                        threads: 1,
                        ..SimOptions::default()
                    },
                )
                .unwrap();
        }
    }

    #[test]
    fn partial_tail_lane_groups_match_scalar() {
        // 5 slots at lane width 4 → one full group plus a 1-lane tail;
        // lane width 64 → a single partial group wider than the whole
        // batch. Both must be bit-identical to the scalar layout.
        let lib = CellLibrary::nangate15_like();
        let cfg = avfs_circuits::GeneratorConfig::small();
        let n = Arc::new(avfs_circuits::random_netlist("rnd", &cfg, &lib, 7).unwrap());
        let engine = static_engine(&n, 6.0, 7.0);
        let patterns = PatternSet::lfsr(n.inputs().len(), 5, 3);
        let slots: Vec<SlotSpec> = (0..5)
            .map(|p| SlotSpec {
                pattern: p,
                voltage: 0.8,
            })
            .collect();
        let opts = |lanes| SimOptions {
            threads: 1,
            lanes,
            keep_waveforms: true,
            ..SimOptions::default()
        };
        let reference = engine.run(&patterns, &slots, &opts(1)).unwrap();
        for lanes in [4, 64] {
            let got = engine.run(&patterns, &slots, &opts(lanes)).unwrap();
            assert_eq!(got.slots, reference.slots, "lanes={lanes}");
            assert_eq!(got.diagnostics, reference.diagnostics, "lanes={lanes}");
        }
    }

    #[test]
    fn quarantined_lane_masking_on_overflow_retry() {
        // A capacity-1 arena overflows the glitching slots of a lane
        // group while their constant-stimulus neighbours complete in
        // round 0; the retry rounds must mask the quarantined lanes out
        // of their groups' live masks (never re-evaluating the finished
        // lanes) and end bit-identical to the scalar path.
        use avfs_atpg::pattern::{Pattern, PatternPair};
        let n = glitch_netlist();
        let engine = static_engine(&n, 10.0, 10.0);
        let patterns: PatternSet = [
            // Glitches: the XOR of a rising input with its inverse.
            PatternPair::new(Pattern::from_bits([false]), Pattern::from_bits([true])).unwrap(),
            // Constant: nothing ever toggles.
            PatternPair::new(Pattern::from_bits([false]), Pattern::from_bits([false])).unwrap(),
        ]
        .into_iter()
        .collect();
        let slots: Vec<SlotSpec> = (0..6)
            .map(|i| SlotSpec {
                pattern: i % 2,
                voltage: 0.8,
            })
            .collect();
        let opts = |lanes| SimOptions {
            threads: 1,
            lanes,
            arena_capacity: 1,
            keep_waveforms: true,
            ..SimOptions::default()
        };
        let reference = engine.run(&patterns, &slots, &opts(1)).unwrap();
        assert!(
            reference.diagnostics.slot_retries > 0,
            "glitch slots must hit the quarantine-and-retry path"
        );
        for lanes in [4, 8] {
            let got = engine.run(&patterns, &slots, &opts(lanes)).unwrap();
            assert_eq!(got.slots, reference.slots, "lanes={lanes}");
            assert_eq!(got.diagnostics, reference.diagnostics, "lanes={lanes}");
        }
    }

    #[test]
    fn launch_time_offsets_all_transitions() {
        let n = chain_netlist();
        let engine = static_engine(&n, 10.0, 10.0);
        let patterns = one_pattern();
        let base = engine
            .run(
                &patterns,
                &at_voltage(1, 0.8),
                &SimOptions {
                    threads: 1,
                    launch_time_ps: 0.0,
                    ..SimOptions::default()
                },
            )
            .unwrap();
        let shifted = engine
            .run(
                &patterns,
                &at_voltage(1, 0.8),
                &SimOptions {
                    threads: 1,
                    launch_time_ps: 250.0,
                    ..SimOptions::default()
                },
            )
            .unwrap();
        let (t0, t1) = (
            base.slots[0].latest_output_transition_ps.unwrap(),
            shifted.slots[0].latest_output_transition_ps.unwrap(),
        );
        assert!((t1 - t0 - 250.0).abs() < 1e-9, "{t0} vs {t1}");
        assert_eq!(base.slots[0].responses, shifted.slots[0].responses);
    }

    #[test]
    fn mixed_island_vectors_group_correctly() {
        // Slots with different per-domain voltage vectors in ONE launch:
        // the per-(level, voltage-assignment) grouping must keep them
        // apart; results must match per-vector launches.
        let lib = CellLibrary::nangate15_like();
        let n = Arc::new(avfs_circuits::ripple_carry_adder(4, &lib).unwrap());
        // A voltage-sensitive analytic model so distinct vectors actually
        // produce distinct timing.
        let mut ann = TimingAnnotation::zero(&n);
        for (id, node) in n.iter() {
            if matches!(node.kind(), NodeKind::Gate(_)) {
                for pin in 0..node.fanin().len() {
                    ann.node_delays_mut(id)[pin] = PinDelays {
                        rise: 6.0,
                        fall: 7.0,
                    };
                }
            }
        }
        let engine = Engine::new(
            Arc::clone(&n),
            Arc::new(ann),
            Arc::new(avfs_delay::AlphaPowerModel::new(
                0.24,
                1.35,
                ParameterSpace::paper(),
            )),
        )
        .unwrap();
        let domains = crate::domains::VoltageDomains::by_output_cones(&n, 2);
        let patterns = PatternSet::lfsr(n.inputs().len(), 2, 8);
        let opts = SimOptions {
            threads: 1,
            ..SimOptions::default()
        };
        let mixed = vec![
            crate::domains::DomainSlotSpec {
                pattern: 0,
                voltages: vec![0.8, 0.8],
            },
            crate::domains::DomainSlotSpec {
                pattern: 1,
                voltages: vec![0.6, 1.0],
            },
            crate::domains::DomainSlotSpec {
                pattern: 0,
                voltages: vec![0.6, 1.0],
            },
        ];
        let run = engine
            .run_domains(&patterns, &domains, &mixed, &opts)
            .unwrap();
        assert_eq!(run.slots.len(), 3);
        for (spec, slot) in mixed.iter().zip(&run.slots) {
            let solo = engine
                .run_domains(&patterns, &domains, std::slice::from_ref(spec), &opts)
                .unwrap();
            assert_eq!(slot.responses, solo.slots[0].responses);
            assert_eq!(
                slot.latest_output_transition_ps,
                solo.slots[0].latest_output_transition_ps
            );
        }
    }

    #[test]
    fn input_validation() {
        let n = chain_netlist();
        let engine = static_engine(&n, 1.0, 1.0);
        let patterns = one_pattern();
        assert!(matches!(
            engine.run(&patterns, &[], &SimOptions::default()),
            Err(SimError::EmptySlots)
        ));
        assert!(matches!(
            engine.run(
                &patterns,
                &[SlotSpec {
                    pattern: 7,
                    voltage: 0.8
                }],
                &SimOptions::default()
            ),
            Err(SimError::BadPatternIndex {
                index: 7,
                available: 1
            })
        ));
        // Wrong-width pattern.
        use avfs_atpg::pattern::{Pattern, PatternPair};
        let wide: PatternSet =
            std::iter::once(PatternPair::new(Pattern::zeros(3), Pattern::zeros(3)).unwrap())
                .collect();
        assert!(matches!(
            engine.run(&wide, &at_voltage(1, 0.8), &SimOptions::default()),
            Err(SimError::PatternWidth {
                expected: 1,
                got: 3
            })
        ));
    }

    #[test]
    fn annotation_mismatch_rejected() {
        let n = chain_netlist();
        let other = {
            let lib = CellLibrary::nangate15_like();
            let mut b = NetlistBuilder::new("other", &lib);
            let a = b.add_input("a").unwrap();
            b.add_output("y", a).unwrap();
            Arc::new(b.finish().unwrap())
        };
        let ann = Arc::new(TimingAnnotation::zero(&other));
        let model = Arc::new(StaticModel::new(ParameterSpace::paper()));
        assert!(matches!(
            Engine::new(Arc::clone(&n), ann, model),
            Err(SimError::AnnotationMismatch)
        ));
    }

    /// A delay model that panics for operating points at the top of the
    /// normalized voltage range — the fault-injection vehicle for the
    /// panic-containment tests (distinct voltages form distinct kernel
    /// groups, so the panic hits exactly the marker slot).
    #[derive(Debug)]
    struct PanickyModel {
        inner: StaticModel,
    }

    impl avfs_delay::model::DelayModel for PanickyModel {
        fn factor(
            &self,
            cell: avfs_netlist::CellId,
            pin: usize,
            polarity: avfs_netlist::library::Polarity,
            p: NormalizedPoint,
        ) -> Result<f64, avfs_delay::DelayError> {
            assert!(p.v < 0.999, "injected fault: poisoned operating point");
            self.inner.factor(cell, pin, polarity, p)
        }
        fn name(&self) -> &str {
            "panicky"
        }
        fn space(&self) -> &ParameterSpace {
            self.inner.space()
        }
    }

    /// A delay model whose kernel output is garbage (non-finite factors):
    /// exercises the online-delay-calculation guard.
    #[derive(Debug)]
    struct BrokenKernelModel {
        space: ParameterSpace,
    }

    impl avfs_delay::model::DelayModel for BrokenKernelModel {
        fn factor(
            &self,
            _cell: avfs_netlist::CellId,
            _pin: usize,
            _polarity: avfs_netlist::library::Polarity,
            _p: NormalizedPoint,
        ) -> Result<f64, avfs_delay::DelayError> {
            Ok(f64::INFINITY)
        }
        fn name(&self) -> &str {
            "broken-kernel"
        }
        fn space(&self) -> &ParameterSpace {
            &self.space
        }
    }

    /// A glitching netlist: reconvergent XOR whose output pulses on every
    /// input transition (see `glitch_visible_in_activity`).
    fn glitch_netlist() -> Arc<Netlist> {
        let lib = CellLibrary::nangate15_like();
        let mut b = NetlistBuilder::new("glitch", &lib);
        let a = b.add_input("a").unwrap();
        let inv = b.add_gate("inv", "INV_X1", &[a]).unwrap();
        let x = b.add_gate("x", "XOR2_X1", &[a, inv]).unwrap();
        b.add_output("y", x).unwrap();
        Arc::new(b.finish().unwrap())
    }

    #[test]
    fn invalid_operating_points_rejected() {
        let n = chain_netlist();
        let engine = static_engine(&n, 1.0, 1.0);
        let patterns = one_pattern();
        for bad in [f64::NAN, f64::INFINITY, 0.0, -0.8] {
            let slots = [
                SlotSpec {
                    pattern: 0,
                    voltage: 0.8,
                },
                SlotSpec {
                    pattern: 0,
                    voltage: bad,
                },
            ];
            match engine.run(&patterns, &slots, &SimOptions::default()) {
                Err(SimError::InvalidOperatingPoint { slot: 1, voltage }) => {
                    assert!(voltage.is_nan() || voltage == bad);
                }
                other => panic!("expected InvalidOperatingPoint, got {other:?}"),
            }
        }
    }

    #[test]
    fn corrupt_annotation_rejected() {
        let n = chain_netlist();
        let model: Arc<dyn DelayModel> = Arc::new(StaticModel::new(ParameterSpace::paper()));
        // Non-finite load.
        let mut ann = TimingAnnotation::zero(&n);
        ann.set_load_ff(n.find("g1").unwrap(), f64::NAN);
        assert!(matches!(
            Engine::new(Arc::clone(&n), Arc::new(ann), Arc::clone(&model)),
            Err(SimError::InvalidLoad { node, .. }) if node == "g1"
        ));
        // Negative load.
        let mut ann = TimingAnnotation::zero(&n);
        ann.set_load_ff(n.find("g2").unwrap(), -3.0);
        assert!(matches!(
            Engine::new(Arc::clone(&n), Arc::new(ann), Arc::clone(&model)),
            Err(SimError::InvalidLoad { node, load }) if node == "g2" && load == -3.0
        ));
        // Non-finite delay.
        let mut ann = TimingAnnotation::zero(&n);
        ann.node_delays_mut(n.find("g1").unwrap())[0] = PinDelays {
            rise: f64::NAN,
            fall: 1.0,
        };
        assert!(matches!(
            Engine::new(Arc::clone(&n), Arc::new(ann), Arc::clone(&model)),
            Err(SimError::InvalidDelay { gate, pin: 0 }) if gate == "g1"
        ));
        // Negative delay.
        let mut ann = TimingAnnotation::zero(&n);
        ann.node_delays_mut(n.find("g2").unwrap())[0] = PinDelays {
            rise: 1.0,
            fall: -2.0,
        };
        assert!(matches!(
            Engine::new(Arc::clone(&n), Arc::new(ann), Arc::clone(&model)),
            Err(SimError::InvalidDelay { gate, pin: 0 }) if gate == "g2"
        ));
    }

    #[test]
    fn combinational_loop_rejected() {
        let lib = CellLibrary::nangate15_like();
        let mut b = NetlistBuilder::new("loop", &lib);
        let a = b.add_input("a").unwrap();
        let g1 = b.add_gate("g1", "NAND2_X1", &[a, a]).unwrap();
        let g2 = b.add_gate("g2", "INV_X1", &[g1]).unwrap();
        b.add_output("y", g2).unwrap();
        b.rewire_unchecked(g1, 1, g2);
        let n = Arc::new(b.finish_unchecked());
        let ann = Arc::new(TimingAnnotation::zero(&n));
        let model = Arc::new(StaticModel::new(ParameterSpace::paper()));
        match Engine::new(n, ann, model) {
            Err(SimError::Netlist(avfs_netlist::NetlistError::CombinationalLoop { nodes })) => {
                let mut nodes = nodes;
                nodes.sort();
                assert_eq!(nodes, vec!["g1".to_owned(), "g2".to_owned()]);
            }
            other => panic!("expected a combinational-loop error, got {other:?}"),
        }
    }

    #[test]
    fn model_error_propagates() {
        /// Rejects every factor request.
        #[derive(Debug)]
        struct NoKernelModel {
            space: ParameterSpace,
        }
        impl avfs_delay::model::DelayModel for NoKernelModel {
            fn factor(
                &self,
                cell: avfs_netlist::CellId,
                _pin: usize,
                _polarity: avfs_netlist::library::Polarity,
                _p: NormalizedPoint,
            ) -> Result<f64, avfs_delay::DelayError> {
                Err(avfs_delay::DelayError::MissingCell {
                    cell_index: cell.index(),
                })
            }
            fn name(&self) -> &str {
                "no-kernel"
            }
            fn space(&self) -> &ParameterSpace {
                &self.space
            }
        }
        let n = chain_netlist();
        let engine = Engine::new(
            Arc::clone(&n),
            Arc::new(TimingAnnotation::zero(&n)),
            Arc::new(NoKernelModel {
                space: ParameterSpace::paper(),
            }),
        )
        .unwrap();
        assert!(matches!(
            engine.run(&one_pattern(), &at_voltage(1, 0.8), &SimOptions::default()),
            Err(SimError::Model(avfs_delay::DelayError::MissingCell { .. }))
        ));
    }

    #[test]
    fn overflow_quarantine_and_retry_converges() {
        // The glitch pulse needs 2 transitions per net; a capacity-1 arena
        // must overflow, quarantine the slot and retry at capacity 4.
        let n = glitch_netlist();
        let engine = static_engine(&n, 10.0, 10.0);
        let patterns = one_pattern();
        let tight = SimOptions {
            threads: 1,
            keep_waveforms: true,
            arena_capacity: 1,
            ..SimOptions::default()
        };
        let run = engine.run(&patterns, &at_voltage(1, 0.8), &tight).unwrap();
        assert!(run.is_complete());
        assert_eq!(run.slots[0].status, SlotStatus::Completed { retries: 1 });
        assert_eq!(run.diagnostics.overflowed_slots, vec![0]);
        assert_eq!(run.diagnostics.slot_retries, 1);
        assert!(run.diagnostics.failed_slots.is_empty());
        assert_eq!(run.diagnostics.peak_arena_occupancy, 2);
        // Retries are visible in the throughput accounting.
        assert_eq!(run.node_evaluations, 2 * n.num_nodes() as u64);
        // The retried result is identical to an untroubled run.
        let easy = engine
            .run(
                &patterns,
                &at_voltage(1, 0.8),
                &SimOptions {
                    threads: 1,
                    keep_waveforms: true,
                    ..SimOptions::default()
                },
            )
            .unwrap();
        assert_eq!(run.slots[0].responses, easy.slots[0].responses);
        assert_eq!(run.slots[0].activity, easy.slots[0].activity);
        assert_eq!(run.slots[0].waveforms, easy.slots[0].waveforms);
    }

    #[test]
    fn overflow_past_retry_limit_fails_only_that_slot() {
        let n = glitch_netlist();
        let engine = static_engine(&n, 10.0, 10.0);
        // Pattern 0 glitches (input rises); pattern 1 is quiet.
        use avfs_atpg::pattern::{Pattern, PatternPair};
        let patterns: PatternSet = [
            PatternPair::new(Pattern::from_bits([false]), Pattern::from_bits([true])).unwrap(),
            PatternPair::new(Pattern::from_bits([false]), Pattern::from_bits([false])).unwrap(),
        ]
        .into_iter()
        .collect();
        let slots = [
            SlotSpec {
                pattern: 0,
                voltage: 0.8,
            },
            SlotSpec {
                pattern: 1,
                voltage: 0.8,
            },
        ];
        let opts = SimOptions {
            threads: 1,
            arena_capacity: 1,
            overflow_retries: 0,
            ..SimOptions::default()
        };
        let run = engine.run(&patterns, &slots, &opts).unwrap();
        assert!(!run.is_complete());
        assert_eq!(run.slots[0].status, SlotStatus::Overflowed { capacity: 1 });
        assert!(run.slots[0].responses.is_empty());
        assert_eq!(run.slots[1].status, SlotStatus::Completed { retries: 0 });
        assert_eq!(run.slots[1].responses, vec![true]); // quiet XOR: a ⊕ ā = 1
        assert_eq!(run.diagnostics.failed_slots, vec![0]);
        assert_eq!(run.diagnostics.overflowed_slots, vec![0]);
        assert_eq!(run.diagnostics.slot_retries, 0);
    }

    #[test]
    fn all_slots_failed_is_an_error() {
        let n = glitch_netlist();
        let engine = static_engine(&n, 10.0, 10.0);
        let opts = SimOptions {
            threads: 1,
            arena_capacity: 1,
            overflow_retries: 0,
            ..SimOptions::default()
        };
        assert!(matches!(
            engine.run(&one_pattern(), &at_voltage(1, 0.8), &opts),
            Err(SimError::AllSlotsFailed { slots: 1 })
        ));
    }

    #[test]
    fn panicking_slot_is_contained() {
        let n = chain_netlist();
        let engine = Engine::new(
            Arc::clone(&n),
            Arc::new(static_engine(&n, 10.0, 10.0).annotation().as_ref().clone()),
            Arc::new(PanickyModel {
                inner: StaticModel::new(ParameterSpace::paper()),
            }),
        )
        .unwrap();
        let patterns = one_pattern();
        // 1.1 V normalizes to 1.0 — the poisoned operating point.
        let slots = cross(1, &[0.8, 1.1, 0.9]);
        for threads in [1, 4] {
            let opts = SimOptions {
                threads,
                ..SimOptions::default()
            };
            let run = engine.run(&patterns, &slots, &opts).unwrap();
            assert!(!run.is_complete());
            assert_eq!(run.slots[1].status, SlotStatus::Panicked);
            assert!(run.slots[1].responses.is_empty());
            assert_eq!(run.diagnostics.panicked_slots, vec![1]);
            assert_eq!(run.diagnostics.failed_slots, vec![1]);
            // The healthy slots are unaffected.
            for i in [0, 2] {
                assert_eq!(run.slots[i].status, SlotStatus::Completed { retries: 0 });
                assert_eq!(run.slots[i].latest_output_transition_ps, Some(20.0));
                assert_eq!(run.slots[i].responses, vec![true]);
            }
        }
        // All slots at the poisoned point → the run itself errors.
        assert!(matches!(
            engine.run(&patterns, &at_voltage(1, 1.1), &SimOptions::default()),
            Err(SimError::AllSlotsFailed { slots: 1 })
        ));
    }

    #[test]
    fn kernel_fallback_guards_nonfinite_delays() {
        let n = chain_netlist();
        let mut ann = TimingAnnotation::zero(&n);
        for (id, node) in n.iter() {
            if matches!(node.kind(), NodeKind::Gate(_)) {
                ann.node_delays_mut(id)[0] = PinDelays {
                    rise: 10.0,
                    fall: 10.0,
                };
            }
        }
        let broken = Engine::new(
            Arc::clone(&n),
            Arc::new(ann),
            Arc::new(BrokenKernelModel {
                space: ParameterSpace::paper(),
            }),
        )
        .unwrap();
        let opts = SimOptions {
            threads: 1,
            ..SimOptions::default()
        };
        let run = broken
            .run(&one_pattern(), &at_voltage(1, 0.8), &opts)
            .unwrap();
        // Every scaled delay was non-finite; all fell back to nominal.
        assert!(run.diagnostics.kernel_fallbacks > 0);
        assert!(run.is_complete());
        let nominal = static_engine(&n, 10.0, 10.0)
            .run(&one_pattern(), &at_voltage(1, 0.8), &opts)
            .unwrap();
        assert_eq!(run.slots[0].responses, nominal.slots[0].responses);
        assert_eq!(
            run.slots[0].latest_output_transition_ps,
            nominal.slots[0].latest_output_transition_ps
        );
        // A healthy kernel reports no fallbacks.
        assert_eq!(nominal.diagnostics.kernel_fallbacks, 0);
    }

    #[test]
    fn dangling_net_clamp_reported() {
        // TimingAnnotation::zero leaves dangling nets at 0 fF, below the
        // paper space's 0.5 fF minimum — the engine clamps and reports.
        let n = chain_netlist();
        let engine = static_engine(&n, 1.0, 1.0);
        let run = engine
            .run(
                &one_pattern(),
                &at_voltage(1, 0.8),
                &SimOptions {
                    threads: 1,
                    ..SimOptions::default()
                },
            )
            .unwrap();
        assert!(run.diagnostics.clamped_loads > 0);
    }

    #[test]
    fn strict_validation_modes() {
        let n = chain_netlist();
        let engine = static_engine(&n, 10.0, 10.0);
        let patterns = one_pattern();
        // 0.3 V is well below the paper space's 0.55 V minimum; Warn (the
        // default) clamps-and-records, Deny refuses the launch.
        let low = at_voltage(1, 0.3);
        let warn = engine
            .run(
                &patterns,
                &low,
                &SimOptions {
                    threads: 1,
                    ..SimOptions::default()
                },
            )
            .unwrap();
        assert!(
            warn.diagnostics
                .validation_findings
                .iter()
                .any(|f| f.contains("AVC-D005") && f.contains("slot 0")),
            "{:?}",
            warn.diagnostics.validation_findings
        );
        let off = engine
            .run(
                &patterns,
                &low,
                &SimOptions {
                    threads: 1,
                    strict_validation: ValidationMode::Off,
                    ..SimOptions::default()
                },
            )
            .unwrap();
        assert!(off.diagnostics.validation_findings.is_empty());
        assert_eq!(off.slots, warn.slots, "validation never changes results");
        let denied = engine.run(
            &patterns,
            &low,
            &SimOptions {
                threads: 1,
                strict_validation: ValidationMode::Deny,
                ..SimOptions::default()
            },
        );
        match denied {
            Err(SimError::Validation { findings }) => {
                assert!(findings.iter().any(|f| f.contains("AVC-D005")));
            }
            other => panic!("expected SimError::Validation, got {other:?}"),
        }
    }

    #[test]
    fn deny_passes_a_clean_launch() {
        // Explicit in-range loads so the setup stage has nothing to clamp.
        let n = chain_netlist();
        let delays = n
            .nodes()
            .iter()
            .map(|node| {
                vec![
                    PinDelays {
                        rise: 10.0,
                        fall: 10.0
                    };
                    node.fanin().len()
                ]
            })
            .collect();
        let ann = TimingAnnotation::from_parts(delays, vec![1.0; n.num_nodes()]);
        let engine = Engine::new(
            Arc::clone(&n),
            Arc::new(ann),
            Arc::new(StaticModel::new(ParameterSpace::paper())),
        )
        .unwrap();
        assert!(engine.setup_findings().is_empty());
        let run = engine
            .run(
                &one_pattern(),
                &at_voltage(1, 0.8),
                &SimOptions {
                    threads: 1,
                    strict_validation: ValidationMode::Deny,
                    ..SimOptions::default()
                },
            )
            .unwrap();
        assert!(run.diagnostics.validation_findings.is_empty());
    }

    #[test]
    fn glitch_visible_in_activity() {
        // Reconvergent XOR: a ─┬────────► x
        //                      └─ inv ──► x ; x = a ⊕ ā glitches on input
        // change when path delays differ.
        let lib = CellLibrary::nangate15_like();
        let mut b = NetlistBuilder::new("glitch", &lib);
        let a = b.add_input("a").unwrap();
        let inv = b.add_gate("inv", "INV_X1", &[a]).unwrap();
        let x = b.add_gate("x", "XOR2_X1", &[a, inv]).unwrap();
        b.add_output("y", x).unwrap();
        let n = Arc::new(b.finish().unwrap());
        let engine = static_engine(&n, 10.0, 10.0);
        let run = engine
            .run(
                &one_pattern(),
                &at_voltage(1, 0.8),
                &SimOptions {
                    threads: 1,
                    keep_waveforms: true,
                    ..SimOptions::default()
                },
            )
            .unwrap();
        let slot = &run.slots[0];
        // x is 1 in steady state both before and after (a ⊕ ā = 1); the
        // inverter delay opens a 10 ps window where both inputs agree →
        // a glitch pulse at the XOR output.
        let wfs = slot.waveforms.as_ref().unwrap();
        let x_wf = &wfs[n.find("x").unwrap().index()];
        assert_eq!(x_wf.num_transitions(), 2, "expected a glitch pulse");
        assert!(x_wf.initial_value() && x_wf.final_value());
        assert!(slot.activity.total_glitch_transitions >= 2);
    }

    /// A delay model that sleeps at the poisoned operating point (v_norm
    /// ≈ 1): the kernel phase runs on the coordinator, so the sleep
    /// stalls exactly the path the deadline and the watchdog observe.
    #[derive(Debug)]
    struct SlowModel {
        inner: StaticModel,
        sleep: Duration,
    }

    impl avfs_delay::model::DelayModel for SlowModel {
        fn factor(
            &self,
            cell: avfs_netlist::CellId,
            pin: usize,
            polarity: avfs_netlist::library::Polarity,
            p: NormalizedPoint,
        ) -> Result<f64, avfs_delay::DelayError> {
            if p.v >= 0.999 {
                std::thread::sleep(self.sleep);
            }
            self.inner.factor(cell, pin, polarity, p)
        }
        fn name(&self) -> &str {
            "slow"
        }
        fn space(&self) -> &ParameterSpace {
            self.inner.space()
        }
    }

    fn slow_engine(netlist: &Arc<Netlist>, sleep: Duration) -> Engine {
        Engine::new(
            Arc::clone(netlist),
            Arc::new(
                static_engine(netlist, 10.0, 10.0)
                    .annotation()
                    .as_ref()
                    .clone(),
            ),
            Arc::new(SlowModel {
                inner: StaticModel::new(ParameterSpace::paper()),
                sleep,
            }),
        )
        .unwrap()
    }

    #[test]
    fn memory_budget_denies_retry_growth() {
        // The glitch slot needs capacity 2, so the capacity-1 round
        // overflows and the retry wants cap 4 — which the budget refuses.
        let n = glitch_netlist();
        let engine = static_engine(&n, 10.0, 10.0);
        use avfs_atpg::pattern::{Pattern, PatternPair};
        let patterns: PatternSet = [
            PatternPair::new(Pattern::from_bits([false]), Pattern::from_bits([true])).unwrap(),
            PatternPair::new(Pattern::from_bits([false]), Pattern::from_bits([false])).unwrap(),
        ]
        .into_iter()
        .collect();
        let slots = [
            SlotSpec {
                pattern: 0,
                voltage: 0.8,
            },
            SlotSpec {
                pattern: 1,
                voltage: 0.8,
            },
        ];
        let budget = super::slot_arena_bytes(n.num_nodes(), 4) - 1;
        let run = engine
            .run(
                &patterns,
                &slots,
                &SimOptions {
                    threads: 1,
                    arena_capacity: 1,
                    memory_budget: budget,
                    ..SimOptions::default()
                },
            )
            .unwrap();
        assert_eq!(run.slots[0].status, SlotStatus::BudgetExceeded);
        assert!(run.slots[0].responses.is_empty());
        assert_eq!(run.slots[1].status, SlotStatus::Completed { retries: 0 });
        assert_eq!(run.diagnostics.budget_denials, 1);
        assert_eq!(run.diagnostics.budget_tripped, Some(TrippedBudget::Memory));
        // Admission was denied, so no retry round ran and no capacity grew.
        assert_eq!(run.diagnostics.slot_retries, 0);
        assert_eq!(run.diagnostics.peak_arena_occupancy, 1);
        assert_eq!(run.diagnostics.failed_slots, vec![0]);
        // One byte more admits the retry and the slot completes.
        let run = engine
            .run(
                &patterns,
                &slots,
                &SimOptions {
                    threads: 1,
                    arena_capacity: 1,
                    memory_budget: budget + 1,
                    ..SimOptions::default()
                },
            )
            .unwrap();
        assert_eq!(run.slots[0].status, SlotStatus::Completed { retries: 1 });
        assert_eq!(run.diagnostics.budget_denials, 0);
        assert_eq!(run.diagnostics.budget_tripped, None);
    }

    #[test]
    fn zero_deadline_fails_every_slot() {
        // An already-expired deadline abandons every slot before any
        // batch launches — and an all-loss run is an error, like any
        // other total failure.
        let n = chain_netlist();
        let engine = static_engine(&n, 10.0, 10.0);
        let err = engine.run(
            &one_pattern(),
            &cross(1, &[0.7, 0.8, 0.9]),
            &SimOptions {
                threads: 1,
                deadline: Some(Duration::ZERO),
                ..SimOptions::default()
            },
        );
        assert!(matches!(err, Err(SimError::AllSlotsFailed { slots: 3 })));
    }

    #[test]
    fn deadline_degrades_gracefully_mid_run() {
        // One-slot batches; the second slot's kernel phase sleeps past
        // the deadline, so the first slot's completed result is returned
        // while the second resolves to DeadlineExceeded at the barrier.
        let n = chain_netlist();
        let engine = slow_engine(&n, Duration::from_millis(40));
        // 1.1 V normalizes to the slow operating point.
        let slots = cross(1, &[0.8, 1.1]);
        let run = engine
            .run(
                &one_pattern(),
                &slots,
                &SimOptions {
                    threads: 1,
                    waveform_budget: 1, // → one slot per batch
                    deadline: Some(Duration::from_millis(60)),
                    ..SimOptions::default()
                },
            )
            .unwrap();
        assert!(!run.is_complete());
        assert_eq!(run.slots[0].status, SlotStatus::Completed { retries: 0 });
        assert_eq!(run.slots[0].responses, vec![true]);
        assert_eq!(run.slots[1].status, SlotStatus::DeadlineExceeded);
        assert!(run.slots[1].responses.is_empty());
        assert_eq!(run.diagnostics.deadline_aborts, 1);
        assert_eq!(
            run.diagnostics.budget_tripped,
            Some(TrippedBudget::Deadline)
        );
        assert_eq!(run.diagnostics.failed_slots, vec![1]);
    }

    #[test]
    fn watchdog_counts_engine_stalls() {
        let n = chain_netlist();
        let engine = slow_engine(&n, Duration::from_millis(40));
        // The slow kernel phase stalls far past the 5 ms timeout; the
        // watchdog observes it but the run still completes untouched.
        let run = engine
            .run(
                &one_pattern(),
                &at_voltage(1, 1.1),
                &SimOptions {
                    threads: 1,
                    stall_timeout: Some(Duration::from_millis(5)),
                    ..SimOptions::default()
                },
            )
            .unwrap();
        assert!(run.is_complete());
        assert!(
            run.diagnostics.watchdog_stalls >= 1,
            "stalls: {}",
            run.diagnostics.watchdog_stalls
        );
        // A generous timeout on a fast run records nothing.
        let calm = engine
            .run(
                &one_pattern(),
                &at_voltage(1, 0.8),
                &SimOptions {
                    threads: 1,
                    stall_timeout: Some(Duration::from_secs(10)),
                    ..SimOptions::default()
                },
            )
            .unwrap();
        assert_eq!(calm.diagnostics.watchdog_stalls, 0);
        assert_eq!(calm.slots[0].responses, run.slots[0].responses);
    }

    #[test]
    fn injected_overflow_hits_predicted_slots_and_replays() {
        // The plan's decisions are pure (site, key, salt) hashes, so the
        // harness can predict the affected slots offline — and a second
        // run with the same seed replays bit for bit.
        let n = chain_netlist();
        let engine = static_engine(&n, 10.0, 10.0);
        let slots = cross(1, &[0.8; 4]);
        let mk_plan = || Arc::new(FaultPlan::empty(7).with_rate(InjectionSite::ArenaOverflow, 0.5));
        let plan = mk_plan();
        let opts = SimOptions {
            threads: 2,
            overflow_retries: 0,
            fault_plan: Some(Arc::clone(&plan)),
            ..SimOptions::default()
        };
        let run = engine.run(&one_pattern(), &slots, &opts).unwrap();
        let mut predicted_hits = 0;
        for (i, slot) in run.slots.iter().enumerate() {
            if plan.decide(InjectionSite::ArenaOverflow, i as u64, 0) {
                predicted_hits += 1;
                assert_eq!(
                    slot.status,
                    SlotStatus::Overflowed { capacity: 64 },
                    "slot {i}"
                );
            } else {
                assert_eq!(
                    slot.status,
                    SlotStatus::Completed { retries: 0 },
                    "slot {i}"
                );
            }
        }
        assert!(predicted_hits >= 1, "seed 7 must hit at least one slot");
        assert!(predicted_hits < 4, "seed 7 must spare at least one slot");
        assert_eq!(run.diagnostics.faults_injected, plan.total_fired());
        assert_eq!(
            plan.fired_keys(InjectionSite::ArenaOverflow).len(),
            predicted_hits
        );
        // Replay from a fresh plan with the same seed.
        let replay = engine
            .run(
                &one_pattern(),
                &slots,
                &SimOptions {
                    fault_plan: Some(mk_plan()),
                    ..opts.clone()
                },
            )
            .unwrap();
        assert_eq!(replay.slots, run.slots);
        assert_eq!(replay.diagnostics, run.diagnostics);
    }

    #[test]
    fn injected_kernel_panic_is_contained_like_an_organic_one() {
        let n = chain_netlist();
        let engine = static_engine(&n, 10.0, 10.0);
        let slots = cross(1, &[0.8; 4]);
        let plan = Arc::new(FaultPlan::empty(3).with_rate(InjectionSite::KernelPanic, 0.5));
        let run = engine
            .run(
                &one_pattern(),
                &slots,
                &SimOptions {
                    threads: 2,
                    fault_plan: Some(Arc::clone(&plan)),
                    ..SimOptions::default()
                },
            )
            .unwrap();
        let mut panicked = Vec::new();
        for (i, slot) in run.slots.iter().enumerate() {
            if plan.decide(InjectionSite::KernelPanic, i as u64, 0) {
                panicked.push(i);
                assert_eq!(slot.status, SlotStatus::Panicked, "slot {i}");
            } else {
                assert_eq!(
                    slot.status,
                    SlotStatus::Completed { retries: 0 },
                    "slot {i}"
                );
            }
        }
        assert!(!panicked.is_empty() && panicked.len() < 4, "{panicked:?}");
        assert_eq!(run.diagnostics.panicked_slots, panicked);
    }

    #[test]
    fn injected_nonfinite_kernel_falls_back_to_nominal() {
        // A corrupted (infinite) kernel factor exercises the
        // scale_or_fallback guard: results equal the nominal-delay run,
        // with the fallback and the fault both on the books.
        let n = chain_netlist();
        let engine = static_engine(&n, 10.0, 10.0);
        let plan = Arc::new(FaultPlan::empty(1).with_rate(InjectionSite::NonFiniteKernel, 1.0));
        let opts = SimOptions {
            threads: 1,
            ..SimOptions::default()
        };
        let injected = engine
            .run(
                &one_pattern(),
                &at_voltage(1, 0.8),
                &SimOptions {
                    fault_plan: Some(Arc::clone(&plan)),
                    ..opts.clone()
                },
            )
            .unwrap();
        let clean = engine
            .run(&one_pattern(), &at_voltage(1, 0.8), &opts)
            .unwrap();
        assert!(injected.is_complete());
        assert!(injected.diagnostics.kernel_fallbacks > 0);
        assert!(injected.diagnostics.faults_injected > 0);
        assert_eq!(injected.slots, clean.slots);
        assert_eq!(clean.diagnostics.kernel_fallbacks, 0);
        assert_eq!(clean.diagnostics.faults_injected, 0);
    }

    #[test]
    fn injected_alloc_cap_breach_denies_the_retry() {
        // Rate-1.0 AllocCapBreach: the organic overflow wants a retry,
        // the injected breach denies the admission — BudgetExceeded
        // without any memory_budget configured.
        let n = glitch_netlist();
        let engine = static_engine(&n, 10.0, 10.0);
        use avfs_atpg::pattern::{Pattern, PatternPair};
        let patterns: PatternSet = [
            PatternPair::new(Pattern::from_bits([false]), Pattern::from_bits([true])).unwrap(),
            PatternPair::new(Pattern::from_bits([false]), Pattern::from_bits([false])).unwrap(),
        ]
        .into_iter()
        .collect();
        let slots = [
            SlotSpec {
                pattern: 0,
                voltage: 0.8,
            },
            SlotSpec {
                pattern: 1,
                voltage: 0.8,
            },
        ];
        let plan = Arc::new(FaultPlan::empty(9).with_rate(InjectionSite::AllocCapBreach, 1.0));
        let run = engine
            .run(
                &patterns,
                &slots,
                &SimOptions {
                    threads: 1,
                    arena_capacity: 1,
                    fault_plan: Some(Arc::clone(&plan)),
                    ..SimOptions::default()
                },
            )
            .unwrap();
        assert_eq!(run.slots[0].status, SlotStatus::BudgetExceeded);
        assert_eq!(run.slots[1].status, SlotStatus::Completed { retries: 0 });
        assert_eq!(run.diagnostics.budget_denials, 1);
        assert_eq!(run.diagnostics.budget_tripped, Some(TrippedBudget::Memory));
        assert_eq!(run.diagnostics.slot_retries, 0);
        assert_eq!(plan.fired_keys(InjectionSite::AllocCapBreach), vec![0]);
    }

    // ---- scenario engine: schedules and Monte Carlo variation ----

    use crate::scenario::{cross_schedules, MonteCarlo, ScenarioSpec, Schedule};
    use avfs_delay::VariationConfig;

    /// A kernel whose factor actually depends on voltage — the flat
    /// [`StaticModel`] would make every schedule segment indistinguishable,
    /// so the segment-snapping and schedule tests need this instead.
    #[derive(Debug)]
    struct VoltageScaledModel {
        space: ParameterSpace,
    }

    impl avfs_delay::model::DelayModel for VoltageScaledModel {
        fn factor(
            &self,
            _cell: avfs_netlist::CellId,
            _pin: usize,
            _polarity: avfs_netlist::library::Polarity,
            p: NormalizedPoint,
        ) -> Result<f64, avfs_delay::DelayError> {
            // Monotone decreasing in voltage, strictly positive on [0, 1].
            Ok(1.5 - p.v)
        }
        fn name(&self) -> &str {
            "voltage-scaled"
        }
        fn space(&self) -> &ParameterSpace {
            &self.space
        }
    }

    fn voltage_scaled_engine(netlist: &Arc<Netlist>, rise: f64, fall: f64) -> Engine {
        let mut ann = TimingAnnotation::zero(netlist);
        for (id, node) in netlist.iter() {
            if matches!(node.kind(), NodeKind::Gate(_)) {
                for pin in 0..node.fanin().len() {
                    ann.node_delays_mut(id)[pin] = PinDelays { rise, fall };
                }
            }
        }
        Engine::new(
            Arc::clone(netlist),
            Arc::new(ann),
            Arc::new(VoltageScaledModel {
                space: ParameterSpace::paper(),
            }),
        )
        .unwrap()
    }

    /// The tentpole identity: a constant (single-segment) schedule is the
    /// static run, bit for bit — slots, diagnostics, node evaluations —
    /// at every thread count and lane width, profiled or not, and the
    /// profile carries no scenario instruments (so even profiles stay
    /// identical to the static launch).
    #[test]
    fn constant_schedule_is_bit_identical_to_static() {
        let lib = CellLibrary::nangate15_like();
        let cfg = avfs_circuits::GeneratorConfig::small();
        let n = Arc::new(avfs_circuits::random_netlist("rnd", &cfg, &lib, 23).unwrap());
        let engine = voltage_scaled_engine(&n, 8.0, 9.5);
        let patterns = PatternSet::lfsr(n.inputs().len(), 4, 5);
        let voltages = [0.7, 0.9];
        let slots = cross(patterns.len(), &voltages);
        let scenarios = cross_schedules(
            patterns.len(),
            &[Schedule::constant(0.7), Schedule::constant(0.9)],
        );
        for threads in [1usize, 4] {
            for lanes in [1usize, 8] {
                for profiling in [false, true] {
                    let opts = SimOptions {
                        threads,
                        lanes,
                        profiling,
                        ..SimOptions::default()
                    };
                    let case = format!("threads={threads}, lanes={lanes}, profiling={profiling}");
                    let fixed = engine.run(&patterns, &slots, &opts).unwrap();
                    let scheduled = engine
                        .run_scenarios(&patterns, &scenarios, None, None, &opts)
                        .unwrap();
                    assert_eq!(scheduled.slots, fixed.slots, "{case}");
                    assert_eq!(scheduled.diagnostics, fixed.diagnostics, "{case}");
                    assert_eq!(scheduled.node_evaluations, fixed.node_evaluations, "{case}");
                    if profiling {
                        let profile = scheduled.profile.as_ref().unwrap();
                        assert_eq!(
                            profile.counter(phases::ENGINE_SCENARIO_SEGMENTS),
                            None,
                            "constant schedules record no scenario instruments ({case})"
                        );
                        assert_eq!(profile.counter(phases::ENGINE_MC_SAMPLES), None, "{case}");
                        assert_eq!(
                            profile.counter(phases::ENGINE_VARIATION_DRAWS),
                            None,
                            "{case}"
                        );
                    }
                    let summary = scheduled.scenario.as_ref().unwrap();
                    assert_eq!(summary.samples_per_scenario, 1);
                    assert_eq!(summary.points.len(), voltages.len());
                }
            }
        }
    }

    /// Multi-segment schedules and Monte Carlo sampling obey the same
    /// determinism matrix as every other engine path: bit-identical to
    /// the single-threaded scalar reference at all thread counts and lane
    /// widths, profiled or not.
    #[test]
    fn scheduled_mc_runs_match_single_threaded_reference() {
        let lib = CellLibrary::nangate15_like();
        let cfg = avfs_circuits::GeneratorConfig::small();
        let n = Arc::new(avfs_circuits::random_netlist("rnd", &cfg, &lib, 31).unwrap());
        let engine = voltage_scaled_engine(&n, 8.0, 9.5);
        let patterns = PatternSet::lfsr(n.inputs().len(), 3, 9);
        let scenarios = cross_schedules(
            patterns.len(),
            &[
                Schedule::droop(0.9, 0.15, 12.0, 40.0),
                Schedule::steps([(0.0, 0.7), (25.0, 1.0)]),
            ],
        );
        let mc = MonteCarlo {
            samples: 3,
            variation: VariationConfig {
                sigma: 0.05,
                max_deviation: 0.2,
                seed: 0xD1CE,
            },
        };
        let reference = engine
            .run_scenarios(
                &patterns,
                &scenarios,
                Some(&mc),
                Some(500.0),
                &SimOptions {
                    threads: 1,
                    lanes: 1,
                    ..SimOptions::default()
                },
            )
            .unwrap();
        assert_eq!(reference.slots.len(), scenarios.len() * mc.samples);
        for threads in [1usize, 4] {
            for lanes in [1usize, 8] {
                for profiling in [false, true] {
                    let case = format!("threads={threads}, lanes={lanes}, profiling={profiling}");
                    let got = engine
                        .run_scenarios(
                            &patterns,
                            &scenarios,
                            Some(&mc),
                            Some(500.0),
                            &SimOptions {
                                threads,
                                lanes,
                                profiling,
                                ..SimOptions::default()
                            },
                        )
                        .unwrap();
                    assert_eq!(got.slots, reference.slots, "{case}");
                    assert_eq!(got.diagnostics, reference.diagnostics, "{case}");
                    assert_eq!(got.scenario, reference.scenario, "{case}");
                    if profiling {
                        let profile = got.profile.as_ref().unwrap();
                        // 3 segments + 2 segments, × patterns × dice.
                        let segments = (3 + 2) as u64 * patterns.len() as u64 * mc.samples as u64;
                        assert_eq!(
                            profile.counter(phases::ENGINE_SCENARIO_SEGMENTS),
                            Some(segments),
                            "{case}"
                        );
                        assert_eq!(
                            profile.counter(phases::ENGINE_MC_SAMPLES),
                            Some(reference.slots.len() as u64),
                            "{case}"
                        );
                        assert!(
                            profile.counter(phases::ENGINE_VARIATION_DRAWS).unwrap() > 0,
                            "{case}"
                        );
                    }
                }
            }
        }
    }

    /// Segment selection snaps on the *cause* (input event) time: an
    /// event exactly at a boundary belongs to the later segment, one just
    /// before it to the earlier — checked through a two-inverter chain
    /// whose second stage's input event lands exactly on the boundary.
    #[test]
    fn boundary_event_snaps_to_later_segment() {
        let n = chain_netlist();
        let engine = voltage_scaled_engine(&n, 10.0, 10.0);
        let space = ParameterSpace::paper();
        let c_min = space.load_range().0;
        let f = |v: f64| 1.5 - space.normalize_clamped(OperatingPoint::new(v, c_min)).v;
        let (v0, v1) = (0.7, 1.0);
        // Input flips at t = 0 (segment 0): g1's output lands at t1.
        let t1 = 10.0 * f(v0);
        let opts = SimOptions {
            threads: 1,
            ..SimOptions::default()
        };
        let run_with_boundary = |boundary: f64| {
            let scenarios = [ScenarioSpec {
                pattern: 0,
                schedule: Schedule::steps([(0.0, v0), (boundary, v1)]),
            }];
            let run = engine
                .run_scenarios(&one_pattern(), &scenarios, None, None, &opts)
                .unwrap();
            run.slots[0].latest_output_transition_ps.unwrap()
        };
        // Boundary exactly at g2's input event: the event sees the
        // *later* (faster) segment.
        let at = run_with_boundary(t1);
        assert!(
            (at - (t1 + 10.0 * f(v1))).abs() < 1e-9,
            "boundary event must use the later segment: got {at}"
        );
        // Boundary just after the event: still the earlier segment.
        let after = run_with_boundary(t1 + 0.01);
        assert!(
            (after - (t1 + 10.0 * f(v0))).abs() < 1e-9,
            "pre-boundary event must use the earlier segment: got {after}"
        );
    }

    /// Monte Carlo draws replay exactly from the seed (pure hashes, no
    /// stateful RNG), a different seed draws different dice, and a
    /// zero-sigma die is bit-identical to the variation-free run.
    #[test]
    fn mc_replays_exactly_from_seed() {
        let lib = CellLibrary::nangate15_like();
        let cfg = avfs_circuits::GeneratorConfig::small();
        let n = Arc::new(avfs_circuits::random_netlist("rnd", &cfg, &lib, 47).unwrap());
        let engine = voltage_scaled_engine(&n, 8.0, 9.0);
        let patterns = PatternSet::lfsr(n.inputs().len(), 2, 3);
        let scenarios = cross_schedules(patterns.len(), &[Schedule::droop(0.9, 0.1, 15.0, 60.0)]);
        let opts = SimOptions {
            threads: 1,
            ..SimOptions::default()
        };
        let mc = |sigma: f64, seed: u64| MonteCarlo {
            samples: 4,
            variation: VariationConfig {
                sigma,
                max_deviation: 0.25,
                seed,
            },
        };
        let a = engine
            .run_scenarios(&patterns, &scenarios, Some(&mc(0.08, 7)), None, &opts)
            .unwrap();
        let b = engine
            .run_scenarios(&patterns, &scenarios, Some(&mc(0.08, 7)), None, &opts)
            .unwrap();
        assert_eq!(a.slots, b.slots, "same seed must replay exactly");
        assert_eq!(a.scenario, b.scenario);
        let c = engine
            .run_scenarios(&patterns, &scenarios, Some(&mc(0.08, 8)), None, &opts)
            .unwrap();
        assert_ne!(
            a.slots
                .iter()
                .map(|s| s.latest_output_transition_ps)
                .collect::<Vec<_>>(),
            c.slots
                .iter()
                .map(|s| s.latest_output_transition_ps)
                .collect::<Vec<_>>(),
            "a different seed must draw different dice"
        );
        // Zero sigma: derates are exactly 1.0, so the sampled run is the
        // variation-free run bit for bit (slot-for-slot: each scenario's
        // single nominal die).
        let nominal = engine
            .run_scenarios(
                &patterns,
                &scenarios,
                Some(&MonteCarlo {
                    samples: 1,
                    variation: VariationConfig {
                        sigma: 0.0,
                        max_deviation: 0.25,
                        seed: 99,
                    },
                }),
                None,
                &opts,
            )
            .unwrap();
        let plain = engine
            .run_scenarios(&patterns, &scenarios, None, None, &opts)
            .unwrap();
        assert_eq!(nominal.slots, plain.slots);
    }

    #[test]
    fn malformed_scenarios_rejected() {
        let n = chain_netlist();
        let engine = voltage_scaled_engine(&n, 10.0, 10.0);
        let patterns = one_pattern();
        let opts = SimOptions::default();
        let launch = |schedule: Schedule| {
            engine.run_scenarios(
                &patterns,
                &[ScenarioSpec {
                    pattern: 0,
                    schedule,
                }],
                None,
                None,
                &opts,
            )
        };
        // Structurally un-lowerable shapes: refused in every validation
        // mode (the segment lookup has no semantics for them).
        for (name, schedule) in [
            ("empty", Schedule { segments: vec![] }),
            (
                "unsorted",
                Schedule::steps([(0.0, 0.8), (50.0, 0.7), (40.0, 0.9)]),
            ),
            (
                "duplicate",
                Schedule::steps([(0.0, 0.8), (50.0, 0.7), (50.0, 0.9)]),
            ),
            ("nan-start", Schedule::steps([(0.0, 0.8), (f64::NAN, 0.7)])),
        ] {
            match launch(schedule) {
                Err(SimError::InvalidSchedule { slot: 0, .. }) => {}
                other => panic!("{name}: expected InvalidSchedule, got {other:?}"),
            }
        }
        // Voltage problems: the same refusal a static slot gets.
        for bad in [f64::NAN, f64::INFINITY, 0.0, -0.8] {
            match launch(Schedule::steps([(0.0, 0.8), (10.0, bad)])) {
                Err(SimError::InvalidOperatingPoint { slot: 0, .. }) => {}
                other => panic!("expected InvalidOperatingPoint, got {other:?}"),
            }
        }
        // Empty launches.
        assert_eq!(
            engine
                .run_scenarios(&patterns, &[], None, None, &opts)
                .unwrap_err(),
            SimError::EmptySlots
        );
        assert_eq!(
            engine
                .run_scenarios(
                    &patterns,
                    &[ScenarioSpec {
                        pattern: 0,
                        schedule: Schedule::constant(0.8),
                    }],
                    Some(&MonteCarlo {
                        samples: 0,
                        variation: VariationConfig::sigma5(0),
                    }),
                    None,
                    &opts,
                )
                .unwrap_err(),
            SimError::EmptySlots
        );
        // Pattern index out of range.
        match engine.run_scenarios(
            &patterns,
            &[ScenarioSpec {
                pattern: 7,
                schedule: Schedule::constant(0.8),
            }],
            None,
            None,
            &opts,
        ) {
            Err(SimError::BadPatternIndex {
                index: 7,
                available: 1,
            }) => {}
            other => panic!("expected BadPatternIndex, got {other:?}"),
        }
    }

    /// Repairable schedule findings — an unanchored first segment
    /// (`AVC-N010`, lowering extends it back to `t = 0`) and supplies
    /// outside the characterized range (`AVC-D006`, the kernel clamps) —
    /// follow `SimOptions::strict_validation` instead of hard-failing:
    /// recorded under `Warn`, refused under `Deny`, silent under `Off`.
    #[test]
    fn repairable_schedules_follow_validation_mode() {
        let n = chain_netlist();
        let engine = voltage_scaled_engine(&n, 10.0, 10.0);
        let patterns = one_pattern();
        let launch = |schedule: Schedule, mode: ValidationMode| {
            engine.run_scenarios(
                &patterns,
                &[ScenarioSpec {
                    pattern: 0,
                    schedule,
                }],
                None,
                None,
                &SimOptions {
                    strict_validation: mode,
                    ..SimOptions::default()
                },
            )
        };
        // The paper space characterizes [0.55, 1.1] V; 1.3 V clamps.
        let cases = [
            ("AVC-N010", Schedule::steps([(5.0, 0.8), (20.0, 0.7)])),
            ("AVC-D006", Schedule::steps([(0.0, 0.8), (20.0, 1.3)])),
        ];
        for (rule, schedule) in &cases {
            // Warn (the default): the run proceeds, the finding lands in
            // the diagnostics.
            let run = launch(schedule.clone(), ValidationMode::Warn).unwrap();
            assert!(
                run.diagnostics
                    .validation_findings
                    .iter()
                    .any(|f| f.contains(rule)),
                "{rule} missing from {:?}",
                run.diagnostics.validation_findings
            );
            assert!(run.slots[0].status.is_completed());
            // Deny: the same launch is refused, carrying the finding.
            match launch(schedule.clone(), ValidationMode::Deny) {
                Err(SimError::Validation { findings }) => {
                    assert!(findings.iter().any(|f| f.contains(rule)), "{findings:?}");
                }
                other => panic!("{rule}: expected Validation refusal, got {other:?}"),
            }
            // Off: runs, records nothing.
            let off = launch(schedule.clone(), ValidationMode::Off).unwrap();
            assert!(off.diagnostics.validation_findings.is_empty());
        }
        // An unanchored schedule still lowers soundly: segment 0 extends
        // back to the launch instant, so this two-segment trace equals
        // the anchored trace with the same boundary.
        let unanchored = launch(
            Schedule::steps([(5.0, 0.8), (20.0, 0.7)]),
            ValidationMode::Warn,
        )
        .unwrap();
        let anchored = launch(
            Schedule::steps([(0.0, 0.8), (20.0, 0.7)]),
            ValidationMode::Warn,
        )
        .unwrap();
        assert_eq!(unanchored.slots, anchored.slots);
    }

    /// The failure-probability reduction against a capture deadline:
    /// lower supplies are slower under the voltage-scaled kernel, so a
    /// deadline between the two arrival times separates the curve.
    #[test]
    fn scenario_summary_separates_voltages_at_a_deadline() {
        let n = chain_netlist();
        let engine = voltage_scaled_engine(&n, 10.0, 10.0);
        let space = ParameterSpace::paper();
        let c_min = space.load_range().0;
        let f = |v: f64| 1.5 - space.normalize_clamped(OperatingPoint::new(v, c_min)).v;
        let (slow_v, fast_v) = (0.6, 1.0);
        let deadline = 20.0 * (f(slow_v) + f(fast_v)) / 2.0;
        let scenarios =
            cross_schedules(1, &[Schedule::constant(slow_v), Schedule::constant(fast_v)]);
        let run = engine
            .run_scenarios(
                &one_pattern(),
                &scenarios,
                None,
                Some(deadline),
                &SimOptions {
                    threads: 1,
                    ..SimOptions::default()
                },
            )
            .unwrap();
        let summary = run.scenario.as_ref().unwrap();
        assert_eq!(summary.capture_deadline_ps, Some(deadline));
        assert_eq!(summary.points.len(), 2);
        let slow = summary.points.iter().find(|p| p.voltage == slow_v).unwrap();
        let fast = summary.points.iter().find(|p| p.voltage == fast_v).unwrap();
        assert_eq!((slow.samples, slow.failures), (1, 1), "slow slot misses");
        assert!((slow.p_fail - 1.0).abs() < 1e-12);
        assert_eq!((fast.samples, fast.failures), (1, 0), "fast slot makes it");
        assert_eq!(fast.p_fail, 0.0);
    }
}
