//! Static timing analysis: the pessimistic longest structural path.
//!
//! Provides the "Longest Path" reference of Table II column 2 — the value
//! a commercial STA tool reports at the nominal corner. The comparison the
//! paper draws (simulated latest arrival ≪ STA longest path) falls out of
//! STA's topological worst-casing: it ignores logical sensitizability and
//! takes the worst pin/polarity delay at every gate.

use avfs_delay::TimingAnnotation;
use avfs_netlist::{Levelization, Netlist, NodeId};

/// The result of a longest-path analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct StaReport {
    /// Length of the longest structural path, ps.
    pub longest_path_ps: f64,
    /// The path itself, PI → PO.
    pub critical_path: Vec<NodeId>,
}

/// Computes the longest structural path with worst-case pin delays.
///
/// Gate edges weigh `max(rise, fall)` of the annotated pin delay; PI and
/// PO edges weigh zero.
pub fn longest_path(
    netlist: &Netlist,
    levels: &Levelization,
    annotation: &TimingAnnotation,
) -> StaReport {
    let n = netlist.num_nodes();
    let mut dist = vec![0.0f64; n];
    let mut pred: Vec<Option<NodeId>> = vec![None; n];
    for id in levels.topological_order() {
        let node = netlist.node(id);
        let pins = annotation.node_delays(id);
        for (pin, &f) in node.fanin().iter().enumerate() {
            let w = pins.get(pin).map_or(0.0, |d| d.max());
            let cand = dist[f.index()] + w;
            // `>=`-style update on the first fanin keeps the critical path
            // structurally complete even for zero-weight (unannotated)
            // edges.
            if cand > dist[id.index()] || pred[id.index()].is_none() {
                dist[id.index()] = cand;
                pred[id.index()] = Some(f);
            }
        }
    }
    // The worst endpoint among primary outputs.
    let (&end, &length) = netlist
        .outputs()
        .iter()
        .map(|po| (po, &dist[po.index()]))
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("netlists have at least one output");
    let mut critical_path = vec![end];
    let mut cur = end;
    while let Some(p) = pred[cur.index()] {
        critical_path.push(p);
        cur = p;
    }
    critical_path.reverse();
    StaReport {
        longest_path_ps: length,
        critical_path,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfs_netlist::{CellLibrary, NetlistBuilder, NodeKind};
    use avfs_waveform::PinDelays;

    #[test]
    fn picks_worst_branch() {
        let lib = CellLibrary::nangate15_like();
        let mut b = NetlistBuilder::new("y", &lib);
        let a = b.add_input("a").unwrap();
        let fast = b.add_gate("fast", "BUF_X1", &[a]).unwrap();
        let slow1 = b.add_gate("slow1", "INV_X1", &[a]).unwrap();
        let slow2 = b.add_gate("slow2", "INV_X1", &[slow1]).unwrap();
        let join = b.add_gate("join", "AND2_X1", &[fast, slow2]).unwrap();
        b.add_output("y", join).unwrap();
        let n = b.finish().unwrap();
        let levels = Levelization::of(&n).expect("acyclic");
        let mut ann = avfs_delay::TimingAnnotation::zero(&n);
        for (id, node) in n.iter() {
            if matches!(node.kind(), NodeKind::Gate(_)) {
                for pin in 0..node.fanin().len() {
                    ann.node_delays_mut(id)[pin] = PinDelays {
                        rise: 10.0,
                        fall: 12.0,
                    };
                }
            }
        }
        let report = longest_path(&n, &levels, &ann);
        // slow1 + slow2 + join = 3 × 12.
        assert!((report.longest_path_ps - 36.0).abs() < 1e-9);
        let names: Vec<&str> = report
            .critical_path
            .iter()
            .map(|&id| n.node(id).name())
            .collect();
        assert_eq!(names, ["a", "slow1", "slow2", "join", "y"]);
    }

    #[test]
    fn zero_annotation_gives_zero_path() {
        let lib = CellLibrary::nangate15_like();
        let mut b = NetlistBuilder::new("z", &lib);
        let a = b.add_input("a").unwrap();
        let g = b.add_gate("g", "INV_X1", &[a]).unwrap();
        b.add_output("y", g).unwrap();
        let n = b.finish().unwrap();
        let levels = Levelization::of(&n).expect("acyclic");
        let ann = avfs_delay::TimingAnnotation::zero(&n);
        let report = longest_path(&n, &levels, &ann);
        assert_eq!(report.longest_path_ps, 0.0);
        assert_eq!(report.critical_path.len(), 3);
    }
}
