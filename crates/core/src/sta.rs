//! Static timing analysis glue: voltage-scaled oracle runs and the
//! STA ↔ simulator cross-check (DESIGN.md §16).
//!
//! Two analyses live here:
//!
//! * [`longest_path`] — the pessimistic longest *structural* path at the
//!   nominal corner, the "Longest Path" reference of Table II column 2:
//!   it ignores logical sensitizability and takes the worst pin/polarity
//!   delay at every gate.
//! * [`analyze`] / [`crosscheck`] — the per-pin-transition oracle from
//!   `avfs-sta`, run over the *voltage-scaled* delay matrix of one
//!   operating point. [`scaled_graph`] derives that matrix with the
//!   exact factor/guard calls the engine's delay-kernel initialization
//!   makes (`scale_or_fallback` included), so the oracle's bound and
//!   the simulator's arrivals rest on one shared delay matrix — the
//!   premise of the bitwise `sim ≤ sta` argument in `avfs-sta`'s crate
//!   docs.
//!
//! The cross-check compares a finished uniform-voltage [`SimRun`]
//! against the bound per supply voltage and renders the `AVC-T` finding
//! family (`avfs_sta::crosscheck`): a simulated arrival beyond the bound
//! is `AVC-T001` (Deny, always — it proves a bug in one of the two
//! engines), structural blind spots are `AVC-T003`/`AVC-T004` (Warn).

use crate::compile::CompiledNetlist;
use crate::engine::scale_or_fallback;
use crate::results::SimRun;
use crate::SimError;
use avfs_check::{Finding, Severity, StaRow, StaSection};
use avfs_delay::op::{NormalizedPoint, OperatingPoint};
use avfs_delay::TimingAnnotation;
use avfs_netlist::library::Polarity;
use avfs_netlist::{Levelization, Netlist, NodeId, NodeKind};
use avfs_sta::crosscheck::{bound_finding, structure_findings, DEFAULT_EPSILON_PS};
use avfs_sta::TimingGraph;
use avfs_waveform::PinDelays;

/// The result of a longest-path analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct StaReport {
    /// Length of the longest structural path, ps.
    pub longest_path_ps: f64,
    /// The path itself, PI → PO.
    pub critical_path: Vec<NodeId>,
}

/// Computes the longest structural path with worst-case pin delays.
///
/// Gate edges weigh `max(rise, fall)` of the annotated pin delay; PI and
/// PO edges weigh zero.
pub fn longest_path(
    netlist: &Netlist,
    levels: &Levelization,
    annotation: &TimingAnnotation,
) -> StaReport {
    let n = netlist.num_nodes();
    let mut dist = vec![0.0f64; n];
    let mut pred: Vec<Option<NodeId>> = vec![None; n];
    for id in levels.topological_order() {
        let node = netlist.node(id);
        let pins = annotation.node_delays(id);
        for (pin, &f) in node.fanin().iter().enumerate() {
            let w = pins.get(pin).map_or(0.0, |d| d.max());
            let cand = dist[f.index()] + w;
            // `>=`-style update on the first fanin keeps the critical path
            // structurally complete even for zero-weight (unannotated)
            // edges.
            if cand > dist[id.index()] || pred[id.index()].is_none() {
                dist[id.index()] = cand;
                pred[id.index()] = Some(f);
            }
        }
    }
    // The worst endpoint among primary outputs.
    let (&end, &length) = netlist
        .outputs()
        .iter()
        .map(|po| (po, &dist[po.index()]))
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("netlists have at least one output");
    let mut critical_path = vec![end];
    let mut cur = end;
    while let Some(p) = pred[cur.index()] {
        critical_path.push(p);
        cur = p;
    }
    critical_path.reverse();
    StaReport {
        longest_path_ps: length,
        critical_path,
    }
}

/// Builds the per-pin-transition [`TimingGraph`] of one compiled
/// artifact at one supply voltage. The delay matrix is derived gate by
/// gate with the *same* model calls the engine's delay-kernel
/// initialization performs — same normalized point (`φ_V` of the
/// clamped supply, the artifact's per-node `φ_C`), same
/// [`Polarity`]-split factors, same non-finite fallback guard — so a
/// graph built here and a simulator launch at the same voltage price
/// every arc bit-identically. Non-gate nodes keep their nominal
/// annotation delays (zero for the repo's annotations: the simulator
/// copies primary outputs at zero cost).
///
/// Only the supply axis is taken from `voltage`; the load axis is the
/// artifact's per-node normalized value, exactly as in a launch.
///
/// # Errors
///
/// [`SimError::Model`] when the delay model rejects the operating point.
pub fn scaled_graph(compiled: &CompiledNetlist, voltage: f64) -> Result<TimingGraph<'_>, SimError> {
    let space = compiled.model.space();
    let c_min = space.load_range().0;
    let v_norm = space
        .normalize_clamped(OperatingPoint::new(voltage, c_min))
        .v;
    let mut fb = 0u64;
    let mut delays: Vec<Vec<PinDelays>> = Vec::with_capacity(compiled.netlist.num_nodes());
    for (id, node) in compiled.netlist.iter() {
        let nominal = compiled.annotation.node_delays(id);
        let pins = match node.kind() {
            NodeKind::Gate(cell_id) => {
                let p = NormalizedPoint {
                    v: v_norm,
                    c: compiled.c_norm[id.index()],
                };
                let mut buf = Vec::with_capacity(nominal.len());
                for (pin, d) in nominal.iter().enumerate() {
                    let f_rise = compiled.model.factor(cell_id, pin, Polarity::Rise, p)?;
                    let f_fall = compiled.model.factor(cell_id, pin, Polarity::Fall, p)?;
                    buf.push(PinDelays {
                        rise: scale_or_fallback(d.rise, f_rise, &mut fb),
                        fall: scale_or_fallback(d.fall, f_fall, &mut fb),
                    });
                }
                buf
            }
            _ => nominal.to_vec(),
        };
        delays.push(pins);
    }
    Ok(
        TimingGraph::new(&compiled.netlist, &compiled.levels, delays)
            .expect("delay matrix shaped by the netlist itself"),
    )
}

/// Runs the independent STA oracle over `compiled` at one operating
/// point, with arrivals seeded at `t = 0 ps` (the default
/// [`SimOptions::launch_time_ps`](crate::SimOptions)). Only the supply
/// axis of `point` is used — the load axis is per node, from the
/// artifact's annotation, exactly as in a simulator launch.
///
/// The returned report's `latest_arrival_ps` is a sound upper bound on
/// every [`SlotResult::latest_output_transition_ps`](crate::SlotResult)
/// a uniform launch of this artifact at the same voltage can produce
/// (no Monte Carlo variation, no fault injection — those perturb delays
/// after scaling).
///
/// # Errors
///
/// [`SimError::Model`] when the delay model rejects the operating point.
pub fn analyze(
    compiled: &CompiledNetlist,
    point: &OperatingPoint,
) -> Result<avfs_sta::StaReport, SimError> {
    analyze_at(compiled, point, 0.0)
}

/// [`analyze`] with an explicit launch instant — pass the run's
/// [`SimOptions::launch_time_ps`](crate::SimOptions) so the oracle's
/// folds start where the simulator's stimulus does.
pub fn analyze_at(
    compiled: &CompiledNetlist,
    point: &OperatingPoint,
    launch_time_ps: f64,
) -> Result<avfs_sta::StaReport, SimError> {
    Ok(scaled_graph(compiled, point.voltage)?.report(launch_time_ps))
}

/// Knobs of one [`crosscheck`] comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossCheckOptions {
    /// Comparison tolerance, ps
    /// ([`DEFAULT_EPSILON_PS`]
    /// by default — see `avfs-sta`'s docs for why the bound itself needs
    /// none).
    pub epsilon_ps: f64,
    /// The launch instant the compared run used
    /// ([`SimOptions::launch_time_ps`](crate::SimOptions); 0 by
    /// default).
    pub launch_time_ps: f64,
}

impl Default for CrossCheckOptions {
    fn default() -> CrossCheckOptions {
        CrossCheckOptions {
            epsilon_ps: DEFAULT_EPSILON_PS,
            launch_time_ps: 0.0,
        }
    }
}

/// The outcome of one STA ↔ simulator cross-check: `AVC-T` findings
/// plus the quantitative per-voltage agreement rows that feed the
/// `sta` section of `CHECK_report.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossCheck {
    /// Rendered findings (`AVC-T001` per violating slot, `AVC-T003`/
    /// `AVC-T004` per structural blind spot), capped per rule.
    pub findings: Vec<Finding>,
    /// One row per distinct supply voltage, in first-appearance order.
    pub rows: Vec<StaRow>,
    /// The tolerance the comparison ran with, ps.
    pub epsilon_ps: f64,
}

impl CrossCheck {
    /// Findings of Deny severity — a healthy flow has zero (the CI
    /// gate's criterion).
    pub fn deny_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity >= Severity::Deny)
            .count()
    }

    /// The report section this comparison contributes to
    /// `CHECK_report.json` (merge via
    /// [`Report::sta`](avfs_check::Report)).
    pub fn section(&self) -> StaSection {
        StaSection {
            epsilon_ps: self.epsilon_ps,
            rows: self.rows.clone(),
        }
    }
}

/// Cross-validates a finished **uniform-voltage** run against the STA
/// oracle: per distinct slot voltage, the oracle bound is computed once
/// and every completed slot's latest output transition is checked
/// against it (`AVC-T001` on violation); the oracle's structural
/// warnings (`AVC-T003`/`AVC-T004`) are rendered once per circuit.
/// `circuit` labels the findings and rows.
///
/// The run must come from a plain uniform launch
/// ([`CompiledNetlist::launch`], [`Session::run`](crate::Session)) of
/// the same artifact, with no Monte Carlo plan and no armed fault plan:
/// scheduled supplies change delays mid-flight and variation/fault
/// derates perturb them after scaling, so the single-voltage bound does
/// not apply. (Scenario runs are recognizable by
/// [`SimRun::scenario`](crate::SimRun); fault plans are the caller's
/// knowledge.)
///
/// # Errors
///
/// [`SimError::Model`] when the delay model rejects one of the run's
/// voltages.
pub fn crosscheck(
    compiled: &CompiledNetlist,
    run: &SimRun,
    circuit: &str,
    options: &CrossCheckOptions,
) -> Result<CrossCheck, SimError> {
    // Distinct voltages in first-appearance order, keyed by bit pattern
    // (the same identity the engine's delay-table cache uses).
    let mut groups: Vec<(f64, Vec<usize>)> = Vec::new();
    for (i, slot) in run.slots.iter().enumerate() {
        let v = slot.spec.voltage;
        match groups
            .iter_mut()
            .find(|(gv, _)| gv.to_bits() == v.to_bits())
        {
            Some((_, idx)) => idx.push(i),
            None => groups.push((v, vec![i])),
        }
    }
    let mut findings = Vec::new();
    let mut rows = Vec::with_capacity(groups.len());
    for (gi, (voltage, slot_indices)) in groups.iter().enumerate() {
        let report = analyze_at(
            compiled,
            &OperatingPoint::new(*voltage, compiled.model.space().load_range().0),
            options.launch_time_ps,
        )?;
        if gi == 0 {
            // Structure is voltage-independent: render the warnings once.
            findings.extend(structure_findings(&compiled.netlist, &report));
        }
        let mut sim_latest: Option<f64> = None;
        for &i in slot_indices {
            let slot = &run.slots[i];
            if !slot.status.is_completed() {
                continue;
            }
            findings.extend(bound_finding(
                &format!("{circuit} @ {voltage} V slot {i}"),
                slot.latest_output_transition_ps,
                report.latest_arrival_ps,
                options.epsilon_ps,
            ));
            if let Some(t) = slot.latest_output_transition_ps {
                sim_latest = Some(sim_latest.map_or(t, |prev: f64| prev.max(t)));
            }
        }
        rows.push(StaRow {
            circuit: circuit.to_string(),
            voltage: *voltage,
            sta_latest_ps: report.latest_arrival_ps,
            sim_latest_ps: sim_latest,
            margin_ps: sim_latest.map(|s| report.latest_arrival_ps - s),
        });
    }
    Ok(CrossCheck {
        findings: avfs_check::cap_findings(findings),
        rows,
        epsilon_ps: options.epsilon_ps,
    })
}

impl CompiledNetlist {
    /// [`sta::analyze`](analyze) as a method — the oracle view of this
    /// artifact at one operating point.
    ///
    /// # Errors
    ///
    /// [`SimError::Model`] when the delay model rejects the point.
    pub fn sta(&self, point: &OperatingPoint) -> Result<avfs_sta::StaReport, SimError> {
        analyze(self, point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{slots, SimOptions};
    use avfs_atpg::PatternSet;
    use avfs_delay::{ParameterSpace, StaticModel};
    use avfs_netlist::{CellLibrary, NetlistBuilder, NodeKind};
    use std::sync::Arc;

    #[test]
    fn picks_worst_branch() {
        let lib = CellLibrary::nangate15_like();
        let mut b = NetlistBuilder::new("y", &lib);
        let a = b.add_input("a").unwrap();
        let fast = b.add_gate("fast", "BUF_X1", &[a]).unwrap();
        let slow1 = b.add_gate("slow1", "INV_X1", &[a]).unwrap();
        let slow2 = b.add_gate("slow2", "INV_X1", &[slow1]).unwrap();
        let join = b.add_gate("join", "AND2_X1", &[fast, slow2]).unwrap();
        b.add_output("y", join).unwrap();
        let n = b.finish().unwrap();
        let levels = Levelization::of(&n).expect("acyclic");
        let mut ann = avfs_delay::TimingAnnotation::zero(&n);
        for (id, node) in n.iter() {
            if matches!(node.kind(), NodeKind::Gate(_)) {
                for pin in 0..node.fanin().len() {
                    ann.node_delays_mut(id)[pin] = PinDelays {
                        rise: 10.0,
                        fall: 12.0,
                    };
                }
            }
        }
        let report = longest_path(&n, &levels, &ann);
        // slow1 + slow2 + join = 3 × 12.
        assert!((report.longest_path_ps - 36.0).abs() < 1e-9);
        let names: Vec<&str> = report
            .critical_path
            .iter()
            .map(|&id| n.node(id).name())
            .collect();
        assert_eq!(names, ["a", "slow1", "slow2", "join", "y"]);
    }

    #[test]
    fn zero_annotation_gives_zero_path() {
        let lib = CellLibrary::nangate15_like();
        let mut b = NetlistBuilder::new("z", &lib);
        let a = b.add_input("a").unwrap();
        let g = b.add_gate("g", "INV_X1", &[a]).unwrap();
        b.add_output("y", g).unwrap();
        let n = b.finish().unwrap();
        let levels = Levelization::of(&n).expect("acyclic");
        let ann = avfs_delay::TimingAnnotation::zero(&n);
        let report = longest_path(&n, &levels, &ann);
        assert_eq!(report.longest_path_ps, 0.0);
        assert_eq!(report.critical_path.len(), 3);
    }

    fn compiled_c17() -> Arc<CompiledNetlist> {
        let lib = CellLibrary::nangate15_like();
        let netlist = Arc::new(avfs_circuits::c17(&lib).unwrap());
        let mut ann = avfs_delay::TimingAnnotation::zero(&netlist);
        for (id, node) in netlist.iter() {
            if matches!(node.kind(), NodeKind::Gate(_)) {
                for pin in 0..node.fanin().len() {
                    ann.node_delays_mut(id)[pin] = PinDelays {
                        rise: 9.0 + pin as f64,
                        fall: 11.0 + pin as f64,
                    };
                }
            }
        }
        Arc::new(
            CompiledNetlist::compile(
                netlist,
                Arc::new(ann),
                Arc::new(StaticModel::new(ParameterSpace::paper())),
            )
            .unwrap(),
        )
    }

    #[test]
    fn scaled_graph_matches_engine_delay_derivation() {
        let compiled = compiled_c17();
        // At two sweep voltages the oracle bound must dominate every
        // simulated arrival — bitwise, per the shared-matrix argument.
        for &v in &[0.55, 0.8] {
            let report = compiled.sta(&OperatingPoint::new(v, 1.0)).unwrap();
            assert!(report.latest_arrival_ps.is_finite());
            let patterns = PatternSet::lfsr(compiled.netlist().inputs().len(), 8, 11);
            let run = compiled
                .launch(
                    &patterns,
                    &slots::at_voltage(patterns.len(), v),
                    &SimOptions {
                        threads: 1,
                        ..SimOptions::default()
                    },
                )
                .unwrap();
            for slot in &run.slots {
                if let Some(t) = slot.latest_output_transition_ps {
                    assert!(
                        t <= report.latest_arrival_ps,
                        "sim {t} ps exceeds STA bound {} ps at {v} V",
                        report.latest_arrival_ps
                    );
                }
            }
        }
    }

    #[test]
    fn lower_voltage_never_tightens_the_bound() {
        let compiled = compiled_c17();
        let slow = compiled.sta(&OperatingPoint::new(0.55, 1.0)).unwrap();
        let fast = compiled.sta(&OperatingPoint::new(1.1, 1.0)).unwrap();
        assert!(slow.latest_arrival_ps >= fast.latest_arrival_ps);
    }

    #[test]
    fn crosscheck_produces_rows_and_no_deny_findings() {
        let compiled = compiled_c17();
        let patterns = PatternSet::lfsr(compiled.netlist().inputs().len(), 6, 3);
        let mut slot_list = slots::at_voltage(patterns.len(), 0.8);
        slot_list.extend(slots::at_voltage(patterns.len(), 0.6));
        let run = compiled
            .launch(
                &patterns,
                &slot_list,
                &SimOptions {
                    threads: 1,
                    ..SimOptions::default()
                },
            )
            .unwrap();
        let check = crosscheck(&compiled, &run, "c17", &CrossCheckOptions::default()).unwrap();
        assert_eq!(check.deny_count(), 0, "findings: {:?}", check.findings);
        assert_eq!(check.rows.len(), 2);
        assert_eq!(check.rows[0].voltage, 0.8);
        assert_eq!(check.rows[1].voltage, 0.6);
        for row in &check.rows {
            assert_eq!(row.circuit, "c17");
            let margin = row.margin_ps.expect("c17 toggles under LFSR stimuli");
            assert!(margin >= 0.0, "negative margin {margin}");
        }
        let section = check.section();
        assert_eq!(section.epsilon_ps, DEFAULT_EPSILON_PS);
        assert_eq!(section.rows, check.rows);
    }

    #[test]
    fn crosscheck_flags_fabricated_bound_violation() {
        let compiled = compiled_c17();
        let patterns = PatternSet::lfsr(compiled.netlist().inputs().len(), 2, 5);
        let run = compiled
            .launch(
                &patterns,
                &slots::at_voltage(patterns.len(), 0.8),
                &SimOptions {
                    threads: 1,
                    ..SimOptions::default()
                },
            )
            .unwrap();
        let mut tampered = run.clone();
        tampered.slots[0].latest_output_transition_ps = Some(1e12);
        let check = crosscheck(&compiled, &tampered, "c17", &CrossCheckOptions::default()).unwrap();
        assert_eq!(check.deny_count(), 1);
        assert_eq!(check.findings[0].rule, "AVC-T001");
        assert!(check.findings[0].location.contains("slot 0"));
        assert!(check.rows[0].margin_ps.unwrap() < 0.0);
    }
}
