//! Serial event-driven time simulation — the conventional baseline.
//!
//! This is the algorithm class of the "serial commercial event-driven
//! logic level time simulator" the paper benchmarks against (Table I,
//! columns 4–5): a global time-ordered event queue, per-event gate
//! re-evaluation, and inertial cancellation of overtaken output
//! transitions. The delay semantics match the levelized engine exactly
//! (same pin-to-pin delays, same overtaking rule, same tie-breaking by
//! pin order), so on any feed-forward circuit both simulators produce
//! identical waveforms — a property the integration tests exploit as a
//! cross-validation oracle.
//!
//! Supports static delays only, like the commercial tool: parametric
//! evaluation with this baseline requires a full re-annotation and re-run
//! per operating point, which is precisely the scalability wall the paper
//! attacks.

use crate::phases;
use crate::results::{RunDiagnostics, SimRun, SlotResult, SlotStatus};
use crate::slots::SlotSpec;
use crate::SimError;
use avfs_atpg::{zero_delay_values, PatternSet};
use avfs_delay::TimingAnnotation;
use avfs_inject::{FaultPlan, InjectionSite, Injector};
use avfs_netlist::{Levelization, Netlist, NodeId, NodeKind};
use avfs_obs::{Histogram, Metrics};
use avfs_waveform::{SwitchingActivity, Waveform, WaveformStats};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// A time value with a total order (no NaNs may enter the queue).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Time(f64);

impl Eq for Time {}
impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// The serial event-driven simulator.
#[derive(Debug, Clone)]
pub struct EventDrivenSimulator {
    netlist: Arc<Netlist>,
    levels: Arc<Levelization>,
    annotation: Arc<TimingAnnotation>,
}

/// Result of one event-driven pattern simulation.
#[derive(Debug, Clone)]
pub struct EventDrivenOutcome {
    /// Final waveform of every net.
    pub waveforms: Vec<Waveform>,
    /// Number of committed events (net transitions).
    pub events: u64,
}

impl EventDrivenSimulator {
    /// Creates the baseline simulator.
    ///
    /// # Errors
    ///
    /// * [`SimError::AnnotationMismatch`] if the annotation does not cover
    ///   the netlist,
    /// * [`SimError::NonPositiveDelay`] if any gate pin delay is not
    ///   strictly positive (zero-delay gates would make event cancellation
    ///   ambiguous at equal timestamps; annotate first).
    pub fn new(
        netlist: Arc<Netlist>,
        annotation: Arc<TimingAnnotation>,
    ) -> Result<EventDrivenSimulator, SimError> {
        if !annotation.matches(&netlist) {
            return Err(SimError::AnnotationMismatch);
        }
        for (id, node) in netlist.iter() {
            if matches!(node.kind(), NodeKind::Gate(_)) {
                for pin in 0..node.fanin().len() {
                    let d = annotation.pin_delays(id, pin);
                    if d.rise <= 0.0 || d.fall <= 0.0 {
                        return Err(SimError::NonPositiveDelay {
                            gate: node.name().to_owned(),
                        });
                    }
                }
            }
        }
        let levels = Arc::new(Levelization::of(&netlist)?);
        Ok(EventDrivenSimulator {
            netlist,
            levels,
            annotation,
        })
    }

    /// Simulates every slot serially (the baseline has no slot
    /// parallelism; its `voltage` field is ignored — static delays only).
    ///
    /// # Errors
    ///
    /// Returns the same validation errors as the engine.
    pub fn run(
        &self,
        patterns: &PatternSet,
        slots: &[SlotSpec],
        keep_waveforms: bool,
    ) -> Result<SimRun, SimError> {
        self.run_profiled(patterns, slots, keep_waveforms, false)
    }

    /// Like [`EventDrivenSimulator::run`], optionally collecting a
    /// performance profile into [`SimRun::profile`]: total simulation time
    /// ([`phases::ED_SIMULATE`]), committed events
    /// ([`phases::ED_EVENTS`]), a queue-depth histogram sampled once per
    /// simulation time step ([`phases::ED_QUEUE_DEPTH`]) and an events/s
    /// gauge ([`phases::ED_EVENTS_PER_SEC`]). Simulation results are
    /// bit-for-bit identical with profiling on or off.
    ///
    /// # Errors
    ///
    /// Returns the same validation errors as [`EventDrivenSimulator::run`].
    pub fn run_profiled(
        &self,
        patterns: &PatternSet,
        slots: &[SlotSpec],
        keep_waveforms: bool,
        profiling: bool,
    ) -> Result<SimRun, SimError> {
        self.run_with_plan(patterns, slots, keep_waveforms, profiling, None)
    }

    /// [`EventDrivenSimulator::run_profiled`] with an optional armed
    /// fault plan, giving the baseline the same per-slot fault envelope
    /// as the engine: a panicking slot — organic or injected
    /// ([`InjectionSite::KernelPanic`] keyed by the slot index, salt 0) —
    /// is contained via `catch_unwind` and reported as
    /// [`SlotStatus::Panicked`] in slot results and
    /// [`RunDiagnostics::panicked_slots`], while every healthy slot is
    /// reported [`SlotStatus::Completed`]. Like the engine, a run in
    /// which *no* slot completes returns [`SimError::AllSlotsFailed`].
    ///
    /// # Errors
    ///
    /// Returns the same validation errors as
    /// [`EventDrivenSimulator::run`], plus [`SimError::AllSlotsFailed`]
    /// on total loss.
    pub fn run_with_plan(
        &self,
        patterns: &PatternSet,
        slots: &[SlotSpec],
        keep_waveforms: bool,
        profiling: bool,
        plan: Option<&Arc<FaultPlan>>,
    ) -> Result<SimRun, SimError> {
        if slots.is_empty() {
            return Err(SimError::EmptySlots);
        }
        let width = self.netlist.inputs().len();
        for pair in patterns {
            if pair.width() != width {
                return Err(SimError::PatternWidth {
                    expected: width,
                    got: pair.width(),
                });
            }
        }
        let injector = plan.map_or_else(Injector::unarmed, |p| Injector::armed(Arc::clone(p)));
        let fired_before = plan.map_or(0, |p| p.total_fired());
        let metrics = profiling.then(|| Metrics::new("event_driven"));
        let mut depth_hist = profiling.then(Histogram::new);
        let mut total_events = 0u64;
        let simulate_span = metrics.as_ref().map(|m| m.span(phases::ED_SIMULATE));
        let start = Instant::now();
        let mut diag = RunDiagnostics::default();
        let mut results = Vec::with_capacity(slots.len());
        for (i, spec) in slots.iter().enumerate() {
            let pair = patterns
                .pairs()
                .get(spec.pattern)
                .ok_or(SimError::BadPatternIndex {
                    index: spec.pattern,
                    available: patterns.len(),
                })?;
            // Per-slot containment, exactly like the engine's: a panic —
            // injected or organic — fails this slot, not the run. The
            // queue-depth histogram may hold samples from the aborted
            // slot; the depth distribution is observational only.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if injector.fires(InjectionSite::KernelPanic, i as u64, 0) {
                    panic!("injected kernel panic (slot {i})");
                }
                self.simulate_pair_sampled(pair, 0.0, depth_hist.as_mut())
            }));
            let outcome = match outcome {
                Ok(outcome) => outcome,
                Err(_) => {
                    results.push(SlotResult::failed(*spec, SlotStatus::Panicked));
                    diag.panicked_slots.push(i);
                    diag.failed_slots.push(i);
                    continue;
                }
            };
            total_events += outcome.events;
            let mut responses = Vec::with_capacity(self.netlist.outputs().len());
            let mut latest: Option<f64> = None;
            for &po in self.netlist.outputs() {
                let stats = WaveformStats::of(&outcome.waveforms[po.index()]);
                responses.push(stats.final_value);
                latest = match (latest, stats.latest_transition) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    (a, b) => a.or(b),
                };
            }
            let activity = SwitchingActivity::of(outcome.waveforms.iter());
            results.push(SlotResult {
                spec: *spec,
                status: SlotStatus::Completed { retries: 0 },
                responses,
                latest_output_transition_ps: latest,
                activity,
                waveforms: keep_waveforms.then_some(outcome.waveforms),
            });
        }
        diag.faults_injected = plan
            .map_or(0, |p| p.total_fired())
            .saturating_sub(fired_before);
        if results.iter().all(|s| !s.status.is_completed()) {
            return Err(SimError::AllSlotsFailed {
                slots: results.len(),
            });
        }
        let elapsed = start.elapsed();
        if let Some(span) = simulate_span {
            span.finish();
        }
        if let Some(m) = &metrics {
            m.add(phases::ED_EVENTS, total_events);
            if let Some(h) = &depth_hist {
                m.merge_histogram(phases::ED_QUEUE_DEPTH, h);
            }
            let secs = elapsed.as_secs_f64();
            if secs > 0.0 {
                m.set_gauge(phases::ED_EVENTS_PER_SEC, total_events as f64 / secs);
            }
        }
        Ok(SimRun {
            slots: results,
            elapsed,
            node_evaluations: (self.netlist.num_nodes() as u64) * (slots.len() as u64),
            diagnostics: diag,
            profile: metrics.as_ref().map(Metrics::snapshot),
            scenario: None,
        })
    }

    /// Simulates one pattern pair, returning all net waveforms.
    pub fn simulate_pair(
        &self,
        pair: &avfs_atpg::pattern::PatternPair,
        launch_time_ps: f64,
    ) -> EventDrivenOutcome {
        self.simulate_pair_sampled(pair, launch_time_ps, None)
    }

    /// [`EventDrivenSimulator::simulate_pair`] with optional queue-depth
    /// sampling: when `depth` is present, the pending-heap size (alive and
    /// lazily cancelled entries alike) is recorded once per simulation
    /// time step. Sampling never changes the schedule.
    fn simulate_pair_sampled(
        &self,
        pair: &avfs_atpg::pattern::PatternPair,
        launch_time_ps: f64,
        mut depth: Option<&mut Histogram>,
    ) -> EventDrivenOutcome {
        let n = self.netlist.num_nodes();
        // Settle the launch vector: initial values of all nets.
        let initial = zero_delay_values(&self.netlist, &self.levels, &pair.launch);

        // Per-net committed transition lists.
        let mut transitions: Vec<Vec<f64>> = vec![Vec::new(); n];
        // Per-gate live input snapshot (indexed by node, pin).
        let mut gate_inputs: Vec<Vec<bool>> = self
            .netlist
            .nodes()
            .iter()
            .map(|node| node.fanin().iter().map(|f| initial[f.index()]).collect())
            .collect();
        // Per-node pending (scheduled, uncommitted) transitions: sorted
        // ascending, identified for lazy cancellation.
        let mut pending: Vec<Vec<(f64, u64)>> = vec![Vec::new(); n];
        let mut scheduled_value: Vec<bool> = initial.clone();
        let mut alive: Vec<bool> = Vec::new();
        let mut heap: BinaryHeap<Reverse<(Time, usize, u64)>> = BinaryHeap::new();
        let mut events: u64 = 0;

        let schedule = |node: usize,
                        tt: f64,
                        new_out: bool,
                        pending: &mut Vec<Vec<(f64, u64)>>,
                        scheduled_value: &mut Vec<bool>,
                        alive: &mut Vec<bool>,
                        heap: &mut BinaryHeap<Reverse<(Time, usize, u64)>>| {
            if new_out == scheduled_value[node] {
                return;
            }
            // Inertial cancellation: drop overtaken transitions.
            while let Some(&(t_last, id_last)) = pending[node].last() {
                if t_last >= tt {
                    pending[node].pop();
                    alive[id_last as usize] = false;
                    scheduled_value[node] = !scheduled_value[node];
                } else {
                    break;
                }
            }
            if scheduled_value[node] != new_out {
                let id = alive.len() as u64;
                alive.push(true);
                pending[node].push((tt, id));
                heap.push(Reverse((Time(tt), node, id)));
                scheduled_value[node] = new_out;
            }
        };

        // Launch events: PIs that differ between the two vectors.
        for (k, &pi) in self.netlist.inputs().iter().enumerate() {
            if pair.launch.bit(k) != pair.capture.bit(k) {
                let id = alive.len() as u64;
                alive.push(true);
                pending[pi.index()].push((launch_time_ps, id));
                scheduled_value[pi.index()] = pair.capture.bit(k);
                heap.push(Reverse((Time(launch_time_ps), pi.index(), id)));
            }
        }

        let mut values = initial.clone();
        let mut committed: Vec<usize> = Vec::new();
        let mut eval_buf: Vec<bool> = Vec::new();
        while let Some(&Reverse((Time(t), _, _))) = heap.peek() {
            if let Some(h) = depth.as_deref_mut() {
                h.record(heap.len() as u64);
            }
            // Phase 1: commit every alive event at exactly time t.
            committed.clear();
            while let Some(&Reverse((Time(t2), node, id))) = heap.peek() {
                if t2 > t {
                    break;
                }
                heap.pop();
                if !alive[id as usize] {
                    continue;
                }
                debug_assert_eq!(
                    pending[node].first().map(|&(_, i)| i),
                    Some(id),
                    "commits must pop pending entries in order"
                );
                pending[node].remove(0);
                values[node] = !values[node];
                transitions[node].push(t);
                events += 1;
                committed.push(node);
            }

            // Phase 2: deliver to sinks. Collect changed pins per gate so
            // simultaneous events replay in pin order (matching the
            // levelized merge's tie-break).
            let mut affected: Vec<(usize, usize)> = Vec::new(); // (gate, pin)
            for &src in &committed {
                let src_id = NodeId::from_index(src);
                for &sink in self.netlist.node(src_id).fanout() {
                    match self.netlist.node(sink).kind() {
                        NodeKind::Output => {
                            // Zero-delay observation copy.
                            values[sink.index()] = !values[sink.index()];
                            transitions[sink.index()].push(t);
                        }
                        NodeKind::Gate(_) => {
                            // The same net may drive several pins of one
                            // gate; deliver to every matching pin (the
                            // duplicate fanout entries collapse in the
                            // dedup below).
                            for (pin, &f) in self.netlist.node(sink).fanin().iter().enumerate() {
                                if f.index() == src {
                                    affected.push((sink.index(), pin));
                                }
                            }
                        }
                        NodeKind::Input => unreachable!("inputs have no fanin"),
                    }
                }
            }
            affected.sort_unstable();
            affected.dedup();
            for &(gate, pin) in &affected {
                let gate_id = NodeId::from_index(gate);
                gate_inputs[gate][pin] = !gate_inputs[gate][pin];
                let cell = self.netlist.cell_of(gate_id).expect("gate has a cell");
                eval_buf.clear();
                eval_buf.extend_from_slice(&gate_inputs[gate]);
                let new_out = cell.eval(&eval_buf);
                if new_out != scheduled_value[gate] {
                    let d = self.annotation.pin_delays(gate_id, pin);
                    let tt = t + d.for_output(new_out);
                    schedule(
                        gate,
                        tt,
                        new_out,
                        &mut pending,
                        &mut scheduled_value,
                        &mut alive,
                        &mut heap,
                    );
                }
            }
        }

        let waveforms = (0..n)
            .map(|i| {
                Waveform::with_transitions(initial[i], std::mem::take(&mut transitions[i]))
                    .expect("event times are strictly increasing per net")
            })
            .collect();
        EventDrivenOutcome { waveforms, events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, SimOptions};
    use crate::slots::at_voltage;
    use avfs_atpg::pattern::{Pattern, PatternPair};
    use avfs_delay::{ParameterSpace, StaticModel};
    use avfs_netlist::{CellLibrary, NetlistBuilder};
    use avfs_waveform::PinDelays;

    fn annotate_static(netlist: &Netlist, seed: u64) -> TimingAnnotation {
        // Deterministic, varied, strictly positive delays.
        let mut ann = TimingAnnotation::zero(netlist);
        let mut state = seed | 1;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            1.0 + ((state >> 11) as f64 / (1u64 << 53) as f64) * 19.0
        };
        for (id, node) in netlist.iter() {
            if matches!(node.kind(), NodeKind::Gate(_)) {
                for pin in 0..node.fanin().len() {
                    ann.node_delays_mut(id)[pin] = PinDelays {
                        rise: next(),
                        fall: next(),
                    };
                }
            }
        }
        ann
    }

    fn inverter_chain() -> Arc<Netlist> {
        let lib = CellLibrary::nangate15_like();
        let mut b = NetlistBuilder::new("chain", &lib);
        let a = b.add_input("a").unwrap();
        let g1 = b.add_gate("g1", "INV_X1", &[a]).unwrap();
        let g2 = b.add_gate("g2", "NAND2_X1", &[a, g1]).unwrap();
        b.add_output("y", g2).unwrap();
        Arc::new(b.finish().unwrap())
    }

    #[test]
    fn rejects_zero_delays() {
        let n = inverter_chain();
        let ann = Arc::new(TimingAnnotation::zero(&n));
        assert!(matches!(
            EventDrivenSimulator::new(Arc::clone(&n), ann),
            Err(SimError::NonPositiveDelay { .. })
        ));
    }

    #[test]
    fn matches_levelized_engine_small() {
        let n = inverter_chain();
        let ann = Arc::new(annotate_static(&n, 3));
        let ed = EventDrivenSimulator::new(Arc::clone(&n), Arc::clone(&ann)).unwrap();
        let engine = Engine::new(
            Arc::clone(&n),
            Arc::clone(&ann),
            Arc::new(StaticModel::new(ParameterSpace::paper())),
        )
        .unwrap();
        let patterns: PatternSet = std::iter::once(
            PatternPair::new(Pattern::from_bits([false]), Pattern::from_bits([true])).unwrap(),
        )
        .collect();
        let slots = at_voltage(1, 0.8);
        let opts = SimOptions {
            threads: 1,
            keep_waveforms: true,
            ..SimOptions::default()
        };
        let run_engine = engine.run(&patterns, &slots, &opts).unwrap();
        let run_ed = ed.run(&patterns, &slots, true).unwrap();
        let wf_a = run_engine.slots[0].waveforms.as_ref().unwrap();
        let wf_b = run_ed.slots[0].waveforms.as_ref().unwrap();
        for (id, node) in n.iter() {
            assert_eq!(
                wf_a[id.index()],
                wf_b[id.index()],
                "waveform mismatch on {} ({})",
                node.name(),
                id
            );
        }
    }

    #[test]
    fn cross_validation_random_circuits() {
        // The load-bearing oracle test: on random circuits with random
        // positive delays, the event-driven baseline and the levelized
        // engine must agree net-for-net, transition-for-transition.
        let lib = CellLibrary::nangate15_like();
        for seed in 0..4u64 {
            let cfg = avfs_circuits::GeneratorConfig {
                nodes: 120,
                inputs: 10,
                outputs: 10,
                depth: 8,
                two_input_fraction: 0.7,
            };
            let n = Arc::new(avfs_circuits::random_netlist("xval", &cfg, &lib, seed).unwrap());
            let ann = Arc::new(annotate_static(&n, seed.wrapping_mul(77).wrapping_add(1)));
            let ed = EventDrivenSimulator::new(Arc::clone(&n), Arc::clone(&ann)).unwrap();
            let engine = Engine::new(
                Arc::clone(&n),
                Arc::clone(&ann),
                Arc::new(StaticModel::new(ParameterSpace::paper())),
            )
            .unwrap();
            let patterns = PatternSet::lfsr(n.inputs().len(), 6, seed + 5);
            let slots = at_voltage(patterns.len(), 0.8);
            let opts = SimOptions {
                threads: 1,
                keep_waveforms: true,
                ..SimOptions::default()
            };
            let run_a = engine.run(&patterns, &slots, &opts).unwrap();
            let run_b = ed.run(&patterns, &slots, true).unwrap();
            for (sa, sb) in run_a.slots.iter().zip(&run_b.slots) {
                let wa = sa.waveforms.as_ref().unwrap();
                let wb = sb.waveforms.as_ref().unwrap();
                for (id, node) in n.iter() {
                    assert_eq!(
                        wa[id.index()],
                        wb[id.index()],
                        "seed {seed}: mismatch on {} pattern {}",
                        node.name(),
                        sa.spec.pattern
                    );
                }
            }
        }
    }

    #[test]
    fn event_count_reported() {
        let n = inverter_chain();
        let ann = Arc::new(annotate_static(&n, 9));
        let ed = EventDrivenSimulator::new(Arc::clone(&n), ann).unwrap();
        let pair =
            PatternPair::new(Pattern::from_bits([false]), Pattern::from_bits([true])).unwrap();
        let outcome = ed.simulate_pair(&pair, 0.0);
        assert!(outcome.events >= 2, "at least PI and one gate switch");
        // Constant pair: no events at all.
        let quiet =
            PatternPair::new(Pattern::from_bits([true]), Pattern::from_bits([true])).unwrap();
        assert_eq!(ed.simulate_pair(&quiet, 0.0).events, 0);
    }

    #[test]
    fn injected_panic_contained_per_slot() {
        // Baseline parity with the engine's fault envelope: injected
        // panics fail exactly the predicted slots, healthy slots report
        // Completed, and the diagnostics carry the loss.
        let n = inverter_chain();
        let ann = Arc::new(annotate_static(&n, 5));
        let ed = EventDrivenSimulator::new(Arc::clone(&n), ann).unwrap();
        let patterns: PatternSet = std::iter::once(
            PatternPair::new(Pattern::from_bits([false]), Pattern::from_bits([true])).unwrap(),
        )
        .collect();
        let slots: Vec<SlotSpec> = (0..4)
            .map(|_| SlotSpec {
                pattern: 0,
                voltage: 0.8,
            })
            .collect();
        let plan = Arc::new(
            avfs_inject::FaultPlan::empty(11)
                .with_rate(avfs_inject::InjectionSite::KernelPanic, 0.5),
        );
        let run = ed
            .run_with_plan(&patterns, &slots, false, false, Some(&plan))
            .unwrap();
        let mut panicked = Vec::new();
        for (i, slot) in run.slots.iter().enumerate() {
            if plan.decide(avfs_inject::InjectionSite::KernelPanic, i as u64, 0) {
                panicked.push(i);
                assert_eq!(slot.status, SlotStatus::Panicked, "slot {i}");
                assert!(slot.responses.is_empty());
            } else {
                assert_eq!(
                    slot.status,
                    SlotStatus::Completed { retries: 0 },
                    "slot {i}"
                );
            }
        }
        assert!(!panicked.is_empty() && panicked.len() < 4, "{panicked:?}");
        assert_eq!(run.diagnostics.panicked_slots, panicked);
        assert_eq!(run.diagnostics.failed_slots, panicked);
        assert_eq!(run.diagnostics.faults_injected, plan.total_fired());
        // Rate 1.0 fails every slot — a total loss is an error here too.
        let all = Arc::new(
            avfs_inject::FaultPlan::empty(11)
                .with_rate(avfs_inject::InjectionSite::KernelPanic, 1.0),
        );
        assert!(matches!(
            ed.run_with_plan(&patterns, &slots, false, false, Some(&all)),
            Err(SimError::AllSlotsFailed { slots: 4 })
        ));
    }

    #[test]
    fn clean_runs_report_completed_status() {
        let n = inverter_chain();
        let ann = Arc::new(annotate_static(&n, 9));
        let ed = EventDrivenSimulator::new(Arc::clone(&n), ann).unwrap();
        let patterns: PatternSet = std::iter::once(
            PatternPair::new(Pattern::from_bits([false]), Pattern::from_bits([true])).unwrap(),
        )
        .collect();
        let run = ed.run(&patterns, &at_voltage(1, 0.8), false).unwrap();
        assert_eq!(run.slots[0].status, SlotStatus::Completed { retries: 0 });
        assert!(run.is_complete());
        assert_eq!(run.diagnostics.faults_injected, 0);
        assert!(run.diagnostics.panicked_slots.is_empty());
    }
}
