//! Massively parallel voltage-aware gate-level time simulation — the
//! paper's primary contribution (Sec. IV).
//!
//! The centerpiece is [`engine::Engine`], a CPU realization of the GPU
//! execution model of Fig. 3:
//!
//! * **vertical dimension** — structural parallelism: the circuit is
//!   processed level by level, all gates of a level concurrently;
//! * **horizontal plane** — data parallelism over *slots*, each slot being
//!   one (stimulus waveform, operating point) assignment; the grid trades
//!   off stimuli against operating points arbitrarily;
//! * **online delay calculation** — every gate evaluation scales its
//!   nominal SDF delays with the delay-kernel factor
//!   `1 + f(φ_V(v), φ_C(c))` fetched from the shared coefficient table
//!   (Sec. IV.A), so per-instance timing never needs to be stored.
//!
//! Memory is organized as a structure-of-arrays waveform arena indexed by
//! `(slot, net)` — the GPU global-memory layout of Holst et al. \[25\] —
//! and slots are processed in batches sized to a configurable memory
//! budget, exactly as a GPU launches as many slots as fit.
//!
//! The comparison baselines live alongside:
//!
//! * [`event_driven`] — a serial event-driven time simulator (the
//!   "conventional commercial" algorithm of Table I columns 4–5) with
//!   identical delay semantics, used both for benchmarking and as a
//!   cross-validation oracle,
//! * [`sta`] — static timing analysis: the nominal longest-path
//!   reference (Table II column 2) plus the voltage-scaled
//!   per-pin-transition oracle from `avfs-sta` and its
//!   [`sta::crosscheck`] driver, which proves `sim ≤ sta` per run
//!   (DESIGN.md §16),
//! * [`api::TimeSimulator`] — a high-level facade wiring netlist,
//!   annotation, model and engine together for the examples and benches.
//!
//! On top of the static grid, [`scenario`] makes the operating point a
//! *function of time*: piecewise `(t_start, V)` supply [`Schedule`]s per
//! slot (droop transients, DVFS steps) plus seeded [`MonteCarlo`]
//! process variation, reduced into failure-probability-vs-voltage
//! curves. A constant schedule is bit-identical to the static run — see
//! the [`scenario`] module docs for the identity doctest and the
//! determinism argument.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod api;
pub mod batch;
pub mod compile;
pub mod delay_fault;
pub mod domains;
pub mod engine;
pub mod event_driven;
pub mod phases;
mod pool;
pub mod power;
pub mod results;
pub mod scenario;
pub mod session;
pub mod slots;
pub mod sta;

pub use api::TimeSimulator;
/// Re-exported so scenario launches configure variation without naming
/// `avfs_delay` directly.
pub use avfs_delay::VariationConfig;
/// Re-exported observability types ([`SimRun::profile`] is an
/// [`avfs_obs::Profile`]).
pub use avfs_obs::{Metrics, PhaseStats, Profile};
pub use batch::{BatchRunner, CompileKey};
pub use compile::CompiledNetlist;
pub use delay_fault::{DelayFaultSimulator, FaultVerdict, SmallDelayFault};
pub use domains::{DomainSlotSpec, VoltageDomains};
pub use engine::{Engine, SimOptions, ValidationMode};
pub use event_driven::EventDrivenSimulator;
pub use power::{energy_by_voltage, slot_energy, EnergyEstimate};
pub use results::{RunDiagnostics, SimRun, SlotResult, SlotStatus};
pub use scenario::{
    cross_schedules, FailurePoint, MonteCarlo, ScenarioSpec, ScenarioSummary, Schedule, Segment,
};
pub use session::Session;
pub use slots::{cross, SlotSpec};

use std::error::Error;
use std::fmt;

/// Errors produced by the simulators.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The annotation does not cover the netlist.
    AnnotationMismatch,
    /// A pattern's width differs from the primary-input count.
    PatternWidth {
        /// Primary inputs in the netlist.
        expected: usize,
        /// Bits in the offending pattern.
        got: usize,
    },
    /// A slot references a pattern index outside the pattern set.
    BadPatternIndex {
        /// The offending index.
        index: usize,
        /// Patterns available.
        available: usize,
    },
    /// No slots were requested.
    EmptySlots,
    /// The delay model failed (missing kernel, out-of-range operating
    /// point).
    Model(avfs_delay::DelayError),
    /// The event-driven baseline requires strictly positive gate delays.
    NonPositiveDelay {
        /// Name of the offending gate.
        gate: String,
    },
    /// The netlist failed a structural check (e.g. a combinational loop).
    Netlist(avfs_netlist::NetlistError),
    /// A slot requested a non-finite or non-positive supply voltage.
    InvalidOperatingPoint {
        /// Index of the offending slot.
        slot: usize,
        /// The rejected voltage (volts).
        voltage: f64,
    },
    /// A scenario's piecewise operating-point schedule is structurally
    /// un-lowerable (empty, unsorted, or with non-finite start times) —
    /// the `AVC-N010` lint refused it before any kernel work, in every
    /// validation mode. Repairable schedule findings (an unanchored
    /// first segment, out-of-range supplies) follow
    /// [`SimOptions::strict_validation`](engine::SimOptions) instead.
    InvalidSchedule {
        /// Index of the offending scenario.
        slot: usize,
        /// The first lint finding's message.
        message: String,
    },
    /// An annotated output load is non-finite or negative.
    InvalidLoad {
        /// Name of the offending node.
        node: String,
        /// The rejected load (femtofarads).
        load: f64,
    },
    /// An annotated pin delay is non-finite or negative.
    InvalidDelay {
        /// Name of the offending gate.
        gate: String,
        /// Input pin index of the offending delay.
        pin: usize,
    },
    /// Every slot of a run failed (overflowed past the retry limit or
    /// panicked); no usable result exists.
    AllSlotsFailed {
        /// Number of slots that failed (= number requested).
        slots: usize,
    },
    /// The requested lane width
    /// ([`SimOptions::lanes`](engine::SimOptions)) is not a power of two
    /// or exceeds 64 — lane masks are single `u64` words, so only
    /// power-of-two widths up to 64 keep a full lane group inside one
    /// claim word.
    InvalidLanes {
        /// The rejected lane width (as requested, before auto
        /// resolution).
        lanes: usize,
    },
    /// A run requested a per-run thread override that differs from the
    /// thread count a parked worker pool
    /// ([`Session`] / [`BatchRunner`]) was built with. Threads are
    /// resolved once at pool construction; pass `threads: 0` (or the
    /// pool's count) per run, or build a session with the count you
    /// want.
    ThreadMismatch {
        /// Worker count the parked pool was built with.
        pool: usize,
        /// The rejected per-run override.
        requested: usize,
    },
    /// Up-front validation refused the launch
    /// ([`SimOptions::strict_validation`](engine::SimOptions) is
    /// [`ValidationMode::Deny`](engine::ValidationMode) and a
    /// warn-or-worse finding exists).
    Validation {
        /// Every rendered finding of the launch, one
        /// `severity rule [location]: message` line each (the same
        /// strings `Warn` mode records in
        /// [`RunDiagnostics::validation_findings`]).
        findings: Vec<String>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::AnnotationMismatch => {
                write!(f, "timing annotation does not match the netlist")
            }
            SimError::PatternWidth { expected, got } => {
                write!(f, "pattern width {got} does not match {expected} inputs")
            }
            SimError::BadPatternIndex { index, available } => {
                write!(f, "slot references pattern {index} of {available}")
            }
            SimError::EmptySlots => write!(f, "no simulation slots requested"),
            SimError::Model(e) => write!(f, "delay model error: {e}"),
            SimError::NonPositiveDelay { gate } => {
                write!(
                    f,
                    "event-driven simulation requires positive delays (gate `{gate}`)"
                )
            }
            SimError::Netlist(e) => write!(f, "netlist error: {e}"),
            SimError::InvalidOperatingPoint { slot, voltage } => {
                write!(f, "slot {slot} requests invalid supply voltage {voltage} V")
            }
            SimError::InvalidSchedule { slot, message } => {
                write!(f, "scenario {slot} has a malformed schedule: {message}")
            }
            SimError::InvalidLoad { node, load } => {
                write!(f, "node `{node}` has invalid annotated load {load} fF")
            }
            SimError::InvalidDelay { gate, pin } => {
                write!(
                    f,
                    "gate `{gate}` pin {pin} has a non-finite or negative delay"
                )
            }
            SimError::AllSlotsFailed { slots } => {
                write!(f, "all {slots} simulation slots failed; no usable result")
            }
            SimError::InvalidLanes { lanes } => {
                write!(f, "lane width {lanes} is not a power of two within 1..=64")
            }
            SimError::ThreadMismatch { pool, requested } => {
                write!(
                    f,
                    "run requests {requested} thread(s) but the parked pool was built with {pool}; \
                     threads resolve once at pool construction (pass 0 per run)"
                )
            }
            SimError::Validation { findings } => {
                write!(
                    f,
                    "strict validation refused the launch ({} finding(s))",
                    findings.len()
                )?;
                match findings.first() {
                    Some(first) => write!(f, "; first: {first}"),
                    None => Ok(()),
                }
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Model(e) => Some(e),
            SimError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<avfs_delay::DelayError> for SimError {
    fn from(e: avfs_delay::DelayError) -> Self {
        SimError::Model(e)
    }
}

impl From<avfs_netlist::NetlistError> for SimError {
    fn from(e: avfs_netlist::NetlistError) -> Self {
        SimError::Netlist(e)
    }
}
