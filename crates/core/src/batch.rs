//! Cross-run batch execution: a parked worker pool, bounded artifact
//! caches, and sharded slot grids — the server-shaped front half of the
//! compile-once / simulate-many split.
//!
//! Where a [`Session`](crate::session::Session) binds one compiled
//! artifact to one pool, a [`BatchRunner`] is the amortization hub for a
//! whole workload:
//!
//! * **pool reuse** — one worker pool, spawned at construction, serves
//!   every run (runs serialize on an internal lock; the queue depth is
//!   instrumented);
//! * **artifact caching** — compiled netlists and characterized
//!   libraries live in bounded LRUs keyed by
//!   [`CompileKey`] = (netlist hash, library hash, corner), with
//!   `engine.compile_{hits,misses}` counters riding `avfs-obs`;
//! * **grid sharding** — a slot grid larger than
//!   [`SimOptions::shard_slots`] (auto: one arena batch) is split into
//!   shards executed back-to-back on the parked pool and stitched in
//!   slot-major order, bit-for-bit identical to an unsharded run.
//!
//! # Shard stitching and determinism
//!
//! Slots are independent: the engine's own internal batching is already
//! result-transparent, and a shard is nothing but an externally imposed
//! batch boundary. The stitcher concatenates shard slot results in grid
//! order, re-bases per-shard diagnostic slot indexes to global grid
//! indexes through a [`LaneWindow`](avfs_waveform::LaneWindow),
//! sums the additive counters
//! (retries, aborts, denials, injected faults), maxes the arena
//! occupancy water mark, and re-checks total loss over the whole grid.
//! Validation runs **once** over the whole grid (global `slot {i}`
//! labels, one `Deny` decision); quarantine, deadline and injection
//! semantics are per-shard, exactly as they are per-run today. The one
//! non-slot-local counter is `kernel_fallbacks` (counted per
//! (level, voltage-group) evaluation, which shard boundaries can split);
//! it is exact on fallback-free runs and an upper bound otherwise.
//! Multi-shard runs return no profile (per-shard registries are not
//! merged).

use crate::compile::CompiledNetlist;
use crate::engine::{Exec, SimOptions, SlotWork};
use crate::phases;
use crate::pool::WorkerPool;
use crate::results::{RunDiagnostics, SimRun};
use crate::slots::SlotSpec;
use crate::SimError;
use avfs_atpg::PatternSet;
use avfs_delay::CharacterizedLibrary;
use avfs_netlist::Netlist;
use avfs_obs::{Metrics, Profile};
use avfs_waveform::LaneLayout;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Cache key of one compiled artifact: what the compile step actually
/// depends on — the netlist's structure, the characterized library's
/// fitted content, and a caller-chosen corner label (annotation corner,
/// characterization config, anything that distinguishes otherwise
/// identical inputs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CompileKey {
    netlist: u64,
    library: u64,
    corner: u64,
}

impl CompileKey {
    /// Builds a key from pre-computed content hashes and a corner label.
    pub fn new(netlist_hash: u64, library_hash: u64, corner: &str) -> CompileKey {
        let mut h = avfs_netlist::hash::Fnv1a::new();
        h.write_str(corner);
        CompileKey {
            netlist: netlist_hash,
            library: library_hash,
            corner: h.finish(),
        }
    }

    /// Convenience: keys a (netlist, characterized library, corner)
    /// triple by content hash.
    pub fn of(netlist: &Netlist, library: &CharacterizedLibrary, corner: &str) -> CompileKey {
        CompileKey::new(netlist.content_hash(), library.content_hash(), corner)
    }
}

/// A bounded LRU over a small linear-scan table — caches hold a handful
/// of multi-megabyte artifacts, so scan cost is noise and zero
/// dependencies beat an ordered map. Shared with the engine's
/// per-voltage delay-table cache
/// ([`CompiledNetlist::cached_delay_table`](crate::CompiledNetlist)).
#[derive(Debug)]
pub(crate) struct Lru<K, V> {
    cap: usize,
    tick: u64,
    entries: Vec<(K, V, u64)>,
}

impl<K: PartialEq + Copy, V> Lru<K, V> {
    pub(crate) fn new(cap: usize) -> Lru<K, V> {
        Lru {
            cap: cap.max(1),
            tick: 0,
            entries: Vec::new(),
        }
    }

    pub(crate) fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        self.entries
            .iter_mut()
            .find(|(k, _, _)| k == key)
            .map(|(_, v, t)| {
                *t = tick;
                &*v
            })
    }

    pub(crate) fn insert(&mut self, key: K, value: V) {
        self.tick += 1;
        if let Some(entry) = self.entries.iter_mut().find(|(k, _, _)| *k == key) {
            entry.1 = value;
            entry.2 = self.tick;
            return;
        }
        if self.entries.len() >= self.cap {
            // Evict the least recently used entry.
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, t))| *t)
                .map(|(i, _)| i)
                .expect("full cache has entries");
            self.entries.swap_remove(lru);
        }
        self.entries.push((key, value, self.tick));
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// A compile-and-launch hub: one parked worker pool plus bounded LRU
/// caches of compiled artifacts and characterized libraries, shared
/// across threads (`&self` everywhere; runs serialize internally).
///
/// ```
/// use avfs_core::{slots, BatchRunner, CompileKey, CompiledNetlist, SimOptions};
/// use avfs_atpg::PatternSet;
/// use avfs_delay::{ParameterSpace, StaticModel, TimingAnnotation};
/// use avfs_netlist::CellLibrary;
/// use std::sync::Arc;
///
/// let library = CellLibrary::nangate15_like();
/// let netlist = Arc::new(avfs_circuits::ripple_carry_adder(4, &library)?);
/// let runner = BatchRunner::new(1, 8);
/// let key = CompileKey::new(netlist.content_hash(), library.content_hash(), "typ");
/// let patterns = PatternSet::lfsr(netlist.inputs().len(), 4, 7);
/// let slot_list = slots::at_voltage(patterns.len(), 0.8);
/// for _ in 0..3 {
///     // Compiles once; the two later iterations are cache hits.
///     let compiled = runner.compile(key, || {
///         CompiledNetlist::compile(
///             Arc::clone(&netlist),
///             Arc::new(TimingAnnotation::zero(&netlist)),
///             Arc::new(StaticModel::new(ParameterSpace::paper())),
///         )
///     })?;
///     runner.run(&compiled, &patterns, &slot_list, &SimOptions::default())?;
/// }
/// assert_eq!(runner.compile_misses(), 1);
/// assert_eq!(runner.compile_hits(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct BatchRunner {
    /// Worker count resolved once at construction.
    threads: usize,
    /// The parked pool (`None` for single-threaded runners).
    pool: Option<WorkerPool>,
    /// Serializes runs: the epoch-barrier pool admits one run at a time.
    run_lock: Mutex<()>,
    /// Runs currently waiting on (or holding) the run lock — sampled
    /// into the queue-depth histogram as each run gets in line.
    waiting: AtomicU64,
    artifacts: Mutex<Lru<CompileKey, Arc<CompiledNetlist>>>,
    libraries: Mutex<Lru<u64, Arc<CharacterizedLibrary>>>,
    compile_hits: AtomicU64,
    compile_misses: AtomicU64,
    library_hits: AtomicU64,
    library_misses: AtomicU64,
    /// The runner's own instrument registry (cache and queue
    /// instruments; per-run engine profiles remain per run).
    metrics: Metrics,
}

impl BatchRunner {
    /// Creates a runner with `threads` workers (0 resolves to available
    /// parallelism once, here) and at most `cache_capacity` entries in
    /// each artifact cache (clamped to at least 1).
    pub fn new(threads: usize, cache_capacity: usize) -> BatchRunner {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        };
        BatchRunner {
            threads,
            pool: (threads > 1).then(|| WorkerPool::new(threads)),
            run_lock: Mutex::new(()),
            waiting: AtomicU64::new(0),
            artifacts: Mutex::new(Lru::new(cache_capacity)),
            libraries: Mutex::new(Lru::new(cache_capacity)),
            compile_hits: AtomicU64::new(0),
            compile_misses: AtomicU64::new(0),
            library_hits: AtomicU64::new(0),
            library_misses: AtomicU64::new(0),
            metrics: Metrics::new("engine"),
        }
    }

    /// The worker count resolved at construction.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Returns the cached artifact for `key`, or compiles it via
    /// `build` and caches the result. The build runs *outside* the cache
    /// lock, so a slow compile never blocks hits on other keys — and a
    /// failed (or panicking) compile caches nothing and poisons
    /// nothing: the next request for the same key simply builds again.
    ///
    /// # Errors
    ///
    /// Whatever `build` returns; the cache is left untouched on `Err`.
    pub fn compile(
        &self,
        key: CompileKey,
        build: impl FnOnce() -> Result<CompiledNetlist, SimError>,
    ) -> Result<Arc<CompiledNetlist>, SimError> {
        if let Some(hit) = self
            .artifacts
            .lock()
            .expect("artifact cache lock")
            .get(&key)
        {
            self.compile_hits.fetch_add(1, Ordering::Relaxed);
            self.metrics.add(phases::ENGINE_COMPILE_HITS, 1);
            return Ok(Arc::clone(hit));
        }
        self.compile_misses.fetch_add(1, Ordering::Relaxed);
        self.metrics.add(phases::ENGINE_COMPILE_MISSES, 1);
        let built = Arc::new(build()?);
        let mut cache = self.artifacts.lock().expect("artifact cache lock");
        cache.insert(key, Arc::clone(&built));
        self.metrics
            .set_gauge(phases::ENGINE_CACHE_OCCUPANCY, cache.len() as f64);
        Ok(built)
    }

    /// Returns the cached characterized library for `library_hash`, or
    /// builds and caches it — the SetupKit-shaped half of amortization:
    /// one characterization serves every corner and netlist that shares
    /// the library. Same non-caching failure semantics as
    /// [`BatchRunner::compile`].
    ///
    /// # Errors
    ///
    /// Whatever `build` returns; the cache is left untouched on `Err`.
    pub fn characterized<E>(
        &self,
        library_hash: u64,
        build: impl FnOnce() -> Result<CharacterizedLibrary, E>,
    ) -> Result<Arc<CharacterizedLibrary>, E> {
        if let Some(hit) = self
            .libraries
            .lock()
            .expect("library cache lock")
            .get(&library_hash)
        {
            self.library_hits.fetch_add(1, Ordering::Relaxed);
            self.metrics.add(phases::ENGINE_LIBRARY_HITS, 1);
            return Ok(Arc::clone(hit));
        }
        self.library_misses.fetch_add(1, Ordering::Relaxed);
        self.metrics.add(phases::ENGINE_LIBRARY_MISSES, 1);
        let built = Arc::new(build()?);
        self.libraries
            .lock()
            .expect("library cache lock")
            .insert(library_hash, Arc::clone(&built));
        Ok(built)
    }

    /// Artifact-cache hits so far.
    pub fn compile_hits(&self) -> u64 {
        self.compile_hits.load(Ordering::Relaxed)
    }

    /// Artifact-cache misses (= compiles actually performed) so far.
    pub fn compile_misses(&self) -> u64 {
        self.compile_misses.load(Ordering::Relaxed)
    }

    /// Library-cache hits so far.
    pub fn library_hits(&self) -> u64 {
        self.library_hits.load(Ordering::Relaxed)
    }

    /// Library-cache misses so far.
    pub fn library_misses(&self) -> u64 {
        self.library_misses.load(Ordering::Relaxed)
    }

    /// Snapshot of the runner's instrument registry
    /// (`engine.compile_{hits,misses}`, `engine.library_{hits,misses}`,
    /// `engine.batch_{runs,shards}`, queue depth, cache occupancy).
    pub fn profile(&self) -> Profile {
        self.metrics.snapshot()
    }

    /// Simulates `slots` over `patterns` on the parked pool, sharding
    /// the grid when it exceeds [`SimOptions::shard_slots`] (auto: one
    /// arena batch). Results — slots and diagnostics — are bit-for-bit
    /// identical to an unsharded [`CompiledNetlist::launch`] of the same
    /// grid (see the module docs for the stitching argument); sharded
    /// runs return `profile: None`.
    ///
    /// # Errors
    ///
    /// Same as [`CompiledNetlist::launch`], plus
    /// [`SimError::ThreadMismatch`] for a per-run
    /// [`SimOptions::threads`] override that differs from the runner's
    /// pool. [`SimError::AllSlotsFailed`] is decided over the whole
    /// stitched grid, not per shard.
    pub fn run(
        &self,
        compiled: &Arc<CompiledNetlist>,
        patterns: &PatternSet,
        slots: &[SlotSpec],
        options: &SimOptions,
    ) -> Result<SimRun, SimError> {
        if options.threads != 0 && options.threads != self.threads {
            return Err(SimError::ThreadMismatch {
                pool: self.threads,
                requested: options.threads,
            });
        }
        let options = SimOptions {
            threads: self.threads,
            ..options.clone()
        };
        // Whole-grid preparation and validation, once: global `slot {i}`
        // labels, one findings list, one Deny decision — shards below
        // run with validation pre-paid.
        let (work, slot_points) = compiled.prepare_uniform(patterns, slots)?;
        let validation = compiled.validate_launch(options.strict_validation, &slot_points)?;
        self.run_prepared(compiled, patterns, work, options, validation)
    }

    /// Simulates piecewise-scheduled scenarios (optionally Monte Carlo
    /// sampled) on the parked pool, sharding like [`BatchRunner::run`].
    /// The scenario reduction is computed over the whole stitched grid,
    /// so the returned [`SimRun::scenario`] summary is bit-identical to
    /// an unsharded [`CompiledNetlist::launch_scenarios`] of the same
    /// scenarios — see there for semantics and errors.
    pub fn run_scenarios(
        &self,
        compiled: &Arc<CompiledNetlist>,
        patterns: &PatternSet,
        scenarios: &[crate::scenario::ScenarioSpec],
        mc: Option<&crate::scenario::MonteCarlo>,
        capture_deadline_ps: Option<f64>,
        options: &SimOptions,
    ) -> Result<SimRun, SimError> {
        if options.threads != 0 && options.threads != self.threads {
            return Err(SimError::ThreadMismatch {
                pool: self.threads,
                requested: options.threads,
            });
        }
        let options = SimOptions {
            threads: self.threads,
            ..options.clone()
        };
        let (work, findings) = compiled.prepare_scenarios(patterns, scenarios, mc)?;
        let validation =
            compiled.validate_launch_extra(options.strict_validation, &[], &findings)?;
        let mut run = self.run_prepared(compiled, patterns, work, options, validation)?;
        run.scenario = Some(crate::scenario::summarize(
            &run.slots,
            mc,
            capture_deadline_ps,
        ));
        Ok(run)
    }

    /// The shared post-preparation run path: queue admission, shard
    /// split, stitched execution. `options` must already be pinned to
    /// the pool's thread count and `validation` pre-rendered over the
    /// whole grid.
    fn run_prepared(
        &self,
        compiled: &Arc<CompiledNetlist>,
        patterns: &PatternSet,
        work: Vec<SlotWork>,
        options: SimOptions,
        validation: Vec<String>,
    ) -> Result<SimRun, SimError> {
        let depth = self.waiting.fetch_add(1, Ordering::Relaxed);
        let _guard = self.run_lock.lock().expect("run lock");
        self.waiting.fetch_sub(1, Ordering::Relaxed);
        self.metrics.record(phases::ENGINE_BATCH_QUEUE_DEPTH, depth);
        self.metrics.add(phases::ENGINE_BATCH_RUNS, 1);

        let start = Instant::now();
        let nodes = compiled.netlist().num_nodes();
        let shard_slots = if options.shard_slots != 0 {
            options.shard_slots
        } else {
            // Auto: one round-0 arena batch per shard, so shard
            // boundaries coincide with the engine's internal batch
            // boundaries and sharding adds no extra batch splits.
            (options.waveform_budget / (nodes.max(1) * options.resolved_arena_capacity())).max(1)
        };
        if work.len() <= shard_slots {
            self.metrics.add(phases::ENGINE_BATCH_SHARDS, 1);
            return compiled.run_work(
                patterns,
                &work,
                &options,
                validation,
                &Exec {
                    pool: self.pool.as_ref(),
                    allow_total_loss: false,
                    prevalidated: None,
                },
            );
        }

        // Sharded execution: back-to-back sub-runs on the parked pool,
        // stitched in slot-major order.
        let mut stitched: Vec<crate::results::SlotResult> = Vec::with_capacity(work.len());
        let mut diag = RunDiagnostics {
            clamped_loads: compiled.clamped_loads(),
            validation_findings: validation,
            ..RunDiagnostics::default()
        };
        let mut node_evaluations = 0u64;
        let mut shards = 0u64;
        for (index, shard) in work.chunks(shard_slots).enumerate() {
            let base = index * shard_slots;
            let run = compiled.run_work(
                patterns,
                shard,
                &options,
                Vec::new(),
                &Exec {
                    pool: self.pool.as_ref(),
                    allow_total_loss: true,
                    prevalidated: None,
                },
            )?;
            shards += 1;
            node_evaluations += run.node_evaluations;
            // Shard-local slot indexes re-base to the global grid through
            // the shard's lane window; per-shard lists arrive sorted and
            // shard bases ascend, so plain concatenation stays sorted.
            let window =
                LaneLayout::new(options.resolved_lanes(), nodes.max(1), shard.len()).window(base);
            let d = run.diagnostics;
            diag.overflowed_slots
                .extend(d.overflowed_slots.iter().map(|&s| window.global_slot(s)));
            diag.panicked_slots
                .extend(d.panicked_slots.iter().map(|&s| window.global_slot(s)));
            diag.failed_slots
                .extend(d.failed_slots.iter().map(|&s| window.global_slot(s)));
            diag.slot_retries += d.slot_retries;
            diag.kernel_fallbacks += d.kernel_fallbacks;
            diag.deadline_aborts += d.deadline_aborts;
            diag.budget_denials += d.budget_denials;
            diag.watchdog_stalls += d.watchdog_stalls;
            diag.faults_injected += d.faults_injected;
            diag.peak_arena_occupancy = diag.peak_arena_occupancy.max(d.peak_arena_occupancy);
            diag.budget_tripped = diag.budget_tripped.or(d.budget_tripped);
            stitched.extend(run.slots);
        }
        self.metrics.add(phases::ENGINE_BATCH_SHARDS, shards);
        // Total loss is decided over the whole grid: a shard may lose
        // every one of its slots without failing the run.
        if stitched.iter().all(|s| !s.status.is_completed()) {
            return Err(SimError::AllSlotsFailed {
                slots: stitched.len(),
            });
        }
        Ok(SimRun {
            slots: stitched,
            elapsed: start.elapsed(),
            node_evaluations,
            diagnostics: diag,
            // Per-shard registries are not merged; sharded runs are
            // throughput runs, profile one shard-sized grid instead.
            profile: None,
            scenario: None,
        })
    }
}

impl std::fmt::Debug for BatchRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchRunner")
            .field("threads", &self.threads)
            .field("compile_hits", &self.compile_hits())
            .field("compile_misses", &self.compile_misses())
            .finish()
    }
}

// The runner is the intended cross-thread amortization point.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<BatchRunner>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slots::cross;
    use avfs_delay::{ParameterSpace, StaticModel, TimingAnnotation};
    use avfs_netlist::CellLibrary;

    /// Uniform nonzero gate delays: the adder's carry chain then
    /// staggers arrivals and glitches internal nets, giving the
    /// tight-arena scenario real multi-transition waveforms.
    fn adder_annotation(netlist: &Arc<avfs_netlist::Netlist>) -> TimingAnnotation {
        let mut ann = TimingAnnotation::zero(netlist);
        for (id, node) in netlist.iter() {
            if matches!(node.kind(), avfs_netlist::NodeKind::Gate(_)) {
                for pin in 0..node.fanin().len() {
                    ann.node_delays_mut(id)[pin] = avfs_waveform::PinDelays {
                        rise: 10.0,
                        fall: 7.0,
                    };
                }
            }
        }
        ann
    }

    fn compiled_adder() -> Arc<CompiledNetlist> {
        Arc::new(build_adder().unwrap())
    }

    fn adder_key(corner: &str) -> CompileKey {
        let library = CellLibrary::nangate15_like();
        let netlist = avfs_circuits::ripple_carry_adder(8, &library).unwrap();
        CompileKey::new(netlist.content_hash(), library.content_hash(), corner)
    }

    fn build_adder() -> Result<CompiledNetlist, SimError> {
        let library = CellLibrary::nangate15_like();
        let netlist = Arc::new(avfs_circuits::ripple_carry_adder(8, &library).unwrap());
        let annotation = adder_annotation(&netlist);
        CompiledNetlist::compile(
            Arc::clone(&netlist),
            Arc::new(annotation),
            Arc::new(StaticModel::new(ParameterSpace::paper())),
        )
    }

    /// The determinism matrix of ISSUE 8: shard sizes (single shard,
    /// arena-sized, prime-sized tail) × threads (1, 4) × lanes (1, 8),
    /// in a normal scenario and a tight-arena scenario that forces
    /// quarantine-and-retry inside shards — every cell bit-identical
    /// (slots, diagnostics, node evaluations) to the unsharded
    /// single-threaded reference.
    #[test]
    fn sharded_batch_matches_unsharded_matrix() {
        let compiled = compiled_adder();
        let patterns = PatternSet::lfsr(compiled.netlist().inputs().len(), 10, 7);
        let slot_list = cross(patterns.len(), &[0.7, 0.8]); // 20 slots
        let scenarios: [(&str, SimOptions); 2] = [
            ("normal", SimOptions::default()),
            (
                "tight-arena",
                SimOptions {
                    // Capacity 1 overflows glitchy carry-chain nets and
                    // exercises quarantine-and-retry per shard.
                    arena_capacity: 1,
                    ..SimOptions::default()
                },
            ),
        ];
        for (name, base) in scenarios {
            let reference = compiled
                .launch(
                    &patterns,
                    &slot_list,
                    &SimOptions {
                        threads: 1,
                        ..base.clone()
                    },
                )
                .unwrap();
            if name == "tight-arena" {
                assert!(
                    reference.diagnostics.slot_retries > 0,
                    "tight-arena scenario must exercise retries"
                );
            }
            for threads in [1usize, 4] {
                let runner = BatchRunner::new(threads, 4);
                for shard_slots in [slot_list.len(), 4, 3] {
                    for lanes in [1usize, 8] {
                        let run = runner
                            .run(
                                &compiled,
                                &patterns,
                                &slot_list,
                                &SimOptions {
                                    shard_slots,
                                    lanes,
                                    ..base.clone()
                                },
                            )
                            .unwrap();
                        let label =
                            format!("{name} threads={threads} shard={shard_slots} lanes={lanes}");
                        assert_eq!(run.slots, reference.slots, "{label}");
                        assert_eq!(run.diagnostics, reference.diagnostics, "{label}");
                        assert_eq!(run.node_evaluations, reference.node_evaluations, "{label}");
                    }
                }
            }
        }
    }

    /// The scenario-engine extension of the shard matrix: scheduled
    /// (droop) and Monte Carlo sampled grids stay bit-identical to the
    /// unsharded single-threaded [`CompiledNetlist::launch_scenarios`]
    /// across threads × shard sizes × lanes, summary included — the
    /// scenario reduction is computed over the stitched grid, so shard
    /// boundaries never show in the failure-probability curve.
    #[test]
    fn sharded_scenarios_match_unsharded_matrix() {
        use crate::scenario::{cross_schedules, MonteCarlo, Schedule};
        let compiled = compiled_adder();
        let patterns = PatternSet::lfsr(compiled.netlist().inputs().len(), 6, 11);
        let scenarios = cross_schedules(
            patterns.len(),
            &[
                Schedule::droop(0.8, 0.1, 20.0, 70.0),
                Schedule::constant(0.7),
            ],
        );
        let mc = MonteCarlo {
            samples: 2,
            variation: avfs_delay::VariationConfig {
                sigma: 0.06,
                max_deviation: 0.2,
                seed: 0xA11CE,
            },
        };
        let deadline = Some(120.0);
        let reference = compiled
            .launch_scenarios(
                &patterns,
                &scenarios,
                Some(&mc),
                deadline,
                &SimOptions {
                    threads: 1,
                    ..SimOptions::default()
                },
            )
            .unwrap();
        assert_eq!(reference.slots.len(), scenarios.len() * mc.samples);
        assert!(reference.scenario.is_some());
        for threads in [1usize, 4] {
            let runner = BatchRunner::new(threads, 4);
            for shard_slots in [reference.slots.len(), 5, 3] {
                for lanes in [1usize, 8] {
                    let run = runner
                        .run_scenarios(
                            &compiled,
                            &patterns,
                            &scenarios,
                            Some(&mc),
                            deadline,
                            &SimOptions {
                                shard_slots,
                                lanes,
                                ..SimOptions::default()
                            },
                        )
                        .unwrap();
                    let label = format!("threads={threads} shard={shard_slots} lanes={lanes}");
                    assert_eq!(run.slots, reference.slots, "{label}");
                    assert_eq!(run.diagnostics, reference.diagnostics, "{label}");
                    assert_eq!(run.node_evaluations, reference.node_evaluations, "{label}");
                    assert_eq!(run.scenario, reference.scenario, "{label}");
                }
            }
        }
    }

    /// The auto shard size follows the waveform budget: a budget that
    /// only fits a few slots per arena batch shards the grid at exactly
    /// those batch boundaries — still bit-identical to the unsharded
    /// large-budget reference.
    #[test]
    fn auto_sharding_follows_the_waveform_budget() {
        let compiled = compiled_adder();
        let nodes = compiled.netlist().num_nodes();
        let patterns = PatternSet::lfsr(compiled.netlist().inputs().len(), 6, 9);
        let slot_list = cross(patterns.len(), &[0.75, 0.9]); // 12 slots
        let reference = compiled
            .launch(
                &patterns,
                &slot_list,
                &SimOptions {
                    threads: 1,
                    ..SimOptions::default()
                },
            )
            .unwrap();
        let runner = BatchRunner::new(2, 4);
        // Budget fits 5 slots per arena batch → shards of 5, 5, 2.
        let run = runner
            .run(
                &compiled,
                &patterns,
                &slot_list,
                &SimOptions {
                    waveform_budget: nodes * SimOptions::default().resolved_arena_capacity() * 5,
                    ..SimOptions::default()
                },
            )
            .unwrap();
        assert_eq!(run.slots, reference.slots);
        assert_eq!(run.diagnostics, reference.diagnostics);
        assert!(run.profile.is_none(), "sharded runs do not merge profiles");
        let profile = runner.profile();
        assert_eq!(profile.counter(phases::ENGINE_BATCH_SHARDS), Some(3));
        assert_eq!(profile.counter(phases::ENGINE_BATCH_RUNS), Some(1));
    }

    #[test]
    fn thread_override_mismatch_is_rejected() {
        let compiled = compiled_adder();
        let patterns = PatternSet::lfsr(compiled.netlist().inputs().len(), 2, 7);
        let slot_list = cross(patterns.len(), &[0.8]);
        let runner = BatchRunner::new(2, 4);
        let err = runner
            .run(
                &compiled,
                &patterns,
                &slot_list,
                &SimOptions {
                    threads: 8,
                    ..SimOptions::default()
                },
            )
            .unwrap_err();
        assert_eq!(
            err,
            SimError::ThreadMismatch {
                pool: 2,
                requested: 8
            }
        );
    }

    #[test]
    fn cache_hit_miss_and_eviction() {
        let runner = BatchRunner::new(1, 2);
        let (k1, k2, k3) = (adder_key("fast"), adder_key("typ"), adder_key("slow"));
        assert_ne!(k1, k2, "corner label discriminates keys");
        let a = runner.compile(k1, build_adder).unwrap();
        let b = runner.compile(k1, build_adder).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "hit returns the cached artifact");
        assert_eq!((runner.compile_hits(), runner.compile_misses()), (1, 1));
        runner.compile(k2, build_adder).unwrap();
        // Touch k1 so k2 is the least recently used entry...
        runner.compile(k1, build_adder).unwrap();
        // ...and a third key evicts k2 from the 2-entry cache.
        runner.compile(k3, build_adder).unwrap();
        let c = runner.compile(k1, build_adder).unwrap();
        assert!(Arc::ptr_eq(&a, &c), "k1 survived eviction");
        runner.compile(k2, build_adder).unwrap(); // evicted → rebuilt
        assert_eq!((runner.compile_hits(), runner.compile_misses()), (3, 4));
    }

    #[test]
    fn cache_shares_one_arc_across_threads() {
        let runner = Arc::new(BatchRunner::new(1, 4));
        let key = adder_key("typ");
        let first = runner.compile(key, build_adder).unwrap();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let runner = Arc::clone(&runner);
                    let first = Arc::clone(&first);
                    scope.spawn(move || {
                        let got = runner.compile(key, build_adder).unwrap();
                        assert!(Arc::ptr_eq(&got, &first), "same artifact on every thread");
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        assert_eq!(runner.compile_hits(), 4);
        assert_eq!(runner.compile_misses(), 1);
    }

    #[test]
    fn failed_and_panicking_compiles_cache_nothing() {
        let runner = BatchRunner::new(1, 4);
        let key = adder_key("typ");
        let err = runner
            .compile(key, || Err(SimError::AnnotationMismatch))
            .unwrap_err();
        assert_eq!(err, SimError::AnnotationMismatch);
        // The build runs outside the cache lock, so a panicking compile
        // cannot poison the cache either.
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = runner.compile(key, || panic!("injected compile panic"));
        }));
        assert!(panicked.is_err());
        // Neither failure was cached: the next compile builds again and
        // succeeds, and from then on the key hits.
        let built = runner.compile(key, build_adder).unwrap();
        let again = runner.compile(key, build_adder).unwrap();
        assert!(Arc::ptr_eq(&built, &again));
        assert_eq!(runner.compile_hits(), 1);
        assert_eq!(runner.compile_misses(), 3);
    }

    #[test]
    fn library_cache_follows_the_same_protocol() {
        let runner = BatchRunner::new(1, 2);
        let library = CellLibrary::nangate15_like();
        let hash = library.content_hash();
        let build = || {
            let ids = [library.find("INV_X1").unwrap()];
            avfs_delay::characterize_library(
                &library,
                &avfs_spice::Technology::nm15(),
                &avfs_delay::characterize::CharacterizationConfig::fast(),
                Some(&ids),
            )
        };
        let a = runner.characterized(hash, build).unwrap();
        let b = runner.characterized(hash, build).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((runner.library_hits(), runner.library_misses()), (1, 1));
        // The characterized library's own content hash is stable and
        // usable as a CompileKey component.
        assert_eq!(a.content_hash(), b.content_hash());
        let key = CompileKey::of(
            &avfs_circuits::ripple_carry_adder(2, &library).unwrap(),
            &a,
            "typ",
        );
        assert_eq!(
            key,
            CompileKey::of(
                &avfs_circuits::ripple_carry_adder(2, &library).unwrap(),
                &a,
                "typ"
            )
        );
    }

    /// Content hashes are stable across rebuilds and sensitive to
    /// structural perturbation — the property the cache key rests on.
    #[test]
    fn content_hashes_discriminate() {
        let library = CellLibrary::nangate15_like();
        let a = avfs_circuits::ripple_carry_adder(8, &library).unwrap();
        let b = avfs_circuits::ripple_carry_adder(8, &library).unwrap();
        assert_eq!(a.content_hash(), b.content_hash(), "rebuild is stable");
        let c = avfs_circuits::ripple_carry_adder(9, &library).unwrap();
        assert_ne!(a.content_hash(), c.content_hash(), "structure changes hash");
        let zero = TimingAnnotation::zero(&a);
        let mut loads = vec![1.0; a.num_nodes()];
        loads[0] = 1.5;
        let perturbed = TimingAnnotation::from_parts(
            a.nodes()
                .iter()
                .map(|n| vec![avfs_waveform::PinDelays::default(); n.fanin().len()])
                .collect(),
            loads,
        );
        assert_ne!(
            zero.content_hash(),
            perturbed.content_hash(),
            "annotation content changes hash"
        );
    }
}
