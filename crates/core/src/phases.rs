//! Canonical instrument names recorded by the simulators when
//! [`SimOptions::profiling`](crate::SimOptions::profiling) is enabled.
//!
//! All phase durations are wall-clock nanoseconds measured on the
//! coordinator thread (workers are never instrumented, so profiling
//! cannot perturb the deterministic schedule). Tests and report tooling
//! should reference these constants rather than repeating string
//! literals; [`ENGINE_PHASES`] lists every phase a completed engine run
//! is guaranteed to report.

/// Whole engine run: batching, retry rounds, everything below.
pub const ENGINE_RUN: &str = "engine/run";

/// Level 0 of each batch: expanding pattern pairs into stimuli waveforms.
pub const ENGINE_STIMULI: &str = "engine/stimuli";

/// Per-(level, voltage group) delay-kernel evaluation — the
/// initialization phase of the online delay calculation (paper Sec.
/// IV.A). One call per simulated level.
pub const ENGINE_DELAY_KERNEL: &str = "engine/delay_kernel";

/// Per-level gate evaluation: the waveform-processing loop across the
/// level's (slot, gate) tasks, distributed over the persistent worker
/// pool by work stealing, with outputs written in place into disjoint
/// arena cells (no per-task waveform copies). One call per simulated
/// level.
pub const ENGINE_WAVEFORM_MERGE: &str = "engine/waveform_merge";

/// Per-level barrier: reconciling worker fault verdicts, copying
/// primary-output passthrough cells, and updating slot liveness after
/// the epoch completes. One call per simulated level.
pub const ENGINE_BARRIER: &str = "engine/barrier";

/// Coordinator wait time at the level barrier: after finishing its own
/// share of the level, the time spent blocked until the remaining pool
/// workers drain the work-stealing cursor. Recorded only when a pool is
/// active (resolved `threads > 1`), so it is *not* part of
/// [`ENGINE_PHASES`].
pub const ENGINE_POOL_IDLE: &str = "engine/pool_idle";

/// Per-batch waveform analysis (Fig. 2 step 4): output responses, latest
/// transition arrival, switching activity.
pub const ENGINE_ANALYSIS: &str = "engine/analysis";

/// Every phase a completed profiled engine run reports (each with at
/// least one call and nonzero total time).
pub const ENGINE_PHASES: [&str; 6] = [
    ENGINE_RUN,
    ENGINE_STIMULI,
    ENGINE_DELAY_KERNEL,
    ENGINE_WAVEFORM_MERGE,
    ENGINE_BARRIER,
    ENGINE_ANALYSIS,
];

/// Delay-kernel factor evaluations (two per annotated pin per live
/// voltage group per level: rise and fall).
pub const ENGINE_KERNEL_EVALS: &str = "engine.kernel_evals";

/// Circuit levels processed, summed over batches and retry rounds.
pub const ENGINE_LEVELS: &str = "engine.levels";

/// Slot batches launched (the analogue of GPU kernel launches).
pub const ENGINE_BATCHES: &str = "engine.batches";

/// Quarantine-and-retry rounds after round 0.
pub const ENGINE_RETRY_ROUNDS: &str = "engine.retry_rounds";

/// Histogram of per-batch peak `(slot, net)` arena occupancy
/// (transitions) — headroom against the configured capacity.
pub const ENGINE_ARENA_OCCUPANCY: &str = "engine.arena_occupancy";

/// Histogram of slots per launched batch.
pub const ENGINE_BATCH_SLOTS: &str = "engine.batch_slots";

/// Gate tasks resolved by the quiet-cell fast path instead of being
/// scheduled on the pool, summed over levels, batches and retry rounds.
/// Recorded only when [`SimOptions::activity_gating`] is enabled
/// (otherwise no task is ever skipped).
///
/// [`SimOptions::activity_gating`]: crate::SimOptions::activity_gating
pub const ENGINE_GATES_SKIPPED_QUIET: &str = "engine.gates_skipped_quiet";

/// Quiet `(slot, net)` cells (zero transitions over the simulation
/// window) observed at waveform analysis, summed over completed slots —
/// the activity headroom gating can exploit. Recorded regardless of
/// whether gating is enabled.
pub const ENGINE_QUIET_CELLS: &str = "engine.quiet_cells";

/// Histogram of per-level activity: for every gated level with at least
/// one (slot, gate) task, the percentage (0–100) of tasks that were
/// *active* — i.e. survived quiet-cell pruning and went to the pool.
/// Recorded only when [`SimOptions::activity_gating`] is enabled.
///
/// [`SimOptions::activity_gating`]: crate::SimOptions::activity_gating
pub const ENGINE_LEVEL_ACTIVITY: &str = "engine.level_activity";

/// The resolved lane width `L` of the run — how many slots the
/// lane-major arena packs per lane group (and per `u64` lane word).
/// Recorded once per run; `1` means the scalar slot-major path. See
/// [`SimOptions::lanes`](crate::SimOptions::lanes).
pub const ENGINE_LANES_WIDTH: &str = "engine.lanes_width";

/// Live lane groups scheduled, summed over levels, batches and retry
/// rounds — the row count of the lane-major task grid (`live lane
/// groups × gates`). A group stays scheduled while any of its lanes is
/// live; quarantined lanes are masked out of it rather than removed.
pub const ENGINE_LANES_GROUPS: &str = "engine.lanes_groups";

/// Lane-batched delay-kernel calls: `factor_lanes` invocations that
/// evaluated all live voltage groups of a level in one hand-unrolled
/// Horner pass (two per annotated pin per level: rise and fall). Falls
/// to 0 for levels where a kernel panic forced the scalar per-group
/// fallback.
pub const ENGINE_LANES_KERNEL_BATCHES: &str = "engine.lanes_kernel_batches";

/// Work-stealing chunk grabs beyond each worker's first in a level,
/// summed over the run — how often the atomic cursor rebalanced load
/// across the pool.
pub const ENGINE_POOL_STEALS: &str = "engine.pool_steals";

/// Histogram of gate tasks executed per pool worker over the whole run
/// (one sample per worker) — the load-balance fingerprint of the
/// work-stealing schedule.
pub const ENGINE_POOL_WORKER_TASKS: &str = "engine.pool_worker_tasks";

/// Faults fired by an armed fault plan during the run — always recorded
/// (0 on clean runs), so report tooling can assert a run was fault-free.
/// See [`SimOptions::fault_plan`](crate::SimOptions::fault_plan).
pub const ENGINE_FAULTS_INJECTED: &str = "engine.faults_injected";

/// Slots abandoned because the wall-clock
/// [`deadline`](crate::SimOptions::deadline) expired — always recorded
/// (0 on clean runs).
pub const ENGINE_DEADLINE_ABORTS: &str = "engine.deadline_aborts";

/// Quarantine-retry admissions denied by the
/// [`memory_budget`](crate::SimOptions::memory_budget) (or an injected
/// allocation-cap breach) — always recorded (0 on clean runs).
pub const ENGINE_BUDGET_DENIALS: &str = "engine.budget_denials";

/// Compiled-artifact cache hits on a
/// [`BatchRunner`](crate::BatchRunner) — launches that reused a cached
/// [`CompiledNetlist`](crate::CompiledNetlist) instead of compiling.
pub const ENGINE_COMPILE_HITS: &str = "engine.compile_hits";

/// Compiled-artifact cache misses — compiles actually performed by a
/// [`BatchRunner`](crate::BatchRunner). A compile-once workload shows
/// exactly 1 here regardless of run count.
pub const ENGINE_COMPILE_MISSES: &str = "engine.compile_misses";

/// Characterized-library cache hits on a
/// [`BatchRunner`](crate::BatchRunner).
pub const ENGINE_LIBRARY_HITS: &str = "engine.library_hits";

/// Characterized-library cache misses — characterizations actually
/// performed by a [`BatchRunner`](crate::BatchRunner).
pub const ENGINE_LIBRARY_MISSES: &str = "engine.library_misses";

/// Runs admitted through a [`BatchRunner`](crate::BatchRunner)'s run
/// queue.
pub const ENGINE_BATCH_RUNS: &str = "engine.batch_runs";

/// Shards executed across all [`BatchRunner`](crate::BatchRunner) runs
/// (1 per unsharded run).
pub const ENGINE_BATCH_SHARDS: &str = "engine.batch_shards";

/// Histogram of [`BatchRunner`](crate::BatchRunner) run-queue depth:
/// how many runs were already waiting on (or holding) the parked pool
/// when each run got in line — 0 means the pool was free.
pub const ENGINE_BATCH_QUEUE_DEPTH: &str = "engine.batch_queue_depth";

/// Gauge: compiled artifacts currently resident in a
/// [`BatchRunner`](crate::BatchRunner)'s bounded LRU.
pub const ENGINE_CACHE_OCCUPANCY: &str = "engine.cache_occupancy";

/// Per-voltage delay tables built on a
/// [`CompiledNetlist`](crate::CompiledNetlist) — the one-time scalar
/// kernel sweep whose evaluations are counted in
/// [`ENGINE_KERNEL_EVALS`]. At a steady AVFS operating-point set this
/// stays at the number of distinct supplies.
pub const ENGINE_DELAY_TABLE_BUILDS: &str = "engine.delay_table_builds";

/// Per-voltage delay-table cache hits — batches whose entire kernel
/// initialization was served from a
/// [`CompiledNetlist`](crate::CompiledNetlist)'s resident tables
/// (uniform assignments, no armed fault plan) instead of being
/// re-evaluated.
pub const ENGINE_DELAY_TABLE_HITS: &str = "engine.delay_table_hits";

/// Total schedule segments across a launch's slots (1 per static slot).
/// Recorded only when the work list carries a multi-segment schedule or
/// a Monte Carlo die: a constant-schedule scenario launch lowers to
/// static slots and stays bit-identical to the static run, profile
/// included (DESIGN.md §15).
pub const ENGINE_SCENARIO_SEGMENTS: &str = "engine.scenario_segments";

/// Monte Carlo sampled slots in a launch (slots carrying a process
/// variation die). Recorded under the same condition as
/// [`ENGINE_SCENARIO_SEGMENTS`]; 0 on a variation-free scenario launch
/// that still has multi-segment schedules.
pub const ENGINE_MC_SAMPLES: &str = "engine.mc_samples";

/// Hashed process-variation derate draws performed by the delay
/// initialization phase (two per annotated pin per sampled voltage
/// group per level: rise and fall). Coordinator-only, like every other
/// instrument; recorded only when at least one draw happened.
pub const ENGINE_VARIATION_DRAWS: &str = "engine.variation_draws";

/// Whole event-driven baseline run (all slots, serial).
pub const ED_SIMULATE: &str = "ed/simulate";

/// Committed events across all event-driven slots.
pub const ED_EVENTS: &str = "ed.events";

/// Histogram of event-queue depth, sampled once per simulation time step
/// (pending heap entries, cancelled ones included).
pub const ED_QUEUE_DEPTH: &str = "ed.queue_depth";

/// Committed events per second of event-driven simulation time.
pub const ED_EVENTS_PER_SEC: &str = "ed.events_per_sec";
