//! Time-domain AVFS scenarios: piecewise operating-point schedules and
//! Monte Carlo process variation (DESIGN.md §15).
//!
//! A *scenario* replays one stimulus pair under a [`Schedule`] — a
//! piecewise-constant supply trace of `(t_start, voltage)` [`Segment`]s
//! modeling DVFS governor steps, voltage-droop transients, or per-domain
//! supply sequences. The engine re-evaluates the delay kernel once per
//! segment (the per-voltage delay-table LRU still serves repeated
//! voltages), and every gate evaluation picks its segment by the *cause*
//! time: an input event at time `t` uses segment
//! `boundaries.partition_point(|b| *b <= t)`, so an event exactly at a
//! boundary sees the later segment's supply.
//!
//! Optionally, a [`MonteCarlo`] plan expands every scenario into `N`
//! sampled slots across the lane-parallel grid. Each sample `s` is one
//! "die": a deterministic per-`(sample, node, pin, polarity)` delay
//! derate drawn by hashing, never by a stateful RNG (see
//! [`avfs_delay::variation::derate`]), so draws are independent of the
//! schedule, of slot order, of sharding, and of the thread count —
//! replaying a seed replays the dice exactly. The run's
//! [`ScenarioSummary`] reduces the sampled slots into a
//! failure-probability-vs-voltage curve against a capture deadline.
//!
//! # Constant schedules are static runs
//!
//! A single-segment schedule lowers to the same internal voltage
//! assignment as a static slot before any kernel work happens, so a
//! constant-schedule scenario run is **bit-identical** to the
//! corresponding static run — same responses, same arrival times, same
//! profile — at every thread count, lane width, and shard split:
//!
//! ```
//! use std::sync::Arc;
//! use avfs_core::{scenario::{Schedule, ScenarioSpec}, TimeSimulator};
//! use avfs_delay::characterize::{characterize_library, CharacterizationConfig};
//! use avfs_netlist::CellLibrary;
//! use avfs_spice::Technology;
//! use avfs_atpg::PatternSet;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = CellLibrary::nangate15_like();
//! let netlist = Arc::new(avfs_circuits::c17(&lib)?);
//! let nand = lib.find("NAND2_X1").expect("cell exists");
//! let chars = characterize_library(
//!     &lib,
//!     &Technology::nm15(),
//!     &CharacterizationConfig::fast(),
//!     Some(&[nand]),
//! )?;
//! let sim = TimeSimulator::from_characterization(netlist, &chars)?;
//! let patterns = PatternSet::lfsr(5, 4, 42);
//!
//! // "Schedule" every pattern at a constant 0.8 V ...
//! let scenarios: Vec<ScenarioSpec> = (0..patterns.len())
//!     .map(|pattern| ScenarioSpec { pattern, schedule: Schedule::constant(0.8) })
//!     .collect();
//! let scheduled = sim.run_scenarios(&patterns, &scenarios, None, None, &Default::default())?;
//!
//! // ... and it is the 0.8 V static run, bit for bit.
//! let fixed = sim.run_at(&patterns, 0.8, &Default::default())?;
//! for (a, b) in scheduled.slots.iter().zip(&fixed.slots) {
//!     assert_eq!(a.responses, b.responses);
//!     assert_eq!(a.latest_output_transition_ps, b.latest_output_transition_ps);
//! }
//! # Ok(())
//! # }
//! ```

use crate::compile::CompiledNetlist;
use crate::engine::{
    Exec, NormalizedSchedule, SimOptions, SlotWork, VariationSample, VoltageAssign,
};
use crate::results::{SimRun, SlotResult};
use crate::SimError;
use avfs_atpg::PatternSet;
use avfs_delay::op::OperatingPoint;
use avfs_delay::VariationConfig;
use std::sync::Arc;

/// One schedule segment: from `t_start_ps` (inclusive) until the next
/// segment's start, the slot's supply is `voltage`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Segment start, ps. The first segment must start at `0.0`.
    pub t_start_ps: f64,
    /// Supply voltage over the segment, V.
    pub voltage: f64,
}

/// A piecewise-constant supply schedule: non-empty, anchored at
/// `t = 0 ps`, with strictly increasing finite start times and finite
/// positive voltages (lint rule `AVC-N010`). Structurally un-lowerable
/// schedules — empty, unsorted, or non-finite start times — are refused
/// with [`SimError::InvalidSchedule`] before any kernel work; an
/// unanchored first segment is repairable (lowering extends it back to
/// `t = 0`) and is routed through
/// [`SimOptions::strict_validation`](crate::SimOptions) like any other
/// launch finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// The segments in timeline order.
    pub segments: Vec<Segment>,
}

impl Schedule {
    /// A constant (single-segment) schedule — semantically identical to
    /// a static slot at `voltage`, and guaranteed bit-identical to one
    /// (the scenario layer lowers it to the same internal assignment).
    pub fn constant(voltage: f64) -> Schedule {
        Schedule {
            segments: vec![Segment {
                t_start_ps: 0.0,
                voltage,
            }],
        }
    }

    /// A schedule from `(t_start_ps, voltage)` steps in timeline order —
    /// the shape a DVFS governor trace arrives in.
    pub fn steps<I>(steps: I) -> Schedule
    where
        I: IntoIterator<Item = (f64, f64)>,
    {
        Schedule {
            segments: steps
                .into_iter()
                .map(|(t_start_ps, voltage)| Segment {
                    t_start_ps,
                    voltage,
                })
                .collect(),
        }
    }

    /// A three-segment voltage-droop transient: `nominal` until
    /// `t_onset_ps`, then `nominal - droop` until `t_recover_ps`, then
    /// `nominal` again — the classic supply-droop shape AVFS responds to.
    pub fn droop(nominal: f64, droop: f64, t_onset_ps: f64, t_recover_ps: f64) -> Schedule {
        Schedule::steps([
            (0.0, nominal),
            (t_onset_ps, nominal - droop),
            (t_recover_ps, nominal),
        ])
    }

    /// The representative voltage reported in the slot spec (the segment-0
    /// supply; `None` for an empty — malformed — schedule).
    pub fn representative_voltage(&self) -> Option<f64> {
        self.segments.first().map(|s| s.voltage)
    }
}

/// One scenario: which pattern pair to replay under which schedule — the
/// scheduled analogue of [`SlotSpec`](crate::SlotSpec).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Index into the [`PatternSet`] under simulation.
    pub pattern: usize,
    /// The supply schedule driving this circuit instance.
    pub schedule: Schedule,
}

/// Builds the cross product `patterns × schedules`, schedule-major — the
/// scheduled analogue of [`cross`](crate::slots::cross), so a batch
/// prefers filling with one schedule (one delay-table set) first.
pub fn cross_schedules(num_patterns: usize, schedules: &[Schedule]) -> Vec<ScenarioSpec> {
    let mut specs = Vec::with_capacity(num_patterns * schedules.len());
    for schedule in schedules {
        for pattern in 0..num_patterns {
            specs.push(ScenarioSpec {
                pattern,
                schedule: schedule.clone(),
            });
        }
    }
    specs
}

/// A Monte Carlo process-variation plan: expand every scenario into
/// `samples` dice drawn from `variation`. Sample 0 of seed `s` is the
/// same die in every launch, shard, and schedule — draws are pure hashes
/// of `(seed, sample, node, pin, polarity)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarlo {
    /// Dice per scenario (must be nonzero).
    pub samples: usize,
    /// The per-pin delay-derate distribution and its seed.
    pub variation: VariationConfig,
}

/// One point of the failure-probability-vs-voltage curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailurePoint {
    /// Representative (segment-0) supply voltage of the scenarios
    /// aggregated here, V.
    pub voltage: f64,
    /// Completed sampled slots at this voltage (failed slots — overflow,
    /// panic, deadline — are excluded from the denominator).
    pub samples: usize,
    /// Samples whose latest output transition missed the capture
    /// deadline.
    pub failures: usize,
    /// `failures / samples` (0 when no sample completed).
    pub p_fail: f64,
}

/// The scenario reduction attached to a [`SimRun`] by
/// [`CompiledNetlist::launch_scenarios`]: sampled slots grouped by
/// representative voltage into a failure-probability curve — the
/// V_min-style readout of a Monte Carlo AVFS exploration.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSummary {
    /// Monte Carlo dice per scenario (1 when no plan was given).
    pub samples_per_scenario: usize,
    /// The variation seed (`None` when no plan was given).
    pub seed: Option<u64>,
    /// The capture deadline failures were counted against (`None` = no
    /// deadline; every completed sample passes).
    pub capture_deadline_ps: Option<f64>,
    /// Curve points in first-appearance order of the representative
    /// voltages.
    pub points: Vec<FailurePoint>,
}

/// Reduces a run's slots into the failure-probability-vs-voltage curve.
/// Voltages within `1e-12` V collapse into one point; only completed
/// slots count as samples.
pub(crate) fn summarize(
    slots: &[SlotResult],
    mc: Option<&MonteCarlo>,
    capture_deadline_ps: Option<f64>,
) -> ScenarioSummary {
    let mut points: Vec<FailurePoint> = Vec::new();
    for slot in slots {
        let v = slot.spec.voltage;
        let idx = match points.iter().position(|p| (p.voltage - v).abs() <= 1e-12) {
            Some(i) => i,
            None => {
                points.push(FailurePoint {
                    voltage: v,
                    samples: 0,
                    failures: 0,
                    p_fail: 0.0,
                });
                points.len() - 1
            }
        };
        if slot.status.is_completed() {
            points[idx].samples += 1;
            let missed = matches!(
                (slot.latest_output_transition_ps, capture_deadline_ps),
                (Some(t), Some(deadline)) if t > deadline
            );
            if missed {
                points[idx].failures += 1;
            }
        }
    }
    for p in &mut points {
        if p.samples > 0 {
            p.p_fail = p.failures as f64 / p.samples as f64;
        }
    }
    ScenarioSummary {
        samples_per_scenario: mc.map_or(1, |m| m.samples),
        seed: mc.map(|m| m.variation.seed),
        capture_deadline_ps,
        points,
    }
}

impl CompiledNetlist {
    /// Validates a scenario launch and resolves it into the internal work
    /// list (per-slot voltage assignments plus Monte Carlo dice) and the
    /// schedule lint findings the launch validation routes through
    /// [`SimOptions::strict_validation`] — one finding set per scenario
    /// *segment*, not per die, so findings don't multiply with the sample
    /// count. Shared by [`CompiledNetlist::launch_scenarios`] and the
    /// sharding [`BatchRunner`](crate::batch::BatchRunner).
    ///
    /// Schedules with no lowering semantics — empty, non-finite, or
    /// non-increasing segment starts (`partition_point` needs a strictly
    /// sorted finite boundary list) — are refused with
    /// [`SimError::InvalidSchedule`] in *every* validation mode. The
    /// repairable findings — a first segment not anchored at `t = 0`
    /// (`AVC-N010`: lowering extends it back to the launch instant) and
    /// supplies outside the characterized voltage range (`AVC-D006`: the
    /// kernel clamps them onto the boundary) — are returned for the
    /// mode-dependent launch validation instead.
    ///
    /// Scenario `i`'s dice occupy slots `i * samples .. (i + 1) * samples`
    /// in launch order.
    pub(crate) fn prepare_scenarios(
        &self,
        patterns: &PatternSet,
        scenarios: &[ScenarioSpec],
        mc: Option<&MonteCarlo>,
    ) -> Result<(Vec<SlotWork>, Vec<avfs_check::Finding>), SimError> {
        if scenarios.is_empty() {
            return Err(SimError::EmptySlots);
        }
        if mc.is_some_and(|m| m.samples == 0) {
            return Err(SimError::EmptySlots);
        }
        let width = self.netlist.inputs().len();
        for pair in patterns {
            if pair.width() != width {
                return Err(SimError::PatternWidth {
                    expected: width,
                    got: pair.width(),
                });
            }
        }
        let space = self.model.space();
        let c_min = space.load_range().0;
        let (v_min, v_max) = space.voltage_range();
        let mut findings = Vec::new();
        let mut scenario_work: Vec<SlotWork> = Vec::with_capacity(scenarios.len());
        for (i, spec) in scenarios.iter().enumerate() {
            if spec.pattern >= patterns.len() {
                return Err(SimError::BadPatternIndex {
                    index: spec.pattern,
                    available: patterns.len(),
                });
            }
            // Voltage validity first (the same refusal a static slot
            // gets), then schedule shape via the shared AVC-N010 lint.
            for seg in &spec.schedule.segments {
                if !seg.voltage.is_finite() || seg.voltage <= 0.0 {
                    return Err(SimError::InvalidOperatingPoint {
                        slot: i,
                        voltage: seg.voltage,
                    });
                }
            }
            let segs = &spec.schedule.segments;
            // Structurally un-lowerable shapes have no simulation
            // semantics (the segment lookup's `partition_point` needs a
            // strictly sorted finite boundary list), so they hard-fail
            // regardless of `strict_validation`. Anything else the lint
            // flags is repairable and goes through the validation mode.
            let fatal = segs.is_empty()
                || segs.iter().any(|s| !s.t_start_ps.is_finite())
                || segs.windows(2).any(|w| w[1].t_start_ps <= w[0].t_start_ps);
            let pairs: Vec<(f64, f64)> = segs.iter().map(|s| (s.t_start_ps, s.voltage)).collect();
            let location = format!("scenario {i}");
            let shape = avfs_check::schedule::lint_schedule(&location, &pairs);
            if fatal {
                let first = shape.first().expect("fatal schedule has a lint finding");
                return Err(SimError::InvalidSchedule {
                    slot: i,
                    message: first.message.clone(),
                });
            }
            findings.extend(shape);
            findings.extend(avfs_check::schedule::lint_schedule_voltages(
                &location, &pairs, v_min, v_max,
            ));
            let v_norms: Vec<f64> = spec
                .schedule
                .segments
                .iter()
                .map(|seg| {
                    space
                        .normalize_clamped(OperatingPoint::new(seg.voltage, c_min))
                        .v
                })
                .collect();
            // A single-segment schedule lowers to the exact assignment a
            // static slot gets — the constant-schedule ≡ static identity
            // holds by construction, not by numerical luck.
            let assign = if v_norms.len() == 1 {
                VoltageAssign::Uniform(v_norms[0])
            } else {
                let boundaries: Vec<f64> = spec.schedule.segments[1..]
                    .iter()
                    .map(|s| s.t_start_ps)
                    .collect();
                VoltageAssign::Scheduled(Arc::new(NormalizedSchedule {
                    v_norms,
                    boundaries,
                }))
            };
            scenario_work.push(SlotWork {
                pattern: spec.pattern,
                assign,
                voltage: spec.schedule.segments[0].voltage,
                variation: None,
            });
        }
        let samples = mc.map_or(1, |m| m.samples);
        let mut work = Vec::with_capacity(scenario_work.len() * samples);
        for w in &scenario_work {
            for s in 0..samples {
                work.push(SlotWork {
                    variation: mc.map(|m| VariationSample {
                        config: m.variation,
                        sample: s as u32,
                    }),
                    ..w.clone()
                });
            }
        }
        Ok((work, avfs_check::cap_findings(findings)))
    }

    /// Simulates `scenarios` over `patterns`, each slot driven by its
    /// piecewise supply schedule, optionally expanded `mc.samples`-fold
    /// into Monte Carlo dice. The returned run carries one slot per die
    /// (scenario-major: scenario `i`'s dice are slots
    /// `i * samples .. (i + 1) * samples`) plus a [`ScenarioSummary`]
    /// reducing them into a failure-probability-vs-voltage curve against
    /// `capture_deadline_ps`.
    ///
    /// # Errors
    ///
    /// Everything [`CompiledNetlist::launch`] reports, plus
    /// [`SimError::InvalidSchedule`] for a structurally un-lowerable
    /// schedule (empty, unsorted, or with non-finite start times — lint
    /// rule `AVC-N010`), in every validation mode. Repairable findings —
    /// an unanchored first segment (`AVC-N010`) or supplies outside the
    /// characterized range (`AVC-D006`) — follow
    /// [`SimOptions::strict_validation`]: recorded in
    /// [`RunDiagnostics::validation_findings`](crate::RunDiagnostics)
    /// under `Warn`, refused as [`SimError::Validation`] under `Deny`.
    /// An empty scenario list or a zero-sample Monte Carlo plan is
    /// [`SimError::EmptySlots`].
    pub fn launch_scenarios(
        &self,
        patterns: &PatternSet,
        scenarios: &[ScenarioSpec],
        mc: Option<&MonteCarlo>,
        capture_deadline_ps: Option<f64>,
        options: &SimOptions,
    ) -> Result<SimRun, SimError> {
        self.launch_scenarios_with(
            patterns,
            scenarios,
            mc,
            capture_deadline_ps,
            options,
            Exec::default(),
        )
    }

    pub(crate) fn launch_scenarios_with(
        &self,
        patterns: &PatternSet,
        scenarios: &[ScenarioSpec],
        mc: Option<&MonteCarlo>,
        capture_deadline_ps: Option<f64>,
        options: &SimOptions,
        mut exec: Exec<'_>,
    ) -> Result<SimRun, SimError> {
        let (work, findings) = self.prepare_scenarios(patterns, scenarios, mc)?;
        let validation = match exec.prevalidated.take() {
            Some(v) => v,
            None => self.validate_launch_extra(options.strict_validation, &[], &findings)?,
        };
        let mut run = self.run_work(patterns, &work, options, validation, &exec)?;
        run.scenario = Some(summarize(&run.slots, mc, capture_deadline_ps));
        Ok(run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::results::SlotStatus;
    use crate::slots::SlotSpec;
    use avfs_waveform::SwitchingActivity;

    fn completed(voltage: f64, latest: Option<f64>) -> SlotResult {
        SlotResult {
            spec: SlotSpec {
                pattern: 0,
                voltage,
            },
            status: SlotStatus::Completed { retries: 0 },
            responses: vec![true],
            latest_output_transition_ps: latest,
            activity: SwitchingActivity::default(),
            waveforms: None,
        }
    }

    #[test]
    fn schedule_constructors() {
        assert_eq!(
            Schedule::constant(0.8).segments,
            vec![Segment {
                t_start_ps: 0.0,
                voltage: 0.8
            }]
        );
        let droop = Schedule::droop(0.8, 0.1, 40.0, 90.0);
        assert_eq!(
            droop
                .segments
                .iter()
                .map(|s| s.t_start_ps)
                .collect::<Vec<_>>(),
            vec![0.0, 40.0, 90.0]
        );
        assert!((droop.segments[1].voltage - 0.7).abs() < 1e-12);
        assert_eq!(droop.representative_voltage(), Some(0.8));
        assert_eq!(Schedule { segments: vec![] }.representative_voltage(), None);
    }

    #[test]
    fn cross_schedules_is_schedule_major() {
        let specs = cross_schedules(2, &[Schedule::constant(0.8), Schedule::constant(0.7)]);
        assert_eq!(specs.len(), 4);
        assert_eq!(specs[0].pattern, 0);
        assert_eq!(specs[1].pattern, 1);
        assert_eq!(specs[0].schedule.segments[0].voltage, 0.8);
        assert_eq!(specs[2].schedule.segments[0].voltage, 0.7);
    }

    #[test]
    fn summarize_groups_by_voltage_and_counts_misses() {
        let slots = vec![
            completed(0.8, Some(50.0)),
            completed(0.8, Some(120.0)),
            completed(0.7, Some(130.0)),
            // Voltage within tolerance collapses into the 0.7 point.
            completed(0.7 + 1e-13, Some(40.0)),
            // Failed slot: excluded from the denominator.
            SlotResult::failed(
                SlotSpec {
                    pattern: 0,
                    voltage: 0.7,
                },
                SlotStatus::Panicked,
            ),
        ];
        let s = summarize(&slots, None, Some(100.0));
        assert_eq!(s.samples_per_scenario, 1);
        assert_eq!(s.seed, None);
        assert_eq!(s.capture_deadline_ps, Some(100.0));
        assert_eq!(s.points.len(), 2);
        // First-appearance order.
        assert_eq!(s.points[0].voltage, 0.8);
        assert_eq!(s.points[0].samples, 2);
        assert_eq!(s.points[0].failures, 1);
        assert!((s.points[0].p_fail - 0.5).abs() < 1e-12);
        assert_eq!(s.points[1].samples, 2);
        assert_eq!(s.points[1].failures, 1);
    }

    #[test]
    fn summarize_without_deadline_never_fails() {
        let slots = vec![completed(0.8, Some(1e9))];
        let s = summarize(&slots, None, None);
        assert_eq!(s.points[0].failures, 0);
        assert_eq!(s.points[0].p_fail, 0.0);
    }

    #[test]
    fn summarize_records_mc_metadata() {
        let mc = MonteCarlo {
            samples: 16,
            variation: VariationConfig {
                sigma: 0.05,
                max_deviation: 0.2,
                seed: 7,
            },
        };
        let s = summarize(&[completed(0.8, Some(1.0))], Some(&mc), Some(2.0));
        assert_eq!(s.samples_per_scenario, 16);
        assert_eq!(s.seed, Some(7));
    }

    #[test]
    fn summarize_empty_voltage_group_reports_zero_p_fail() {
        let slots = vec![SlotResult::failed(
            SlotSpec {
                pattern: 0,
                voltage: 0.6,
            },
            SlotStatus::Overflowed { capacity: 64 },
        )];
        let s = summarize(&slots, None, Some(10.0));
        assert_eq!(s.points.len(), 1);
        assert_eq!(s.points[0].samples, 0);
        assert_eq!(s.points[0].p_fail, 0.0);
    }
}
