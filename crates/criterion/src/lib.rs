//! Minimal in-tree benchmarking shim.
//!
//! Implements the API-compatible subset of the `criterion` crate the
//! workspace's benches use — [`Criterion`], benchmark groups,
//! [`BenchmarkId`], [`Throughput`], [`black_box`], and the
//! `criterion_group!` / `criterion_main!` macros — so `cargo bench`
//! compiles and runs with **no registry access**. Measurement is
//! intentionally simple: a short warm-up followed by `sample_size`
//! timed samples, reporting mean time per iteration (and derived
//! element throughput when declared). No statistics, plots, or saved
//! baselines.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting
/// benchmarked work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared work per iteration, used to derive throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and parameter value.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

/// The per-benchmark timing loop handed to bench closures.
pub struct Bencher {
    samples: usize,
    /// Mean duration of one iteration over all samples.
    mean: Duration,
}

impl Bencher {
    /// Times `routine`, storing the mean iteration time.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up (also primes caches and lazy statics).
        black_box(routine());
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            total += start.elapsed();
            iters += 1;
        }
        self.mean = if iters == 0 {
            Duration::ZERO
        } else {
            total / iters as u32
        };
    }
}

fn report(group: &str, id: &str, mean: Duration, throughput: Option<Throughput>) {
    let label = if group.is_empty() {
        id.to_owned()
    } else {
        format!("{group}/{id}")
    };
    let per_iter = mean.as_secs_f64();
    match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            let meps = n as f64 / per_iter / 1e6;
            println!("bench {label:<40} {mean:>12.3?}/iter  {meps:>10.2} Melem/s");
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            let mbps = n as f64 / per_iter / 1e6;
            println!("bench {label:<40} {mean:>12.3?}/iter  {mbps:>10.2} MB/s");
        }
        _ => println!("bench {label:<40} {mean:>12.3?}/iter"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    criterion: &'c Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark of this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mean = self.criterion.measure(self.sample_size, f);
        report(&self.name, &id.label, mean, self.throughput);
        self
    }

    /// Runs one parameterized benchmark of this group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mean = self.criterion.measure(self.sample_size, |b| f(b, input));
        report(&self.name, &id.label, mean, self.throughput);
        self
    }

    /// Finishes the group (reporting happens eagerly; this is a no-op
    /// kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mean = self.measure(10, f);
        report("", &id.label, mean, None);
        self
    }

    fn measure(&self, samples: usize, mut f: impl FnMut(&mut Bencher)) -> Duration {
        let mut bencher = Bencher {
            samples,
            mean: Duration::ZERO,
        };
        f(&mut bencher);
        bencher.mean
    }
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_compiles_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        let mut runs = 0usize;
        group.bench_function("counts_iterations", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        // warm-up + 3 samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn standalone_bench_function() {
        let mut c = Criterion::default();
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }
}
