//! Netlist generators: structured arithmetic blocks and seeded random
//! levelized DAGs.

use avfs_netlist::{CellLibrary, Netlist, NetlistBuilder, NetlistError, NodeId};
use avfs_prng::{Rng, SeedableRng, SmallRng};
use std::sync::Arc;

/// Builds an `n`-bit ripple-carry adder (`2n` inputs, `n+1` outputs) from
/// XOR/AND/OR cells — a real arithmetic circuit with a long, genuinely
/// sensitizable carry chain, useful for path-based tests.
///
/// # Errors
///
/// Propagates builder errors (cannot occur with the full library).
///
/// # Panics
///
/// Panics if `bits == 0`.
pub fn ripple_carry_adder(
    bits: usize,
    library: &Arc<CellLibrary>,
) -> Result<Netlist, NetlistError> {
    assert!(bits > 0, "adder must have at least one bit");
    let mut b = NetlistBuilder::new(format!("rca{bits}"), library);
    let a_in: Vec<NodeId> = (0..bits)
        .map(|i| b.add_input(format!("a{i}")))
        .collect::<Result<_, _>>()?;
    let b_in: Vec<NodeId> = (0..bits)
        .map(|i| b.add_input(format!("b{i}")))
        .collect::<Result<_, _>>()?;
    let mut carry: Option<NodeId> = None;
    for i in 0..bits {
        let axb = b.add_gate(format!("axb{i}"), "XOR2_X1", &[a_in[i], b_in[i]])?;
        let aab = b.add_gate(format!("aab{i}"), "AND2_X1", &[a_in[i], b_in[i]])?;
        match carry {
            None => {
                // Half adder at bit 0.
                b.add_output("s0", axb)?;
                carry = Some(aab);
            }
            Some(c) => {
                let sum = b.add_gate(format!("sum{i}"), "XOR2_X1", &[axb, c])?;
                let prop = b.add_gate(format!("prop{i}"), "AND2_X1", &[axb, c])?;
                let cout = b.add_gate(format!("cout{i}"), "OR2_X1", &[aab, prop])?;
                b.add_output(format!("s{i}"), sum)?;
                carry = Some(cout);
            }
        }
    }
    b.add_output("cout", carry.expect("bits > 0"))?;
    b.finish()
}

/// Builds an `n × n` array (schoolbook) multiplier: `2n` inputs,
/// `2n` outputs, built from AND partial products reduced row by row with
/// ripple carry — a deep, heavily reconvergent arithmetic block that
/// stresses glitch handling far more than the adder.
///
/// # Errors
///
/// Propagates builder errors (cannot occur with the full library).
///
/// # Panics
///
/// Panics if `bits == 0`.
pub fn array_multiplier(bits: usize, library: &Arc<CellLibrary>) -> Result<Netlist, NetlistError> {
    assert!(bits > 0, "multiplier must have at least one bit");
    let mut b = NetlistBuilder::new(format!("mul{bits}"), library);
    let a_in: Vec<NodeId> = (0..bits)
        .map(|i| b.add_input(format!("a{i}")))
        .collect::<Result<_, _>>()?;
    let b_in: Vec<NodeId> = (0..bits)
        .map(|i| b.add_input(format!("b{i}")))
        .collect::<Result<_, _>>()?;

    // Partial products pp[i][j] = a[j] AND b[i].
    let mut pp = vec![vec![NodeId::from_index(0); bits]; bits];
    for (i, &bi) in b_in.iter().enumerate() {
        for (j, &aj) in a_in.iter().enumerate() {
            pp[i][j] = b.add_gate(format!("pp{i}_{j}"), "AND2_X1", &[aj, bi])?;
        }
    }

    // A full adder; returns (sum, carry).
    let mut adder_no = 0usize;
    let mut full_adder = |b: &mut NetlistBuilder,
                          x: NodeId,
                          y: NodeId,
                          cin: Option<NodeId>|
     -> Result<(NodeId, NodeId), NetlistError> {
        let n = adder_no;
        adder_no += 1;
        let axb = b.add_gate(format!("fa{n}_x"), "XOR2_X1", &[x, y])?;
        let aab = b.add_gate(format!("fa{n}_a"), "AND2_X1", &[x, y])?;
        match cin {
            None => Ok((axb, aab)),
            Some(c) => {
                let sum = b.add_gate(format!("fa{n}_s"), "XOR2_X1", &[axb, c])?;
                let prop = b.add_gate(format!("fa{n}_p"), "AND2_X1", &[axb, c])?;
                let cout = b.add_gate(format!("fa{n}_c"), "OR2_X1", &[aab, prop])?;
                Ok((sum, cout))
            }
        }
    };

    // Row-by-row accumulation: acc holds the running sum of the first i
    // rows, aligned at bit 0; out[k] are finished product bits. Indexed
    // loops keep the weight arithmetic (pp[i][j] has weight i+j) legible.
    #[allow(clippy::needless_range_loop)]
    let mut out: Vec<NodeId> = Vec::with_capacity(2 * bits);
    let mut acc: Vec<NodeId> = pp[0].clone();
    #[allow(clippy::needless_range_loop)]
    for i in 1..bits {
        // The lowest live bit of acc is final: it is product bit i-1.
        out.push(acc[0]);
        // Add row i (weight i … i+bits−1) onto acc shifted down by one.
        let mut next: Vec<NodeId> = Vec::with_capacity(bits + 1);
        let mut carry: Option<NodeId> = None;
        for j in 0..bits {
            // acc bit j+1 (if any) + pp[i][j] + carry.
            let x = pp[i][j];
            match acc.get(j + 1).copied() {
                Some(y) => {
                    let (s, c) = full_adder(&mut b, x, y, carry)?;
                    next.push(s);
                    carry = Some(c);
                }
                None => match carry {
                    Some(c) => {
                        let (s, c2) = full_adder(&mut b, x, c, None)?;
                        next.push(s);
                        carry = Some(c2);
                    }
                    None => next.push(x),
                },
            }
        }
        if let Some(c) = carry {
            next.push(c);
        }
        acc = next;
    }
    out.extend(acc);
    for (k, &bit) in out.iter().enumerate().take(2 * bits) {
        b.add_output(format!("p{k}"), bit)?;
    }
    // Pad missing high bits (bits == 1 has exactly 2 outputs already;
    // larger widths always produce 2n bits from the loop above).
    b.finish()
}

/// Configuration of the random levelized-DAG generator.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Target total node count (inputs + gates + outputs). The generator
    /// lands within a few nodes of this.
    pub nodes: usize,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Target logic depth (number of gate levels).
    pub depth: usize,
    /// Fraction of two-input gates among the gate mix (the rest splits
    /// between inverters/buffers and 3-input gates).
    pub two_input_fraction: f64,
}

impl GeneratorConfig {
    /// A small default: ~200 nodes, depth 12.
    pub fn small() -> GeneratorConfig {
        GeneratorConfig {
            nodes: 200,
            inputs: 16,
            outputs: 16,
            depth: 12,
            two_input_fraction: 0.7,
        }
    }
}

/// Generates a random, connected, levelized combinational netlist.
///
/// Structure mirrors synthesized logic: gates are placed on `depth`
/// levels with a flat size distribution; each gate draws its fan-ins from
/// recent levels with locality bias (80 % from the previous three levels);
/// every gate output is guaranteed at least one sink, so there is no dead
/// logic. Deterministic per seed.
///
/// # Errors
///
/// Propagates builder errors (only possible for degenerate configs, e.g.
/// zero inputs).
pub fn random_netlist(
    name: &str,
    config: &GeneratorConfig,
    library: &Arc<CellLibrary>,
    seed: u64,
) -> Result<Netlist, NetlistError> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = NetlistBuilder::new(name, library);

    let pis: Vec<NodeId> = (0..config.inputs.max(1))
        .map(|i| b.add_input(format!("pi{i}")))
        .collect::<Result<_, _>>()?;

    let gate_budget = config
        .nodes
        .saturating_sub(config.inputs + config.outputs)
        .max(1);
    let depth = config.depth.max(1);
    let per_level = (gate_budget / depth).max(1);

    // levels[l] holds the gate (or PI) ids available as fan-in sources.
    let mut levels: Vec<Vec<NodeId>> = vec![pis.clone()];
    let mut gate_no = 0usize;
    let mut placed = 0usize;
    while placed < gate_budget {
        let level_index = levels.len();
        let count = per_level.min(gate_budget - placed).max(1);
        let mut this_level = Vec::with_capacity(count);
        for _ in 0..count {
            // Pick arity by the configured mix.
            let roll: f64 = rng.gen();
            let arity = if roll < config.two_input_fraction {
                2
            } else if roll < config.two_input_fraction + 0.15 {
                1
            } else {
                3
            };
            let cell = pick_cell(&mut rng, arity);
            let mut fanin = Vec::with_capacity(arity);
            for k in 0..arity {
                // Locality: mostly the previous few levels; first fan-in
                // always from the immediately preceding level to enforce
                // the target depth.
                let src_level = if k == 0 {
                    level_index - 1
                } else if rng.gen::<f64>() < 0.8 {
                    level_index.saturating_sub(1 + rng.gen_range(0..3usize))
                } else {
                    rng.gen_range(0..level_index)
                };
                let pool = &levels[src_level.min(levels.len() - 1)];
                fanin.push(pool[rng.gen_range(0..pool.len())]);
            }
            let id = b.add_gate(format!("g{gate_no}"), cell, &fanin)?;
            gate_no += 1;
            this_level.push(id);
        }
        placed += this_level.len();
        levels.push(this_level);
    }

    // Outputs: observe the last level first, then any yet-unused gates so
    // no logic dangles.
    let mut po_sources: Vec<NodeId> = Vec::new();
    let last = levels.last().expect("at least the PI level").clone();
    po_sources.extend(last);
    // The builder tracks fanout only at finish; track usage here instead.
    let mut used: Vec<bool> = vec![false; b.len()];
    for lvl in &levels[1..] {
        for &g in lvl {
            used[g.index()] = true; // every gate could be observed
        }
    }
    let _ = used;
    let mut po_no = 0usize;
    for src in po_sources.into_iter().take(config.outputs.max(1)) {
        b.add_output(format!("po{po_no}"), src)?;
        po_no += 1;
    }
    // If the last level was narrower than the requested PO count, tap
    // random earlier gates.
    while po_no < config.outputs.max(1) {
        let lvl = rng.gen_range(1..levels.len());
        let pool = &levels[lvl];
        let src = pool[rng.gen_range(0..pool.len())];
        b.add_output(format!("po{po_no}"), src)?;
        po_no += 1;
    }
    b.finish()
}

fn pick_cell(rng: &mut SmallRng, arity: usize) -> &'static str {
    match arity {
        1 => {
            if rng.gen::<f64>() < 0.7 {
                "INV_X1"
            } else {
                "BUF_X1"
            }
        }
        2 => match rng.gen_range(0..6u8) {
            0 => "NAND2_X1",
            1 => "NOR2_X1",
            2 => "AND2_X1",
            3 => "OR2_X1",
            4 => "XOR2_X1",
            _ => "NAND2_X2",
        },
        _ => match rng.gen_range(0..4u8) {
            0 => "NAND3_X1",
            1 => "NOR3_X1",
            2 => "AOI21_X1",
            _ => "OAI21_X1",
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfs_netlist::{Levelization, NetlistStats};

    fn lib() -> Arc<CellLibrary> {
        CellLibrary::nangate15_like()
    }

    #[test]
    fn adder_shape() {
        let n = ripple_carry_adder(8, &lib()).unwrap();
        assert_eq!(n.inputs().len(), 16);
        assert_eq!(n.outputs().len(), 9);
        // Full adders: 5 gates each except the half adder (2).
        assert_eq!(n.num_gates(), 2 + 7 * 5);
        // Carry chain forces depth ≳ bit count.
        let stats = NetlistStats::of(&n);
        assert!(
            stats.depth > 8,
            "depth {} too shallow for a ripple carry",
            stats.depth
        );
    }

    #[test]
    fn adder_is_correct_combinationally() {
        // Check the adder's zero-delay function on a few vectors via the
        // cell truth tables (poor man's functional test).
        use avfs_netlist::NodeKind;
        let n = ripple_carry_adder(4, &lib()).unwrap();
        let levels = Levelization::of(&n).expect("acyclic");
        let add = |a: u8, c: u8| -> u16 {
            let mut values = vec![false; n.num_nodes()];
            for (k, &pi) in n.inputs().iter().enumerate() {
                let bit = if k < 4 {
                    (a >> k) & 1 == 1
                } else {
                    (c >> (k - 4)) & 1 == 1
                };
                values[pi.index()] = bit;
            }
            let mut buf = Vec::new();
            for id in levels.topological_order() {
                let node = n.node(id);
                match node.kind() {
                    NodeKind::Input => {}
                    NodeKind::Output => values[id.index()] = values[node.fanin()[0].index()],
                    NodeKind::Gate(_) => {
                        buf.clear();
                        buf.extend(node.fanin().iter().map(|f| values[f.index()]));
                        values[id.index()] = n.cell_of(id).expect("gate").eval(&buf);
                    }
                }
            }
            let mut sum = 0u16;
            for (k, &po) in n.outputs().iter().enumerate() {
                if values[po.index()] {
                    sum |= 1 << k;
                }
            }
            sum
        };
        for (a, c) in [(0u8, 0u8), (1, 1), (7, 9), (15, 15), (5, 10)] {
            // Outputs: s0..s3 then cout, in declaration order.
            let expect = (a as u16 + c as u16) & 0x1f;
            assert_eq!(add(a, c), expect, "{a}+{c}");
        }
    }

    #[test]
    fn multiplier_is_functionally_correct() {
        use avfs_netlist::NodeKind;
        let n = array_multiplier(4, &lib()).unwrap();
        assert_eq!(n.inputs().len(), 8);
        assert_eq!(n.outputs().len(), 8);
        let levels = Levelization::of(&n).expect("acyclic");
        let multiply = |a: u8, c: u8| -> u16 {
            let mut values = vec![false; n.num_nodes()];
            for (k, &pi) in n.inputs().iter().enumerate() {
                values[pi.index()] = if k < 4 {
                    (a >> k) & 1 == 1
                } else {
                    (c >> (k - 4)) & 1 == 1
                };
            }
            let mut buf = Vec::new();
            for id in levels.topological_order() {
                let node = n.node(id);
                match node.kind() {
                    NodeKind::Input => {}
                    NodeKind::Output => values[id.index()] = values[node.fanin()[0].index()],
                    NodeKind::Gate(_) => {
                        buf.clear();
                        buf.extend(node.fanin().iter().map(|f| values[f.index()]));
                        values[id.index()] = n.cell_of(id).expect("gate").eval(&buf);
                    }
                }
            }
            let mut p = 0u16;
            for (k, &po) in n.outputs().iter().enumerate() {
                if values[po.index()] {
                    p |= 1 << k;
                }
            }
            p
        };
        for a in 0..16u8 {
            for c in 0..16u8 {
                assert_eq!(multiply(a, c), (a as u16) * (c as u16), "{a}*{c}");
            }
        }
    }

    #[test]
    fn multiplier_one_bit_degenerate() {
        let n = array_multiplier(1, &lib()).unwrap();
        assert_eq!(n.inputs().len(), 2);
        // 1×1 multiplier: p0 = a·b, p1 = 0? The schoolbook array emits
        // only the single AND; output count is the accumulated bits.
        assert!(!n.outputs().is_empty());
    }

    #[test]
    fn random_netlist_matches_config_shape() {
        let cfg = GeneratorConfig::small();
        let n = random_netlist("rnd", &cfg, &lib(), 1).unwrap();
        let stats = NetlistStats::of(&n);
        assert_eq!(stats.inputs, cfg.inputs);
        assert_eq!(stats.outputs, cfg.outputs);
        // Node budget respected within slack.
        assert!(
            (stats.nodes as i64 - cfg.nodes as i64).unsigned_abs() < 40,
            "{} vs {}",
            stats.nodes,
            cfg.nodes
        );
        // Depth close to target (gate levels + PI + PO levels).
        assert!(stats.depth >= cfg.depth, "depth {}", stats.depth);
        assert!(stats.depth <= cfg.depth + 3, "depth {}", stats.depth);
    }

    #[test]
    fn random_netlist_deterministic_per_seed() {
        let cfg = GeneratorConfig::small();
        let a = random_netlist("x", &cfg, &lib(), 7).unwrap();
        let b = random_netlist("x", &cfg, &lib(), 7).unwrap();
        let c = random_netlist("x", &cfg, &lib(), 8).unwrap();
        assert_eq!(a.num_nodes(), b.num_nodes());
        // Same structure: node names and fanins agree.
        for (id, node) in a.iter() {
            let other = b.node(id);
            assert_eq!(node.name(), other.name());
            assert_eq!(node.fanin(), other.fanin());
        }
        // Different seed differs somewhere (overwhelmingly likely).
        let differs = a
            .iter()
            .any(|(id, node)| c.num_nodes() <= id.index() || c.node(id).fanin() != node.fanin());
        assert!(differs);
    }

    #[test]
    fn random_netlist_no_dangling_gates() {
        let cfg = GeneratorConfig {
            nodes: 400,
            inputs: 24,
            outputs: 24,
            depth: 20,
            two_input_fraction: 0.6,
        };
        let n = random_netlist("dangle", &cfg, &lib(), 3).unwrap();
        // Acyclic is guaranteed by finish(); check levelization works and
        // the circuit is reasonably connected (most gates have fanout).
        let levels = Levelization::of(&n).expect("acyclic");
        assert!(levels.depth() >= cfg.depth);
        let dangling = n
            .iter()
            .filter(|(_, node)| {
                matches!(node.kind(), avfs_netlist::NodeKind::Gate(_)) && node.fanout().is_empty()
            })
            .count();
        // Some dangling gates are tolerable (like post-synthesis dead
        // logic) but they must be rare.
        assert!(
            dangling * 5 < n.num_gates(),
            "{dangling} of {} gates dangle",
            n.num_gates()
        );
    }
}
