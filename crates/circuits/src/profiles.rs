//! The circuit roster of Tables I and II.
//!
//! For every design the paper evaluates, this module records the published
//! statistics (node count, test-pair count, nominal longest-path delay)
//! and can synthesize a seeded stand-in netlist reproducing the profile's
//! shape at a configurable scale. Scale 1.0 builds the full node count;
//! the performance benches default to a smaller scale so the comparison
//! suite completes on modest hardware (the *relative* results are what
//! the reproduction tracks — see `EXPERIMENTS.md`).

use crate::generate::{random_netlist, GeneratorConfig};
use avfs_netlist::{CellLibrary, Netlist, NetlistError};
use std::sync::Arc;

/// Published statistics of one Table-I/II design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircuitProfile {
    /// Design name as printed in the paper.
    pub name: &'static str,
    /// Nodes (cells + inputs + outputs), Table I column 2.
    pub nodes: usize,
    /// Transition test pattern pairs, Table I column 3.
    pub test_pairs: usize,
    /// Longest path delay at nominal corner from the paper's STA tool,
    /// Table II column 2, in ps (`None` where the paper prints no value).
    pub longest_path_ps: Option<f64>,
    /// Whether the paper marks the design with `*` (all reported longest
    /// paths were false paths; no timing-aware top-off patterns).
    pub false_paths_only: bool,
}

/// All fifteen designs of Tables I and II, in table order.
pub const PAPER_PROFILES: &[CircuitProfile] = &[
    CircuitProfile {
        name: "s38417",
        nodes: 18_999,
        test_pairs: 173,
        longest_path_ps: Some(145.3),
        false_paths_only: false,
    },
    CircuitProfile {
        name: "s38584",
        nodes: 23_053,
        test_pairs: 194,
        longest_path_ps: Some(610.9),
        false_paths_only: false,
    },
    CircuitProfile {
        name: "b17",
        nodes: 42_779,
        test_pairs: 818,
        longest_path_ps: Some(571.2),
        false_paths_only: true,
    },
    CircuitProfile {
        name: "b18",
        nodes: 125_305,
        test_pairs: 961,
        longest_path_ps: Some(708.7),
        false_paths_only: true,
    },
    CircuitProfile {
        name: "b19",
        nodes: 250_232,
        test_pairs: 1_916,
        longest_path_ps: Some(744.1),
        false_paths_only: true,
    },
    CircuitProfile {
        name: "b22",
        nodes: 27_847,
        test_pairs: 692,
        longest_path_ps: Some(606.2),
        false_paths_only: false,
    },
    CircuitProfile {
        name: "p35k",
        nodes: 47_997,
        test_pairs: 3_298,
        longest_path_ps: Some(275.5),
        false_paths_only: false,
    },
    CircuitProfile {
        name: "p45k",
        nodes: 44_098,
        test_pairs: 2_320,
        longest_path_ps: Some(2_234.0),
        false_paths_only: false,
    },
    CircuitProfile {
        name: "p100k",
        nodes: 96_172,
        test_pairs: 2_211,
        longest_path_ps: Some(2_234.0),
        false_paths_only: false,
    },
    CircuitProfile {
        name: "p141k",
        nodes: 178_063,
        test_pairs: 995,
        longest_path_ps: Some(640.0),
        false_paths_only: false,
    },
    CircuitProfile {
        name: "p418k",
        nodes: 440_277,
        test_pairs: 1_516,
        longest_path_ps: Some(1_537.0),
        false_paths_only: false,
    },
    CircuitProfile {
        name: "p500k",
        nodes: 527_006,
        test_pairs: 3_820,
        longest_path_ps: Some(660.8),
        false_paths_only: false,
    },
    CircuitProfile {
        name: "p533k",
        nodes: 676_611,
        test_pairs: 1_940,
        longest_path_ps: Some(2_348.0),
        false_paths_only: false,
    },
    CircuitProfile {
        name: "p951k",
        nodes: 1_090_419,
        test_pairs: 4_080,
        longest_path_ps: Some(708.0),
        false_paths_only: false,
    },
    CircuitProfile {
        name: "p1522k",
        nodes: 1_088_421,
        test_pairs: 8_021,
        longest_path_ps: None,
        false_paths_only: true,
    },
];

impl CircuitProfile {
    /// Looks up a profile by design name.
    pub fn find(name: &str) -> Option<&'static CircuitProfile> {
        PAPER_PROFILES.iter().find(|p| p.name == name)
    }

    /// Synthesizes a stand-in netlist with this profile's shape at the
    /// given `scale` (1.0 = the paper's node count). Deterministic per
    /// profile: the seed is derived from the design name.
    ///
    /// I/O width scales with the square root of the node count (typical
    /// Rent-style scaling for flat scan designs); depth scales
    /// logarithmically, anchored so the million-node designs get ~60
    /// logic levels.
    ///
    /// # Errors
    ///
    /// Propagates generator errors (degenerate scales only).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not a positive finite number.
    pub fn synthesize(
        &self,
        scale: f64,
        library: &Arc<CellLibrary>,
    ) -> Result<Netlist, NetlistError> {
        assert!(
            scale.is_finite() && scale > 0.0,
            "scale must be positive and finite"
        );
        let nodes = ((self.nodes as f64 * scale) as usize).max(64);
        let io = ((nodes as f64).sqrt() * 1.2) as usize;
        let inputs = io.clamp(8, 4096);
        let outputs = io.clamp(8, 4096);
        let depth = (8.0 + 3.8 * (nodes as f64).ln()).round() as usize;
        let seed = self.name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100000001b3)
        });
        let config = GeneratorConfig {
            nodes,
            inputs,
            outputs,
            depth,
            two_input_fraction: 0.72,
        };
        random_netlist(self.name, &config, library, seed)
    }

    /// The number of pattern pairs to simulate at `scale` (at least 8, at
    /// most the paper's count).
    pub fn scaled_pairs(&self, scale: f64) -> usize {
        ((self.test_pairs as f64 * scale) as usize).clamp(8, self.test_pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfs_netlist::NetlistStats;

    #[test]
    fn roster_matches_table_one() {
        assert_eq!(PAPER_PROFILES.len(), 15);
        let s38417 = CircuitProfile::find("s38417").unwrap();
        assert_eq!(s38417.nodes, 18_999);
        assert_eq!(s38417.test_pairs, 173);
        assert!(!s38417.false_paths_only);
        let b17 = CircuitProfile::find("b17").unwrap();
        assert!(b17.false_paths_only);
        let p1522k = CircuitProfile::find("p1522k").unwrap();
        assert_eq!(p1522k.longest_path_ps, None);
        assert!(CircuitProfile::find("nope").is_none());
        // Total nodes ≈ 4.68M, a sanity anchor against typos.
        let total: usize = PAPER_PROFILES.iter().map(|p| p.nodes).sum();
        assert_eq!(total, 4_677_279);
    }

    #[test]
    fn synthesize_small_scale() {
        let lib = CellLibrary::nangate15_like();
        let p = CircuitProfile::find("s38417").unwrap();
        let n = p.synthesize(0.05, &lib).unwrap();
        let stats = NetlistStats::of(&n);
        let target = (p.nodes as f64 * 0.05) as usize;
        assert!(
            (stats.nodes as i64 - target as i64).unsigned_abs() < target as u64 / 5 + 64,
            "nodes {} vs target {target}",
            stats.nodes
        );
        assert_eq!(n.name(), "s38417");
    }

    #[test]
    fn synthesize_deterministic() {
        let lib = CellLibrary::nangate15_like();
        let p = CircuitProfile::find("b17").unwrap();
        let a = p.synthesize(0.01, &lib).unwrap();
        let b = p.synthesize(0.01, &lib).unwrap();
        assert_eq!(a.num_nodes(), b.num_nodes());
        for (id, node) in a.iter() {
            assert_eq!(node.fanin(), b.node(id).fanin());
        }
    }

    #[test]
    fn scaled_pairs_clamped() {
        let p = CircuitProfile::find("p1522k").unwrap();
        assert_eq!(p.scaled_pairs(1.0), 8_021);
        assert_eq!(p.scaled_pairs(0.001), 8); // floor
        assert_eq!(p.scaled_pairs(100.0), 8_021); // cap at paper count
    }
}
