//! Benchmark circuits and the Table-I/II design profiles.
//!
//! The paper evaluates on ISCAS'89 / ITC'99 netlists and proprietary
//! industrial designs (p35k … p1522k) prepared with a commercial synthesis
//! flow — none of which are redistributable. This crate supplies
//! structurally comparable stand-ins:
//!
//! * [`profiles`] — the exact circuit roster of Tables I/II (name, node
//!   count, pattern-pair count, reported longest path) plus a seeded
//!   synthesizer that reproduces each profile's *shape* (node count, I/O
//!   width, depth, fan-in mix) at any scale factor,
//! * [`generate`] — structured generators (ripple-carry adders, random
//!   levelized DAGs) used by tests and examples,
//! * the embedded ISCAS'85 [`C17_BENCH`] text via [`c17`].

#![forbid(unsafe_code)]

pub mod generate;
pub mod profiles;

pub use generate::{array_multiplier, random_netlist, ripple_carry_adder, GeneratorConfig};
pub use profiles::{CircuitProfile, PAPER_PROFILES};

use avfs_netlist::bench::{parse_bench, BenchOptions, C17_BENCH};
use avfs_netlist::{CellLibrary, Netlist, NetlistError};
use std::sync::Arc;

/// Parses the embedded ISCAS'85 c17 benchmark over `library`.
///
/// # Errors
///
/// Propagates parser errors (cannot occur for the embedded text with the
/// full synthetic library).
pub fn c17(library: &Arc<CellLibrary>) -> Result<Netlist, NetlistError> {
    parse_bench("c17", C17_BENCH, library, &BenchOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c17_loads() {
        let lib = CellLibrary::nangate15_like();
        let n = c17(&lib).unwrap();
        assert_eq!(n.num_nodes(), 13);
    }
}
