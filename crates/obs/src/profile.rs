//! Immutable metric snapshots: plain data, `Display`, JSON round-trip.

use crate::histogram::HistogramStats;
use crate::json::{Json, JsonError};
use std::fmt;

/// Schema identifier embedded in serialized profiles.
pub const PROFILE_SCHEMA: &str = "avfs-profile/1";

/// An immutable snapshot of a [`Metrics`](crate::Metrics) registry.
///
/// All durations are nanoseconds; other units are declared by each
/// instrument's name (e.g. `engine.arena_occupancy` counts transitions,
/// `ed.queue_depth` counts pending events). Entries are sorted
/// lexicographically by name, so two snapshots of identical activity
/// compare equal structurally.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// The registry name (e.g. `"engine"`, `"perf_report"`).
    pub name: String,
    /// Per-phase wall-clock aggregates, keyed by `/`-separated span path.
    pub phases: Vec<PhaseStats>,
    /// Monotonic event counts.
    pub counters: Vec<CounterStat>,
    /// Last-write-wins measurements.
    pub gauges: Vec<GaugeStat>,
    /// Value distributions.
    pub histograms: Vec<HistogramStat>,
}

/// Wall-clock aggregate for one span path.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStats {
    /// `/`-separated span path (e.g. `"engine/run/level/merge"`).
    pub path: String,
    /// Number of recorded spans.
    pub calls: u64,
    /// Sum of span durations, nanoseconds.
    pub total_ns: u64,
    /// Shortest span, nanoseconds.
    pub min_ns: u64,
    /// Longest span, nanoseconds.
    pub max_ns: u64,
}

impl PhaseStats {
    /// Mean span duration in nanoseconds (0 when no calls).
    pub fn mean_ns(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.calls as f64
        }
    }
}

/// Final value of one monotonic counter.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterStat {
    /// Counter name (e.g. `"engine.kernel_evals"`).
    pub name: String,
    /// Final count.
    pub value: u64,
}

/// Final value of one gauge.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeStat {
    /// Gauge name (e.g. `"ed.events_per_sec"`).
    pub name: String,
    /// Last written value.
    pub value: f64,
}

/// Summary statistics of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramStat {
    /// Histogram name; a `_ns` suffix means the unit is nanoseconds.
    pub name: String,
    /// Count / min / max / mean / p50 / p99 of the recorded values.
    pub stats: HistogramStats,
}

impl Profile {
    /// Phase lookup by full span path.
    pub fn phase(&self, path: &str) -> Option<&PhaseStats> {
        self.phases.iter().find(|p| p.path == path)
    }

    /// Counter lookup by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Gauge lookup by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Histogram lookup by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramStats> {
        self.histograms
            .iter()
            .find(|h| h.name == name)
            .map(|h| &h.stats)
    }

    /// Serializes to a schema-versioned JSON value (`avfs-profile/1`).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str(PROFILE_SCHEMA.into())),
            ("name".into(), Json::Str(self.name.clone())),
            (
                "phases".into(),
                Json::Arr(
                    self.phases
                        .iter()
                        .map(|p| {
                            Json::Obj(vec![
                                ("path".into(), Json::Str(p.path.clone())),
                                ("calls".into(), Json::Num(p.calls as f64)),
                                ("total_ns".into(), Json::Num(p.total_ns as f64)),
                                ("min_ns".into(), Json::Num(p.min_ns as f64)),
                                ("max_ns".into(), Json::Num(p.max_ns as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "counters".into(),
                Json::Arr(
                    self.counters
                        .iter()
                        .map(|c| {
                            Json::Obj(vec![
                                ("name".into(), Json::Str(c.name.clone())),
                                ("value".into(), Json::Num(c.value as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "gauges".into(),
                Json::Arr(
                    self.gauges
                        .iter()
                        .map(|g| {
                            Json::Obj(vec![
                                ("name".into(), Json::Str(g.name.clone())),
                                ("value".into(), Json::Num(g.value)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "histograms".into(),
                Json::Arr(
                    self.histograms
                        .iter()
                        .map(|h| {
                            Json::Obj(vec![
                                ("name".into(), Json::Str(h.name.clone())),
                                ("count".into(), Json::Num(h.stats.count as f64)),
                                ("min".into(), Json::Num(h.stats.min as f64)),
                                ("max".into(), Json::Num(h.stats.max as f64)),
                                ("mean".into(), Json::Num(h.stats.mean)),
                                ("p50".into(), Json::Num(h.stats.p50 as f64)),
                                ("p99".into(), Json::Num(h.stats.p99 as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Deserializes a value produced by [`Profile::to_json`], checking the
    /// schema tag.
    pub fn from_json(value: &Json) -> Result<Profile, JsonError> {
        let fail = |message: &str| JsonError {
            offset: 0,
            message: message.to_owned(),
        };
        let schema = value
            .get("schema")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("missing schema tag"))?;
        if schema != PROFILE_SCHEMA {
            return Err(fail(&format!("unsupported schema '{schema}'")));
        }
        let name = value
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("missing profile name"))?
            .to_owned();
        let req_u64 = |obj: &Json, key: &str| {
            obj.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| fail(&format!("missing/invalid field '{key}'")))
        };
        let req_f64 = |obj: &Json, key: &str| {
            obj.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| fail(&format!("missing/invalid field '{key}'")))
        };
        let req_str = |obj: &Json, key: &str| {
            obj.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| fail(&format!("missing/invalid field '{key}'")))
        };
        let arr = |key: &str| {
            value
                .get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| fail(&format!("missing array '{key}'")))
        };
        let mut phases = Vec::new();
        for p in arr("phases")? {
            phases.push(PhaseStats {
                path: req_str(p, "path")?,
                calls: req_u64(p, "calls")?,
                total_ns: req_u64(p, "total_ns")?,
                min_ns: req_u64(p, "min_ns")?,
                max_ns: req_u64(p, "max_ns")?,
            });
        }
        let mut counters = Vec::new();
        for c in arr("counters")? {
            counters.push(CounterStat {
                name: req_str(c, "name")?,
                value: req_u64(c, "value")?,
            });
        }
        let mut gauges = Vec::new();
        for g in arr("gauges")? {
            gauges.push(GaugeStat {
                name: req_str(g, "name")?,
                value: req_f64(g, "value")?,
            });
        }
        let mut histograms = Vec::new();
        for h in arr("histograms")? {
            histograms.push(HistogramStat {
                name: req_str(h, "name")?,
                stats: HistogramStats {
                    count: req_u64(h, "count")?,
                    min: req_u64(h, "min")?,
                    max: req_u64(h, "max")?,
                    mean: req_f64(h, "mean")?,
                    p50: req_u64(h, "p50")?,
                    p99: req_u64(h, "p99")?,
                },
            });
        }
        Ok(Profile {
            name,
            phases,
            counters,
            gauges,
            histograms,
        })
    }
}

/// Formats nanoseconds human-readably (`312 ns`, `4.7 µs`, `18.2 ms`,
/// `3.41 s`).
pub fn fmt_ns(ns: u64) -> String {
    let ns_f = ns as f64;
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} µs", ns_f / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1} ms", ns_f / 1e6)
    } else {
        format!("{:.2} s", ns_f / 1e9)
    }
}

impl fmt::Display for Profile {
    /// Renders an aligned table per instrument family, durations
    /// humanized via [`fmt_ns`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "profile '{}'", self.name)?;
        if !self.phases.is_empty() {
            let width = self
                .phases
                .iter()
                .map(|p| p.path.len())
                .max()
                .unwrap_or(0)
                .max(5);
            writeln!(
                f,
                "  {:width$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}",
                "phase", "calls", "total", "mean", "min", "max"
            )?;
            for p in &self.phases {
                writeln!(
                    f,
                    "  {:width$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}",
                    p.path,
                    p.calls,
                    fmt_ns(p.total_ns),
                    fmt_ns(p.mean_ns() as u64),
                    fmt_ns(p.min_ns),
                    fmt_ns(p.max_ns),
                )?;
            }
        }
        if !self.counters.is_empty() {
            writeln!(f, "  counters:")?;
            for c in &self.counters {
                writeln!(f, "    {} = {}", c.name, c.value)?;
            }
        }
        if !self.gauges.is_empty() {
            writeln!(f, "  gauges:")?;
            for g in &self.gauges {
                writeln!(f, "    {} = {:.3}", g.name, g.value)?;
            }
        }
        if !self.histograms.is_empty() {
            writeln!(f, "  histograms (count / min / mean / p50 / p99 / max):")?;
            for h in &self.histograms {
                let s = &h.stats;
                writeln!(
                    f,
                    "    {}: {} / {} / {:.1} / {} / {} / {}",
                    h.name, s.count, s.min, s.mean, s.p50, s.p99, s.max
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Metrics;

    fn sample() -> Profile {
        let m = Metrics::new("sample");
        m.time("run", || {
            m.time("run/level", || ());
        });
        m.counter("evals").add(1234);
        m.set_gauge("meps", 56.75);
        for v in [3u64, 9, 27, 81] {
            m.record("depth", v);
        }
        m.snapshot()
    }

    #[test]
    fn json_round_trip_is_identity() {
        let p = sample();
        let text = p.to_json().to_string_pretty();
        let back = Profile::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn from_json_rejects_wrong_schema() {
        let mut v = sample().to_json();
        if let Json::Obj(fields) = &mut v {
            fields[0].1 = Json::Str("other/9".into());
        }
        assert!(Profile::from_json(&v).is_err());
        assert!(Profile::from_json(&Json::Null).is_err());
    }

    #[test]
    fn accessors_and_display() {
        let p = sample();
        assert_eq!(p.counter("evals"), Some(1234));
        assert_eq!(p.gauge("meps"), Some(56.75));
        assert_eq!(p.histogram("depth").unwrap().count, 4);
        assert!(p.phase("run/level").is_some());
        assert!(p.phase("run").unwrap().total_ns >= p.phase("run/level").unwrap().total_ns);
        let rendered = format!("{p}");
        assert!(rendered.contains("run/level"));
        assert!(rendered.contains("evals = 1234"));
        assert!(rendered.contains("meps = 56.750"));
        assert!(rendered.contains("depth:"));
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(312), "312 ns");
        assert_eq!(fmt_ns(4_700), "4.7 µs");
        assert_eq!(fmt_ns(18_200_000), "18.2 ms");
        assert_eq!(fmt_ns(3_410_000_000), "3.41 s");
    }
}
