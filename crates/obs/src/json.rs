//! A minimal, self-contained JSON value type: parse, build, pretty-print.
//!
//! This exists so profiles and perf reports can be schema-versioned JSON
//! without pulling an external dependency into the workspace. It supports
//! the full JSON grammar with two documented simplifications: numbers are
//! `f64` (integers round-trip exactly up to 2⁵³), and non-finite floats
//! serialize as `null`.

use std::fmt;

/// Maximum nesting depth accepted by the parser (arrays + objects).
const MAX_DEPTH: usize = 128;

/// A parsed or constructed JSON value.
///
/// Objects preserve insertion order (they are association lists, not
/// maps), so emitted reports are stable and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also the serialization of non-finite numbers).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integers are exact up to 2⁵³.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered list of `(key, value)` pairs.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset into the input plus a message.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an ordered field list, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // `{}` prints the shortest representation that parses
                    // back to the same f64, so numbers round-trip exactly.
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.to_string_pretty().trim_end())
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: require a low surrogate.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => s.push(c),
                                None => return Err(self.err("invalid escape codepoint")),
                            }
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = text.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(
            Json::parse("\"a\\nb\"").unwrap(),
            Json::Str("a\nb".to_owned())
        );
    }

    #[test]
    fn parses_unicode_escapes_and_surrogates() {
        assert_eq!(
            Json::parse("\"\\u00e9\"").unwrap(),
            Json::Str("é".to_owned())
        );
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("😀".to_owned())
        );
        assert!(Json::parse("\"\\ud83d\"").is_err());
    }

    #[test]
    fn objects_preserve_order_and_round_trip() {
        let v = Json::Obj(vec![
            ("z".to_owned(), Json::Num(1.0)),
            (
                "a".to_owned(),
                Json::Arr(vec![Json::Null, Json::Bool(true)]),
            ),
            ("s".to_owned(), Json::Str("x \"y\" z".to_owned())),
            ("nested".to_owned(), Json::Obj(vec![])),
        ]);
        let text = v.to_string_pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
        // Order preserved: "z" serialized before "a".
        assert!(text.find("\"z\"").unwrap() < text.find("\"a\"").unwrap());
    }

    #[test]
    fn floats_round_trip_exactly() {
        for n in [0.1, 1.0 / 3.0, 1e-300, 9_007_199_254_740_991.0, -0.0] {
            let text = Json::Num(n).to_string_pretty();
            let back = Json::parse(&text).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), n.to_bits(), "{n}");
        }
        assert_eq!(Json::Num(f64::NAN).to_string_pretty().trim(), "null");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "01x",
            "\"unterminated",
            "[1] trailing",
            "{'single': 1}",
        ] {
            let e = Json::parse(bad);
            assert!(e.is_err(), "accepted {bad:?}");
        }
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n": 3, "s": "hi", "b": false, "a": [1]}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(3.0));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert!(v.get("missing").is_none());
        assert_eq!(v.as_obj().map(<[(String, Json)]>::len), Some(4));
    }
}
