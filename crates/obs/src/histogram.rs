//! Log-bucketed histogram: O(1) record, O(1) memory, exact
//! min/max/mean, approximate quantiles.
//!
//! Values are unsigned integers in whatever unit the instrument declares
//! (nanoseconds for durations, transitions for occupancies, events for
//! queue depths). Buckets follow an HDR-style layout: values below 16 get
//! exact buckets; above, each power-of-two range is split into 16 linear
//! sub-buckets, bounding the relative quantile error at 1/16 ≈ 6 %.

/// Exact buckets for values `0..LINEAR_MAX`.
const LINEAR_MAX: u64 = 16;
/// Sub-buckets per power-of-two range (log₂ = `SUB_SHIFT`).
const SUB_SHIFT: u32 = 4;
/// Total bucket count: 16 exact + 16 per exponent 4..=63.
const NUM_BUCKETS: usize = LINEAR_MAX as usize + 60 * (1 << SUB_SHIFT);

/// A value distribution with exact extrema and mean, approximate p50/p99.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
    buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; NUM_BUCKETS],
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact minimum recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`), approximated by the
    /// representative value of the bucket containing the target rank and
    /// clamped into the exact `[min, max]` interval. Relative error is
    /// bounded by the sub-bucket width (≈ 6 %).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                return bucket_mid(b).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The summary statistics snapshot serialized into profiles.
    pub fn stats(&self) -> HistogramStats {
        HistogramStats {
            count: self.count(),
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p99: self.quantile(0.99),
        }
    }
}

/// Summary statistics of one [`Histogram`] — the serialized form.
///
/// Units are those of the recorded values (the instrument's name states
/// them, e.g. a `_ns` suffix for nanoseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramStats {
    /// Number of recorded values.
    pub count: u64,
    /// Exact minimum.
    pub min: u64,
    /// Exact maximum.
    pub max: u64,
    /// Exact arithmetic mean.
    pub mean: f64,
    /// Approximate median (≤ ~6 % relative error).
    pub p50: u64,
    /// Approximate 99th percentile (≤ ~6 % relative error).
    pub p99: u64,
}

/// Bucket index of a value: exact below [`LINEAR_MAX`], then 16 linear
/// sub-buckets per power of two.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros();
        let sub = ((v >> (exp - SUB_SHIFT)) & ((1 << SUB_SHIFT) - 1)) as usize;
        LINEAR_MAX as usize + ((exp - SUB_SHIFT) as usize) * (1 << SUB_SHIFT) + sub
    }
}

/// Representative (midpoint) value of a bucket.
fn bucket_mid(b: usize) -> u64 {
    if b < LINEAR_MAX as usize {
        b as u64
    } else {
        let rel = b - LINEAR_MAX as usize;
        let exp = (rel >> SUB_SHIFT) as u32 + SUB_SHIFT;
        let sub = (rel & ((1 << SUB_SHIFT) - 1)) as u64;
        let width = 1u64 << (exp - SUB_SHIFT);
        let low = (1u64 << exp) + sub * width;
        low + width / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.stats().p99, 0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [3u64, 3, 7, 1, 15] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 15);
        assert!((h.mean() - 29.0 / 5.0).abs() < 1e-12);
        // Values below 16 land in exact buckets: the median is exactly 3.
        assert_eq!(h.quantile(0.5), 3);
    }

    #[test]
    fn percentiles_of_uniform_ramp_within_tolerance() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.50) as f64;
        let p99 = h.quantile(0.99) as f64;
        assert!((p50 - 5_000.0).abs() / 5_000.0 < 0.07, "p50 = {p50}");
        assert!((p99 - 9_900.0).abs() / 9_900.0 < 0.07, "p99 = {p99}");
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10_000);
        assert!((h.mean() - 5_000.5).abs() < 1e-9);
        // Quantile extremes clamp to the exact extrema.
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 10_000);
    }

    #[test]
    fn skewed_distribution_p99_separates_tail() {
        let mut h = Histogram::new();
        for _ in 0..990 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        assert_eq!(h.quantile(0.5), 10);
        let p99 = h.quantile(0.99) as f64;
        // p99 sits at rank 990 — the last of the 10s.
        assert!(p99 <= 11.0, "p99 = {p99}");
        let p999 = h.quantile(0.999) as f64;
        assert!((p999 - 1e6).abs() / 1e6 < 0.07, "p99.9 = {p999}");
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 1..=100u64 {
            a.record(v);
        }
        for v in 101..=200u64 {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 200);
        assert!((a.mean() - 100.5).abs() < 1e-9);
        let p50 = a.quantile(0.5) as f64;
        assert!((p50 - 100.0).abs() / 100.0 < 0.07, "p50 = {p50}");
    }

    #[test]
    fn bucket_layout_is_monotone_and_total() {
        // Every value maps to a bucket whose representative is within the
        // sub-bucket width of the original value.
        let mut prev = 0usize;
        for shift in 0..63 {
            let v = 1u64 << shift;
            let b = bucket_index(v);
            assert!(b >= prev, "bucket order broke at 2^{shift}");
            prev = b;
            let mid = bucket_mid(b) as f64;
            let rel = (mid - v as f64).abs() / (v as f64).max(1.0);
            assert!(rel <= 0.07, "2^{shift}: mid {mid} vs {v}");
        }
        assert!(bucket_index(u64::MAX) < NUM_BUCKETS);
    }
}
