//! Observability for the AVFS simulation workspace: phase timers,
//! counters, histograms and machine-readable profiles — with zero
//! external dependencies.
//!
//! DESIGN.md §3 role: the cross-cutting instrumentation layer. Every other
//! crate answers *what* the simulator computes; this crate answers *where
//! the time goes* — the per-phase breakdown that makes speedups
//! attributable (Table I MEPS, the 1–40 ms regression-runtime claim of
//! Sec. V.A) and performance regressions catchable.
//!
//! # Architecture
//!
//! * [`Metrics`] — a thread-safe registry of named instruments, created
//!   per run (the engine) or per flow (characterization). All updates go
//!   through `&Metrics`, so one registry can be shared across worker
//!   threads without ceremony.
//! * [`Span`] — a scoped phase timer. Spans nest: [`Span::child`] extends
//!   the parent's `/`-separated path, so `engine/level/merge` aggregates
//!   separately from `engine/level`. Dropping (or [`Span::finish`]ing) a
//!   span records its wall-clock duration under its path.
//! * [`Counter`] — a clonable handle to an atomic `u64`; hot paths hold
//!   the handle and increment lock-free.
//! * [`Histogram`] — a log-bucketed value distribution with exact
//!   min/max/mean and approximate (≤ ~6 % relative error) p50/p99.
//! * [`Profile`] — an immutable snapshot of a registry
//!   ([`Metrics::snapshot`]): plain data with a human-readable
//!   [`Display`](std::fmt::Display) rendering and a JSON round-trip
//!   ([`Profile::to_json`] / [`Profile::from_json`]).
//! * [`json`] — a minimal self-contained JSON value type (emit + parse)
//!   used for the schema-versioned perf reports (`BENCH_core.json`).
//!
//! # Cost model
//!
//! The disabled path is the absence of a registry: instrumented code holds
//! an `Option<&Metrics>` and the helpers ([`time_option`]) reduce to a
//! single `Option` discriminant check when it is `None`. No global state,
//! no atomics, no clock reads on the disabled path.
//!
//! # Example
//!
//! ```
//! use avfs_obs::Metrics;
//!
//! let m = Metrics::new("demo");
//! {
//!     let run = m.span("run");
//!     let _level = run.child("level"); // records as "run/level" on drop
//! } // "run" records on drop
//! m.counter("evals").add(42);
//! m.record("queue_depth", 7);
//!
//! let profile = m.snapshot();
//! assert_eq!(profile.counter("evals"), Some(42));
//! assert!(profile.phase("run/level").is_some());
//! println!("{profile}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod json;
pub mod metrics;
pub mod profile;

pub use histogram::{Histogram, HistogramStats};
pub use json::{Json, JsonError};
pub use metrics::{time_option, Counter, Metrics, Span};
pub use profile::{fmt_ns, CounterStat, GaugeStat, HistogramStat, PhaseStats, Profile};
