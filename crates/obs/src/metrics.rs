//! The instrument registry: named phases, counters, gauges and
//! histograms behind one thread-safe handle.

use crate::histogram::Histogram;
use crate::profile::{CounterStat, GaugeStat, HistogramStat, PhaseStats, Profile};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A thread-safe registry of named instruments.
///
/// One `Metrics` is created per profiled activity (one engine run, one
/// characterization flow) and shared by reference; all instruments are
/// created on first use. [`Metrics::snapshot`] freezes the current state
/// into an immutable [`Profile`].
///
/// Phase, gauge and histogram updates take a short internal lock; hot
/// loops should either hold a lock-free [`Counter`] handle, accumulate
/// into a local [`Histogram`] and [`Metrics::merge_histogram`] once, or
/// time whole phases rather than individual iterations.
pub struct Metrics {
    name: String,
    state: Mutex<State>,
}

#[derive(Default)]
struct State {
    phases: BTreeMap<String, PhaseAgg>,
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

#[derive(Clone, Copy)]
struct PhaseAgg {
    calls: u64,
    total: Duration,
    min: Duration,
    max: Duration,
}

impl Metrics {
    /// Creates an empty registry named `name` (the profile title).
    pub fn new(name: &str) -> Metrics {
        Metrics {
            name: name.to_owned(),
            state: Mutex::new(State::default()),
        }
    }

    /// The registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Starts a root [`Span`] timing phase `path`; the elapsed time is
    /// recorded when the span drops (or [`Span::finish`]es).
    pub fn span(&self, path: &str) -> Span<'_> {
        Span {
            metrics: self,
            path: path.to_owned(),
            start: Instant::now(),
            recorded: false,
        }
    }

    /// Times a closure as one occurrence of phase `path`.
    pub fn time<R>(&self, path: &str, f: impl FnOnce() -> R) -> R {
        let span = self.span(path);
        let r = f();
        span.finish();
        r
    }

    /// Records one occurrence of phase `path` with an explicit duration.
    pub fn record_duration(&self, path: &str, elapsed: Duration) {
        let mut state = self.state.lock().expect("metrics lock");
        let agg = state.phases.entry(path.to_owned()).or_insert(PhaseAgg {
            calls: 0,
            total: Duration::ZERO,
            min: Duration::MAX,
            max: Duration::ZERO,
        });
        agg.calls += 1;
        agg.total += elapsed;
        agg.min = agg.min.min(elapsed);
        agg.max = agg.max.max(elapsed);
    }

    /// A lock-free handle to the counter named `name` (created at zero on
    /// first use). Clones share the same underlying value.
    pub fn counter(&self, name: &str) -> Counter {
        let mut state = self.state.lock().expect("metrics lock");
        state.counters.entry(name.to_owned()).or_default().clone()
    }

    /// Adds `n` to the counter named `name` (convenience for cold paths;
    /// hot paths should hold the [`Counter`] handle).
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Sets the gauge named `name` to `value` (last write wins).
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut state = self.state.lock().expect("metrics lock");
        state.gauges.insert(name.to_owned(), value);
    }

    /// Records `value` into the histogram named `name`.
    pub fn record(&self, name: &str, value: u64) {
        let mut state = self.state.lock().expect("metrics lock");
        state
            .histograms
            .entry(name.to_owned())
            .or_default()
            .record(value);
    }

    /// Folds a locally accumulated histogram into the one named `name` —
    /// the lock-amortizing path for per-iteration recordings.
    pub fn merge_histogram(&self, name: &str, histogram: &Histogram) {
        let mut state = self.state.lock().expect("metrics lock");
        state
            .histograms
            .entry(name.to_owned())
            .or_default()
            .merge(histogram);
    }

    /// Freezes the current state into an immutable [`Profile`]. Instrument
    /// order in the profile is lexicographic by name, so snapshots are
    /// deterministic.
    pub fn snapshot(&self) -> Profile {
        let state = self.state.lock().expect("metrics lock");
        Profile {
            name: self.name.clone(),
            phases: state
                .phases
                .iter()
                .map(|(path, agg)| PhaseStats {
                    path: path.clone(),
                    calls: agg.calls,
                    total_ns: as_ns(agg.total),
                    min_ns: as_ns(agg.min),
                    max_ns: as_ns(agg.max),
                })
                .collect(),
            counters: state
                .counters
                .iter()
                .map(|(name, c)| CounterStat {
                    name: name.clone(),
                    value: c.get(),
                })
                .collect(),
            gauges: state
                .gauges
                .iter()
                .map(|(name, &value)| GaugeStat {
                    name: name.clone(),
                    value,
                })
                .collect(),
            histograms: state
                .histograms
                .iter()
                .map(|(name, h)| HistogramStat {
                    name: name.clone(),
                    stats: h.stats(),
                })
                .collect(),
        }
    }
}

impl fmt::Debug for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.state.lock().expect("metrics lock");
        f.debug_struct("Metrics")
            .field("name", &self.name)
            .field("phases", &state.phases.len())
            .field("counters", &state.counters.len())
            .field("gauges", &state.gauges.len())
            .field("histograms", &state.histograms.len())
            .finish()
    }
}

/// Saturating `Duration` → nanoseconds.
fn as_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// A shared atomic counter handle obtained from [`Metrics::counter`].
///
/// Increments are lock-free relaxed atomics, cheap enough for per-call
/// instrumentation of hot kernels.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// A scoped phase timer started by [`Metrics::span`].
///
/// The span records its wall-clock duration under its `/`-separated path
/// when dropped; [`Span::child`] opens a nested span whose path extends
/// the parent's, so hierarchies aggregate per level:
///
/// ```
/// let m = avfs_obs::Metrics::new("demo");
/// let run = m.span("run");
/// m.time("unrelated", || ());
/// let level = run.child("level"); // path "run/level"
/// level.finish();
/// run.finish();
/// ```
#[must_use = "a span records its phase when dropped; binding it to `_` drops immediately"]
pub struct Span<'a> {
    metrics: &'a Metrics,
    path: String,
    start: Instant,
    recorded: bool,
}

impl<'a> Span<'a> {
    /// Opens a child span at `parent_path/name`, started now.
    pub fn child(&self, name: &str) -> Span<'a> {
        Span {
            metrics: self.metrics,
            path: format!("{}/{name}", self.path),
            start: Instant::now(),
            recorded: false,
        }
    }

    /// The span's full `/`-separated path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Stops the span now and records it, returning the elapsed time.
    pub fn finish(mut self) -> Duration {
        let elapsed = self.start.elapsed();
        self.metrics.record_duration(&self.path, elapsed);
        self.recorded = true;
        elapsed
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if !self.recorded {
            self.metrics
                .record_duration(&self.path, self.start.elapsed());
        }
    }
}

/// Times `f` as phase `path` when `metrics` is present; otherwise just
/// calls it. This is the switch instrumented hot paths use — the disabled
/// branch is one `Option` discriminant check, no clock read.
#[inline]
pub fn time_option<R>(metrics: Option<&Metrics>, path: &str, f: impl FnOnce() -> R) -> R {
    match metrics {
        Some(m) => m.time(path, f),
        None => f(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_and_atomic() {
        let m = Metrics::new("t");
        let a = m.counter("x");
        let b = m.counter("x");
        a.add(2);
        b.incr();
        assert_eq!(m.counter("x").get(), 3);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = m.counter("x");
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(m.counter("x").get(), 4003);
    }

    #[test]
    fn span_nesting_builds_paths_and_contains_children() {
        let m = Metrics::new("t");
        {
            let run = m.span("run");
            for _ in 0..3 {
                let level = run.child("level");
                let merge = level.child("merge");
                // Burn a few hundred nanoseconds so totals are nonzero.
                let mut acc = 0u64;
                for i in 0..500u64 {
                    acc = acc.wrapping_add(i * i);
                }
                assert!(acc > 0);
                merge.finish();
                level.finish();
            }
            run.finish();
        }
        let p = m.snapshot();
        let run = p.phase("run").expect("run recorded");
        let level = p.phase("run/level").expect("level recorded");
        let merge = p.phase("run/level/merge").expect("merge recorded");
        assert_eq!(run.calls, 1);
        assert_eq!(level.calls, 3);
        assert_eq!(merge.calls, 3);
        // Nested intervals: each parent's total covers its children.
        assert!(run.total_ns >= level.total_ns);
        assert!(level.total_ns >= merge.total_ns);
        assert!(merge.total_ns > 0);
        assert!(level.min_ns <= level.max_ns);
        assert!(level.min_ns + level.max_ns <= 2 * level.total_ns);
    }

    #[test]
    fn drop_records_once_finish_records_once() {
        let m = Metrics::new("t");
        {
            let _s = m.span("dropped");
        }
        m.span("finished").finish();
        let p = m.snapshot();
        assert_eq!(p.phase("dropped").unwrap().calls, 1);
        assert_eq!(p.phase("finished").unwrap().calls, 1);
    }

    #[test]
    fn gauges_and_histograms_snapshot() {
        let m = Metrics::new("t");
        m.set_gauge("g", 1.0);
        m.set_gauge("g", 2.5);
        m.record("h", 10);
        m.record("h", 12);
        let mut local = Histogram::new();
        local.record(14);
        m.merge_histogram("h", &local);
        let p = m.snapshot();
        assert_eq!(p.gauge("g"), Some(2.5));
        let h = p.histogram("h").expect("histogram");
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 10);
        assert_eq!(h.max, 14);
    }

    #[test]
    fn time_option_is_transparent() {
        let m = Metrics::new("t");
        assert_eq!(time_option(Some(&m), "p", || 7), 7);
        assert_eq!(time_option(None, "p", || 8), 8);
        let p = m.snapshot();
        assert_eq!(p.phase("p").unwrap().calls, 1);
    }
}
