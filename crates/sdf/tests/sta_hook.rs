//! The SDF → STA hook: `(DELAYFILE …)` text drives the independent
//! static-timing oracle exactly like an in-memory annotation.

use avfs_delay::TimingAnnotation;
use avfs_netlist::{CellLibrary, Levelization, Netlist, NetlistBuilder};
use avfs_sdf::sdf::{parse_sdf, write_sdf};
use avfs_sta::{StaError, TimingGraph};
use avfs_waveform::PinDelays;

/// a → INV g1 → NAND2 g2 (side input b) → y, with distinct rise/fall
/// delays per pin so edge selection is observable.
fn annotated_chain() -> (Netlist, TimingAnnotation) {
    let lib = CellLibrary::nangate15_like();
    let mut b = NetlistBuilder::new("hook", &lib);
    let a = b.add_input("a").unwrap();
    let side = b.add_input("b").unwrap();
    let g1 = b.add_gate("g1", "INV_X1", &[a]).unwrap();
    let g2 = b.add_gate("g2", "NAND2_X1", &[g1, side]).unwrap();
    b.add_output("y", g2).unwrap();
    let netlist = b.finish().unwrap();

    let mut ann = TimingAnnotation::zero(&netlist);
    ann.node_delays_mut(netlist.find("g1").unwrap())[0] = PinDelays {
        rise: 10.0,
        fall: 14.0,
    };
    let g2_id = netlist.find("g2").unwrap();
    ann.node_delays_mut(g2_id)[0] = PinDelays {
        rise: 7.0,
        fall: 5.0,
    };
    ann.node_delays_mut(g2_id)[1] = PinDelays {
        rise: 30.0,
        fall: 28.0,
    };
    (netlist, ann)
}

#[test]
fn sdf_text_and_in_memory_annotation_build_identical_graphs() {
    let (netlist, ann) = annotated_chain();
    let levels = Levelization::of(&netlist).expect("acyclic");
    let text = write_sdf(&netlist, &ann);

    let from_text = TimingGraph::from_sdf(&netlist, &levels, &text).expect("hook parses");
    let from_memory = TimingGraph::from_annotation(&netlist, &levels, &ann).expect("shapes match");

    // Same arcs, same report — the hook is a pure front-end.
    for (id, _) in netlist.iter() {
        assert_eq!(from_text.node_delays(id), from_memory.node_delays(id));
    }
    let a = from_text.report(0.0);
    let b = from_memory.report(0.0);
    assert_eq!(a, b);

    // Latest chain: b → g2 pin 1, rising output (fall 0 + rise 30),
    // beating the a → g1 → g2 chain (14 + 7 = 21).
    assert_eq!(a.latest_arrival_ps, 30.0);
    // Earliest chain: a fall → g1 rise (10) → g2 fall via pin 0 (5)
    // = 15, undercutting both pin-1 chains (28, 30).
    assert_eq!(a.earliest_arrival_ps, 15.0);
}

#[test]
fn round_trip_through_sdf_preserves_the_analysis() {
    let (netlist, ann) = annotated_chain();
    let levels = Levelization::of(&netlist).expect("acyclic");
    // write → parse → write again must be a fixed point, and the parsed
    // annotation must reproduce the original delays the graph prices.
    let text = write_sdf(&netlist, &ann);
    let parsed = parse_sdf(&netlist, &text).expect("own output parses");
    assert_eq!(write_sdf(&netlist, &parsed), text);
    let graph = TimingGraph::from_annotation(&netlist, &levels, &parsed).unwrap();
    assert_eq!(
        graph.node_delays(netlist.find("g1").unwrap())[0],
        PinDelays {
            rise: 10.0,
            fall: 14.0
        }
    );
}

#[test]
fn malformed_sdf_is_a_typed_sta_error() {
    let (netlist, _) = annotated_chain();
    let levels = Levelization::of(&netlist).expect("acyclic");
    let err = TimingGraph::from_sdf(&netlist, &levels, "(DELAYFILE (CELL").unwrap_err();
    match err {
        StaError::Sdf(message) => {
            assert!(!message.is_empty());
        }
        other => panic!("expected StaError::Sdf, got {other:?}"),
    }
}
