//! SDF 3.0 subset: `(DELAYFILE …)` with absolute `IOPATH` delays.
//!
//! Supported constructs (everything a synthesized-netlist timing flow
//! emits for combinational cells):
//!
//! ```text
//! (DELAYFILE
//!   (SDFVERSION "3.0")
//!   (DESIGN "c17")
//!   (TIMESCALE 1ps)
//!   (CELL (CELLTYPE "NAND2_X1")
//!     (INSTANCE g10)
//!     (DELAY (ABSOLUTE
//!       (IOPATH A1 ZN (12.5:12.5:12.5) (14.0:14.0:14.0))
//!       (IOPATH A2 ZN (13.0) (15.1))))))
//! ```
//!
//! Delay triples are `min:typ:max`; the typical value is used. Unknown
//! header entries are skipped. Times are picoseconds.

use crate::SdfError;
use avfs_delay::TimingAnnotation;
use avfs_netlist::{Netlist, NodeKind};
use avfs_waveform::PinDelays;
use std::fmt::Write as _;

/// Serializes a netlist's annotation as SDF text.
///
/// One `(CELL …)` per gate instance with one `IOPATH` per input pin, rise
/// and fall triples (degenerate `t:t:t`).
pub fn write_sdf(netlist: &Netlist, annotation: &TimingAnnotation) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "(DELAYFILE");
    let _ = writeln!(out, "  (SDFVERSION \"3.0\")");
    let _ = writeln!(out, "  (DESIGN \"{}\")", netlist.name());
    let _ = writeln!(out, "  (TIMESCALE 1ps)");
    for (id, node) in netlist.iter() {
        if let NodeKind::Gate(_) = node.kind() {
            let cell = netlist.cell_of(id).expect("gate has a cell");
            let _ = writeln!(out, "  (CELL (CELLTYPE \"{}\")", cell.name());
            let _ = writeln!(out, "    (INSTANCE {})", node.name());
            let _ = writeln!(out, "    (DELAY (ABSOLUTE");
            for (pin_idx, pin) in cell.input_pins().iter().enumerate() {
                let d = annotation.pin_delays(id, pin_idx);
                let _ = writeln!(
                    out,
                    "      (IOPATH {} {} ({r:.6}:{r:.6}:{r:.6}) ({f:.6}:{f:.6}:{f:.6}))",
                    pin.name,
                    cell.output_pin(),
                    r = d.rise,
                    f = d.fall,
                );
            }
            let _ = writeln!(out, "    ))");
            let _ = writeln!(out, "  )");
        }
    }
    let _ = writeln!(out, ")");
    out
}

/// Parses SDF text and produces an annotation for `netlist`.
///
/// Pins and instances are resolved against the netlist; delays not
/// mentioned in the file remain zero. Loads are initialized from
/// [`Netlist::load_caps_ff`] (override them from SPEF afterwards).
///
/// # Errors
///
/// * [`SdfError::Parse`] for malformed text,
/// * [`SdfError::UnknownInstance`] / [`SdfError::UnknownPin`] for dangling
///   references,
/// * [`SdfError::CellTypeMismatch`] if the recorded `CELLTYPE` disagrees
///   with the netlist.
pub fn parse_sdf(netlist: &Netlist, text: &str) -> Result<TimingAnnotation, SdfError> {
    let sexp = parse_sexp(text)?;
    let mut annotation = TimingAnnotation::zero(netlist);

    let Sexp::List(top, _) = &sexp else {
        return Err(SdfError::Parse {
            line: 1,
            message: "expected a top-level list".to_owned(),
        });
    };
    if !matches!(top.first(), Some(Sexp::Atom(kw, _)) if kw == "DELAYFILE") {
        return Err(SdfError::Parse {
            line: 1,
            message: "expected (DELAYFILE …)".to_owned(),
        });
    }

    for entry in &top[1..] {
        let Sexp::List(items, line) = entry else {
            continue;
        };
        let Some(Sexp::Atom(kw, _)) = items.first() else {
            continue;
        };
        if kw != "CELL" {
            continue; // header entries: SDFVERSION, DESIGN, TIMESCALE, …
        }
        parse_cell(netlist, &mut annotation, items, *line)?;
    }
    Ok(annotation)
}

fn parse_cell(
    netlist: &Netlist,
    annotation: &mut TimingAnnotation,
    items: &[Sexp],
    line: usize,
) -> Result<(), SdfError> {
    let mut celltype: Option<String> = None;
    let mut instance: Option<String> = None;
    let mut iopaths: Vec<(String, PinDelaysPartial, usize)> = Vec::new();

    for item in &items[1..] {
        let Sexp::List(sub, sub_line) = item else {
            continue;
        };
        match sub.first() {
            Some(Sexp::Atom(kw, _)) if kw == "CELLTYPE" => {
                if let Some(Sexp::Atom(name, _)) = sub.get(1) {
                    celltype = Some(unquote(name));
                }
            }
            Some(Sexp::Atom(kw, _)) if kw == "INSTANCE" => {
                if let Some(Sexp::Atom(name, _)) = sub.get(1) {
                    instance = Some(name.clone());
                }
            }
            Some(Sexp::Atom(kw, _)) if kw == "DELAY" => {
                for abs in &sub[1..] {
                    let Sexp::List(abs_items, _) = abs else {
                        continue;
                    };
                    if !matches!(abs_items.first(), Some(Sexp::Atom(a, _)) if a == "ABSOLUTE") {
                        continue;
                    }
                    for io in &abs_items[1..] {
                        let Sexp::List(io_items, io_line) = io else {
                            continue;
                        };
                        if !matches!(io_items.first(), Some(Sexp::Atom(a, _)) if a == "IOPATH") {
                            continue;
                        }
                        let (pin, delays) = parse_iopath(io_items, *io_line)?;
                        iopaths.push((pin, delays, *io_line));
                    }
                }
            }
            _ => {}
        }
        let _ = sub_line;
    }

    let instance = instance.ok_or(SdfError::Parse {
        line,
        message: "CELL without INSTANCE".to_owned(),
    })?;
    let node = netlist
        .find(&instance)
        .ok_or_else(|| SdfError::UnknownInstance {
            instance: instance.clone(),
        })?;
    let cell = netlist
        .cell_of(node)
        .ok_or_else(|| SdfError::UnknownInstance {
            instance: instance.clone(),
        })?;
    if let Some(ct) = celltype {
        if ct != cell.name() {
            return Err(SdfError::CellTypeMismatch {
                instance,
                in_file: ct,
                in_netlist: cell.name().to_owned(),
            });
        }
    }
    for (pin_name, delays, _io_line) in iopaths {
        let pin_idx = cell
            .input_pins()
            .iter()
            .position(|p| p.name == pin_name)
            .ok_or_else(|| SdfError::UnknownPin {
                instance: instance.clone(),
                pin: pin_name.clone(),
            })?;
        annotation.node_delays_mut(node)[pin_idx] = PinDelays {
            rise: delays.rise,
            fall: delays.fall,
        };
    }
    Ok(())
}

struct PinDelaysPartial {
    rise: f64,
    fall: f64,
}

fn parse_iopath(items: &[Sexp], line: usize) -> Result<(String, PinDelaysPartial), SdfError> {
    // (IOPATH <from> <to> (<rise>) (<fall>))
    let from = match items.get(1) {
        Some(Sexp::Atom(a, _)) => a.clone(),
        _ => {
            return Err(SdfError::Parse {
                line,
                message: "IOPATH missing source pin".to_owned(),
            })
        }
    };
    let _to = match items.get(2) {
        Some(Sexp::Atom(a, _)) => a.clone(),
        _ => {
            return Err(SdfError::Parse {
                line,
                message: "IOPATH missing destination pin".to_owned(),
            })
        }
    };
    let rise = parse_delay_value(items.get(3), line)?;
    let fall = parse_delay_value(items.get(4), line)?;
    Ok((from, PinDelaysPartial { rise, fall }))
}

/// Parses a delay list `(<v>)` or `(<min>:<typ>:<max>)`, returning the
/// typical value.
fn parse_delay_value(sexp: Option<&Sexp>, line: usize) -> Result<f64, SdfError> {
    let bad = |message: String| SdfError::Parse { line, message };
    let Some(Sexp::List(items, _)) = sexp else {
        return Err(bad("IOPATH delay must be a parenthesized value".to_owned()));
    };
    let Some(Sexp::Atom(text, _)) = items.first() else {
        return Err(bad("empty delay list".to_owned()));
    };
    let parts: Vec<&str> = text.split(':').collect();
    let chosen = match parts.len() {
        1 => parts[0],
        3 => parts[1],
        _ => return Err(bad(format!("malformed delay value `{text}`"))),
    };
    chosen
        .parse::<f64>()
        .map_err(|_| bad(format!("invalid number `{chosen}`")))
}

fn unquote(s: &str) -> String {
    s.trim_matches('"').to_owned()
}

/// Minimal s-expression tree with line tracking.
#[derive(Debug, Clone, PartialEq)]
enum Sexp {
    Atom(String, usize),
    List(Vec<Sexp>, usize),
}

fn parse_sexp(text: &str) -> Result<Sexp, SdfError> {
    let mut stack: Vec<(Vec<Sexp>, usize)> = Vec::new();
    let mut root: Option<Sexp> = None;
    let mut atom = String::new();
    let mut atom_line = 0usize;
    let mut in_string = false;

    let flush = |atom: &mut String,
                 atom_line: usize,
                 stack: &mut Vec<(Vec<Sexp>, usize)>,
                 root: &mut Option<Sexp>|
     -> Result<(), SdfError> {
        if atom.is_empty() {
            return Ok(());
        }
        let node = Sexp::Atom(std::mem::take(atom), atom_line);
        match stack.last_mut() {
            Some((items, _)) => items.push(node),
            None => {
                if root.is_some() {
                    return Err(SdfError::Parse {
                        line: atom_line,
                        message: "content after top-level list".to_owned(),
                    });
                }
                *root = Some(node);
            }
        }
        Ok(())
    };

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        // SDF comments: `//` to end of line.
        let code = if in_string {
            raw
        } else {
            raw.split("//").next().unwrap_or("")
        };
        for ch in code.chars() {
            if in_string {
                atom.push(ch);
                if ch == '"' {
                    in_string = false;
                }
                continue;
            }
            match ch {
                '(' => {
                    flush(&mut atom, atom_line, &mut stack, &mut root)?;
                    stack.push((Vec::new(), line));
                }
                ')' => {
                    flush(&mut atom, atom_line, &mut stack, &mut root)?;
                    let (items, open_line) = stack.pop().ok_or(SdfError::Parse {
                        line,
                        message: "unbalanced `)`".to_owned(),
                    })?;
                    let node = Sexp::List(items, open_line);
                    match stack.last_mut() {
                        Some((parent, _)) => parent.push(node),
                        None => {
                            if root.is_some() {
                                return Err(SdfError::Parse {
                                    line,
                                    message: "multiple top-level lists".to_owned(),
                                });
                            }
                            root = Some(node);
                        }
                    }
                }
                '"' => {
                    if atom.is_empty() {
                        atom_line = line;
                    }
                    atom.push('"');
                    in_string = true;
                }
                c if c.is_whitespace() => {
                    flush(&mut atom, atom_line, &mut stack, &mut root)?;
                }
                c => {
                    if atom.is_empty() {
                        atom_line = line;
                    }
                    atom.push(c);
                }
            }
        }
        if !in_string {
            flush(&mut atom, atom_line, &mut stack, &mut root)?;
        }
    }
    if in_string {
        return Err(SdfError::Parse {
            line: text.lines().count(),
            message: "unterminated string".to_owned(),
        });
    }
    if let Some((_, open_line)) = stack.last() {
        return Err(SdfError::Parse {
            line: *open_line,
            message: "unbalanced `(`".to_owned(),
        });
    }
    root.ok_or(SdfError::Parse {
        line: 1,
        message: "empty file".to_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfs_netlist::bench::{parse_bench, BenchOptions, C17_BENCH};
    use avfs_netlist::{CellLibrary, NetlistBuilder};
    use std::sync::Arc;

    fn c17() -> Netlist {
        let lib = CellLibrary::nangate15_like();
        parse_bench("c17", C17_BENCH, &lib, &BenchOptions::default()).unwrap()
    }

    fn filled_annotation(netlist: &Netlist) -> TimingAnnotation {
        let mut ann = TimingAnnotation::zero(netlist);
        for (id, node) in netlist.iter() {
            if matches!(node.kind(), NodeKind::Gate(_)) {
                let n = node.fanin().len();
                for pin in 0..n {
                    ann.node_delays_mut(id)[pin] = PinDelays {
                        rise: 10.0 + id.index() as f64 + 0.1 * pin as f64,
                        fall: 8.0 + id.index() as f64 + 0.1 * pin as f64,
                    };
                }
            }
        }
        ann
    }

    #[test]
    fn roundtrip_preserves_delays() {
        let n = c17();
        let ann = filled_annotation(&n);
        let text = write_sdf(&n, &ann);
        assert!(text.contains("(DELAYFILE"));
        assert!(text.contains("IOPATH"));
        let parsed = parse_sdf(&n, &text).unwrap();
        for (id, node) in n.iter() {
            for pin in 0..node.fanin().len() {
                if matches!(node.kind(), NodeKind::Gate(_)) {
                    let a = ann.pin_delays(id, pin);
                    let b = parsed.pin_delays(id, pin);
                    assert!((a.rise - b.rise).abs() < 1e-6);
                    assert!((a.fall - b.fall).abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn parses_single_value_and_triple() {
        let n = c17();
        let text = r#"
(DELAYFILE
  (SDFVERSION "3.0")
  (CELL (CELLTYPE "NAND2_X1")
    (INSTANCE 10)
    (DELAY (ABSOLUTE
      (IOPATH A1 ZN (1.5:2.5:3.5) (4.0))))))
"#;
        let ann = parse_sdf(&n, text).unwrap();
        let g = n.find("10").unwrap();
        assert_eq!(ann.pin_delays(g, 0).rise, 2.5); // typ of the triple
        assert_eq!(ann.pin_delays(g, 0).fall, 4.0);
        // Unmentioned pins stay zero.
        assert_eq!(ann.pin_delays(g, 1).rise, 0.0);
    }

    #[test]
    fn unknown_instance_rejected() {
        let n = c17();
        let text =
            r#"(DELAYFILE (CELL (INSTANCE nope) (DELAY (ABSOLUTE (IOPATH A1 ZN (1) (1))))))"#;
        assert!(matches!(
            parse_sdf(&n, text),
            Err(SdfError::UnknownInstance { .. })
        ));
    }

    #[test]
    fn unknown_pin_rejected() {
        let n = c17();
        let text = r#"(DELAYFILE (CELL (INSTANCE 10) (DELAY (ABSOLUTE (IOPATH Q ZN (1) (1))))))"#;
        assert!(matches!(
            parse_sdf(&n, text),
            Err(SdfError::UnknownPin { .. })
        ));
    }

    #[test]
    fn celltype_mismatch_rejected() {
        let n = c17();
        let text = r#"(DELAYFILE (CELL (CELLTYPE "INV_X1") (INSTANCE 10) (DELAY (ABSOLUTE (IOPATH A ZN (1) (1))))))"#;
        assert!(matches!(
            parse_sdf(&n, text),
            Err(SdfError::CellTypeMismatch { .. })
        ));
    }

    #[test]
    fn malformed_files_rejected() {
        let n = c17();
        for bad in [
            "",
            "(DELAYFILE",
            "(DELAYFILE))",
            "(NOTDELAY)",
            r#"(DELAYFILE (CELL (INSTANCE 10) (DELAY (ABSOLUTE (IOPATH A1 ZN (1:2) (1))))))"#,
            r#"(DELAYFILE (CELL (INSTANCE 10) (DELAY (ABSOLUTE (IOPATH A1 ZN xyz (1))))))"#,
        ] {
            assert!(parse_sdf(&n, bad).is_err(), "should reject: {bad:?}");
        }
    }

    #[test]
    fn comments_ignored() {
        let n = c17();
        let text = r#"
(DELAYFILE // header comment
  (CELL (INSTANCE 10) // the first NAND
    (DELAY (ABSOLUTE (IOPATH A1 ZN (7) (9))))))
"#;
        let ann = parse_sdf(&n, text).unwrap();
        assert_eq!(ann.pin_delays(n.find("10").unwrap(), 0).fall, 9.0);
    }

    #[test]
    fn roundtrip_random_delays_property() {
        use proptest::prelude::*;
        use proptest::test_runner::{Config, TestRunner};
        let n = c17();
        let mut runner = TestRunner::new(Config::with_cases(64));
        runner
            .run(&proptest::collection::vec(0.0f64..1e4, 13 * 2), |raw| {
                let mut ann = TimingAnnotation::zero(&n);
                let mut k = 0;
                for (id, node) in n.iter() {
                    if matches!(node.kind(), NodeKind::Gate(_)) {
                        for pin in 0..node.fanin().len() {
                            ann.node_delays_mut(id)[pin] = PinDelays {
                                rise: raw[k % raw.len()],
                                fall: raw[(k + 1) % raw.len()],
                            };
                            k += 2;
                        }
                    }
                }
                let text = write_sdf(&n, &ann);
                let parsed = parse_sdf(&n, &text).expect("own output parses");
                for (id, node) in n.iter() {
                    if matches!(node.kind(), NodeKind::Gate(_)) {
                        for pin in 0..node.fanin().len() {
                            let a = ann.pin_delays(id, pin);
                            let b = parsed.pin_delays(id, pin);
                            // Writer rounds to 1e-6 ps.
                            prop_assert!((a.rise - b.rise).abs() < 1e-5);
                            prop_assert!((a.fall - b.fall).abs() < 1e-5);
                        }
                    }
                }
                Ok(())
            })
            .expect("property holds");
    }

    #[test]
    fn write_skips_non_gates() {
        let lib = CellLibrary::nangate15_like();
        let mut b = NetlistBuilder::new("t", &Arc::clone(&lib));
        let a = b.add_input("a").unwrap();
        let g = b.add_gate("g", "BUF_X1", &[a]).unwrap();
        b.add_output("y", g).unwrap();
        let n = b.finish().unwrap();
        let text = write_sdf(&n, &TimingAnnotation::zero(&n));
        // Exactly one CELL entry (the buffer), none for ports.
        assert_eq!(text.matches("(INSTANCE").count(), 1);
    }
}
