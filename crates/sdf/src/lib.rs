//! Standard Delay Format (SDF) and parasitics (SPEF-subset) support.
//!
//! The paper's simulator reads "static nominal delay annotations of the
//! cells … from *standard delay format files* and the load capacitances …
//! from *detailed standard parasitics format*" (Sec. IV). This crate
//! implements the round trip for the subset those flows use:
//!
//! * [`sdf`] — `(DELAYFILE …)` with `IOPATH` absolute delays per instance,
//!   parsed into / written from a
//!   [`TimingAnnotation`](avfs_delay::TimingAnnotation),
//! * [`spef`] — a simplified `*D_NET <net> <cap>` parasitics list carrying
//!   per-net load capacitances.
//!
//! Parsed annotations feed both the simulator (via
//! `CompiledNetlist::compile`) and the independent static-timing oracle:
//! `avfs_sta::TimingGraph::from_sdf` builds a per-pin-transition timing
//! graph straight from `(DELAYFILE …)` text, so SDF-annotated designs get
//! the same STA treatment as in-memory annotations (see
//! `tests/sta_hook.rs`).
//!
//! # Example
//!
//! ```
//! use avfs_netlist::{CellLibrary, NetlistBuilder};
//! use avfs_delay::TimingAnnotation;
//! use avfs_waveform::PinDelays;
//! use avfs_sdf::sdf;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = CellLibrary::nangate15_like();
//! let mut b = NetlistBuilder::new("tiny", &lib);
//! let a = b.add_input("a")?;
//! let g = b.add_gate("g", "INV_X1", &[a])?;
//! b.add_output("y", g)?;
//! let netlist = b.finish()?;
//!
//! let mut ann = TimingAnnotation::zero(&netlist);
//! ann.node_delays_mut(netlist.find("g").expect("exists"))[0] =
//!     PinDelays { rise: 11.5, fall: 9.25 };
//!
//! let text = sdf::write_sdf(&netlist, &ann);
//! let parsed = sdf::parse_sdf(&netlist, &text)?;
//! assert_eq!(parsed.pin_delays(netlist.find("g").unwrap(), 0).rise, 11.5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod sdf;
pub mod spef;

use std::error::Error;
use std::fmt;

/// Errors produced by SDF/SPEF parsing and annotation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SdfError {
    /// Lexical or structural error in the file.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description.
        message: String,
    },
    /// An `(INSTANCE …)` refers to a node absent from the netlist.
    UnknownInstance {
        /// The instance name.
        instance: String,
    },
    /// An `IOPATH` refers to a pin the instance's cell does not have.
    UnknownPin {
        /// The instance name.
        instance: String,
        /// The pin name.
        pin: String,
    },
    /// A `*D_NET` refers to a net absent from the netlist.
    UnknownNet {
        /// The net name.
        net: String,
    },
    /// The `CELLTYPE` recorded in the file disagrees with the netlist.
    CellTypeMismatch {
        /// The instance name.
        instance: String,
        /// Cell type in the file.
        in_file: String,
        /// Cell type in the netlist.
        in_netlist: String,
    },
}

impl fmt::Display for SdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdfError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            SdfError::UnknownInstance { instance } => {
                write!(f, "unknown instance `{instance}`")
            }
            SdfError::UnknownPin { instance, pin } => {
                write!(f, "instance `{instance}` has no pin `{pin}`")
            }
            SdfError::UnknownNet { net } => write!(f, "unknown net `{net}`"),
            SdfError::CellTypeMismatch {
                instance,
                in_file,
                in_netlist,
            } => write!(
                f,
                "instance `{instance}` is `{in_file}` in the file but `{in_netlist}` in the netlist"
            ),
        }
    }
}

impl Error for SdfError {}
