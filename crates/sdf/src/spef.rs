//! Simplified parasitics exchange: per-net lumped load capacitances.
//!
//! Full IEEE 1481 SPEF carries RC networks; gate-level delay annotation
//! only consumes the lumped total per net, so this subset stores exactly
//! that:
//!
//! ```text
//! *SPEF "IEEE 1481-1998 (subset)"
//! *DESIGN "c17"
//! *C_UNIT 1 FF
//! *D_NET 10 1.35
//! *D_NET 11 2.81
//! *END
//! ```
//!
//! Net names refer to driving nodes (a net is identified with its driver,
//! as everywhere in this workspace); capacitances are fF.

use crate::SdfError;
use avfs_delay::TimingAnnotation;
use avfs_netlist::Netlist;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Serializes the per-net loads of an annotation as simplified SPEF.
pub fn write_spef(netlist: &Netlist, annotation: &TimingAnnotation) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "*SPEF \"IEEE 1481-1998 (subset)\"");
    let _ = writeln!(out, "*DESIGN \"{}\"", netlist.name());
    let _ = writeln!(out, "*C_UNIT 1 FF");
    for (id, node) in netlist.iter() {
        // Only nets that drive something carry a load.
        if !node.fanout().is_empty() {
            let _ = writeln!(out, "*D_NET {} {:.6}", node.name(), annotation.load_ff(id));
        }
    }
    let _ = writeln!(out, "*END");
    out
}

/// Parses simplified SPEF into a name → capacitance map.
///
/// # Errors
///
/// Returns [`SdfError::Parse`] for malformed lines.
pub fn parse_spef(text: &str) -> Result<HashMap<String, f64>, SdfError> {
    let mut loads = HashMap::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let stripped = raw.split("//").next().unwrap_or("").trim();
        if stripped.is_empty() || stripped == "*END" {
            continue;
        }
        if let Some(rest) = stripped.strip_prefix("*D_NET") {
            let mut parts = rest.split_whitespace();
            let net = parts.next().ok_or_else(|| SdfError::Parse {
                line,
                message: "*D_NET missing net name".to_owned(),
            })?;
            let cap: f64 = parts
                .next()
                .ok_or_else(|| SdfError::Parse {
                    line,
                    message: "*D_NET missing capacitance".to_owned(),
                })?
                .parse()
                .map_err(|_| SdfError::Parse {
                    line,
                    message: "invalid capacitance value".to_owned(),
                })?;
            if !cap.is_finite() || cap < 0.0 {
                return Err(SdfError::Parse {
                    line,
                    message: "capacitance must be finite and non-negative".to_owned(),
                });
            }
            loads.insert(net.to_owned(), cap);
        } else if stripped.starts_with('*') {
            // Other header directives are ignored.
            continue;
        } else {
            return Err(SdfError::Parse {
                line,
                message: format!("unrecognized line `{stripped}`"),
            });
        }
    }
    Ok(loads)
}

/// Applies parsed SPEF loads to an annotation.
///
/// # Errors
///
/// Returns [`SdfError::UnknownNet`] if the file names a net the netlist
/// does not contain.
pub fn apply_spef(
    netlist: &Netlist,
    annotation: &mut TimingAnnotation,
    loads: &HashMap<String, f64>,
) -> Result<(), SdfError> {
    for (net, &cap) in loads {
        let id = netlist
            .find(net)
            .ok_or_else(|| SdfError::UnknownNet { net: net.clone() })?;
        annotation.set_load_ff(id, cap);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfs_netlist::bench::{parse_bench, BenchOptions, C17_BENCH};
    use avfs_netlist::CellLibrary;

    fn c17() -> Netlist {
        let lib = CellLibrary::nangate15_like();
        parse_bench("c17", C17_BENCH, &lib, &BenchOptions::default()).unwrap()
    }

    #[test]
    fn roundtrip_loads() {
        let n = c17();
        let mut ann = TimingAnnotation::zero(&n);
        let g10 = n.find("10").unwrap();
        ann.set_load_ff(g10, 9.75);
        let text = write_spef(&n, &ann);
        assert!(text.contains("*D_NET 10 9.750000"));

        let loads = parse_spef(&text).unwrap();
        let mut ann2 = TimingAnnotation::zero(&n);
        apply_spef(&n, &mut ann2, &loads).unwrap();
        assert!((ann2.load_ff(g10) - 9.75).abs() < 1e-9);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(parse_spef("*D_NET onlyname\n").is_err());
        assert!(parse_spef("*D_NET n abc\n").is_err());
        assert!(parse_spef("*D_NET n -1.0\n").is_err());
        assert!(parse_spef("random garbage\n").is_err());
    }

    #[test]
    fn parse_ignores_headers_and_comments() {
        let loads =
            parse_spef("*SPEF \"x\"\n*DESIGN \"y\"\n// comment\n\n*D_NET a 1.5 // inline\n*END\n")
                .unwrap();
        assert_eq!(loads.len(), 1);
        assert_eq!(loads["a"], 1.5);
    }

    #[test]
    fn apply_rejects_unknown_net() {
        let n = c17();
        let mut ann = TimingAnnotation::zero(&n);
        let mut loads = HashMap::new();
        loads.insert("ghost".to_owned(), 1.0);
        assert!(matches!(
            apply_spef(&n, &mut ann, &loads),
            Err(SdfError::UnknownNet { .. })
        ));
    }

    #[test]
    fn writer_emits_driving_nets_only() {
        let n = c17();
        let ann = TimingAnnotation::zero(&n);
        let text = write_spef(&n, &ann);
        // POs drive nothing → no *D_NET for them.
        assert!(!text.contains("*D_NET 22_po"));
        // PIs and internal nets drive → present.
        assert!(text.contains("*D_NET 1 "));
        assert!(text.contains("*D_NET 16 "));
    }
}
