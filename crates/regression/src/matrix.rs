//! Minimal dense row-major matrix used by the regression pipeline.
//!
//! The matrices involved in cell characterization are tiny (the design
//! matrix is `m × (N+1)²` with `m` a few thousand samples and `N ≤ 5`), so a
//! straightforward row-major `Vec<f64>` with cache-friendly loop ordering is
//! entirely sufficient — no external linear-algebra crate is needed.

use crate::RegressionError;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f64` values.
///
/// # Example
///
/// ```
/// use avfs_regression::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(m[(1, 0)], 3.0);
/// assert_eq!(m.transpose()[(0, 1)], 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows
            .checked_mul(cols)
            .expect("matrix dimensions overflow usize");
        Matrix {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(
                row.len(),
                ncols,
                "row {i} has length {} but expected {ncols}",
                row.len()
            );
            data.extend_from_slice(row);
        }
        Matrix {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`RegressionError::DimensionMismatch`] if `data.len() !=
    /// rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, RegressionError> {
        if data.len() != rows * cols {
            return Err(RegressionError::DimensionMismatch {
                context: "Matrix::from_vec",
                left: (rows, cols),
                right: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrows the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Borrows one row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows one row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–matrix product `self · rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`RegressionError::DimensionMismatch`] if the inner
    /// dimensions disagree.
    pub fn mul(&self, rhs: &Matrix) -> Result<Matrix, RegressionError> {
        if self.cols != rhs.rows {
            return Err(RegressionError::DimensionMismatch {
                context: "Matrix::mul",
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // ikj ordering keeps the inner loop streaming over contiguous rows.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Errors
    ///
    /// Returns [`RegressionError::DimensionMismatch`] if `v.len() !=
    /// self.cols()`.
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vec<f64>, RegressionError> {
        if self.cols != v.len() {
            return Err(RegressionError::DimensionMismatch {
                context: "Matrix::mul_vec",
                left: (self.rows, self.cols),
                right: (v.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|i| {
                self.row(i)
                    .iter()
                    .zip(v)
                    .fold(0.0, |acc, (&a, &b)| a.mul_add(b, acc))
            })
            .collect())
    }

    /// Computes `Xᵀ · X` for `X = self` without forming the transpose.
    ///
    /// This is the Gram matrix of the normal equation (Eq. 8); it is
    /// symmetric positive semi-definite by construction.
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut g = Matrix::zeros(n, n);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..n {
                let a = row[i];
                if a == 0.0 {
                    continue;
                }
                let g_row = g.row_mut(i);
                for (j, &b) in row.iter().enumerate().skip(i) {
                    g_row[j] = a.mul_add(b, g_row[j]);
                }
            }
        }
        // Mirror the upper triangle into the lower one.
        for i in 0..n {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// Computes `Xᵀ · y` for `X = self`.
    ///
    /// # Errors
    ///
    /// Returns [`RegressionError::DimensionMismatch`] if `y.len() !=
    /// self.rows()`.
    pub fn transpose_mul_vec(&self, y: &[f64]) -> Result<Vec<f64>, RegressionError> {
        if self.rows != y.len() {
            return Err(RegressionError::DimensionMismatch {
                context: "Matrix::transpose_mul_vec",
                left: (self.rows, self.cols),
                right: (y.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (r, &yr) in y.iter().enumerate() {
            if yr == 0.0 {
                continue;
            }
            for (o, &x) in out.iter_mut().zip(self.row(r)) {
                *o = x.mul_add(yr, *o);
            }
        }
        Ok(out)
    }

    /// Maximum absolute element, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        if self.rows > 8 {
            writeln!(f, "  ... ({} more rows)", self.rows - 8)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(1, 2)], 0.0);
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(matches!(
            Matrix::from_vec(2, 2, vec![1.0; 3]),
            Err(RegressionError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn mul_small() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.mul(&b).unwrap();
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn mul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.mul(&b),
            Err(RegressionError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn mul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.5, -2.0], &[0.25, 9.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.mul(&i).unwrap(), a);
        assert_eq!(i.mul(&a).unwrap(), a);
    }

    #[test]
    fn mul_vec_matches_mul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let v = vec![10.0, 20.0];
        assert_eq!(a.mul_vec(&v).unwrap(), vec![50.0, 110.0]);
    }

    #[test]
    fn gram_matches_explicit_transpose_mul() {
        let x = Matrix::from_rows(&[&[1.0, 2.0, 0.5], &[3.0, -1.0, 2.0], &[0.0, 4.0, 1.0]]);
        let g = x.gram();
        let explicit = x.transpose().mul(&x).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((g[(i, j)] - explicit[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn transpose_mul_vec_matches_explicit() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, -1.0], &[0.5, 4.0]]);
        let y = vec![1.0, 2.0, 3.0];
        let xty = x.transpose_mul_vec(&y).unwrap();
        let explicit = x.transpose().mul_vec(&y).unwrap();
        assert_eq!(xty, explicit);
    }

    #[test]
    fn max_abs() {
        let m = Matrix::from_rows(&[&[1.0, -7.5], &[3.0, 2.0]]);
        assert_eq!(m.max_abs(), 7.5);
        assert_eq!(Matrix::zeros(0, 0).max_abs(), 0.0);
    }
}
