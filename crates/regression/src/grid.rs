//! Rectangular delay data grids with bilinear interpolation and
//! sub-sampling (Fig. 1, step B).
//!
//! The SPICE sweep produces delays on a coarse rectangular grid of operating
//! points (12 voltages × 9 loads in the paper). Before regression, the grid
//! is densified by linear interpolation on the *normalized* axes to increase
//! the sample density; the same interpolation also serves as the reference
//! ("linearly interpolated SPICE results") the fitted polynomials are
//! compared against in Figs. 4 and 5.

use crate::RegressionError;

/// A rectangular grid of values `d[i][j]` sampled at axis positions
/// `xs[i]`, `ys[j]`.
///
/// Axis values must be strictly increasing. For the characterization flow
/// the axes are the *normalized* voltage and capacitance coordinates, so
/// interpolation is linear in `φ_V(v)` and `φ_C(c)` — i.e. log-linear in
/// the raw capacitance, matching the power-of-two sweep.
///
/// # Example
///
/// ```
/// use avfs_regression::DataGrid;
///
/// # fn main() -> Result<(), avfs_regression::RegressionError> {
/// let grid = DataGrid::new(
///     vec![0.0, 1.0],
///     vec![0.0, 1.0],
///     vec![0.0, 1.0, 2.0, 3.0], // row-major: d(0,0), d(0,1), d(1,0), d(1,1)
/// )?;
/// assert_eq!(grid.sample(0.5, 0.5), 1.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DataGrid {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Row-major: `values[i * ys.len() + j]` is the sample at `(xs[i], ys[j])`.
    values: Vec<f64>,
}

impl DataGrid {
    /// Creates a grid from axis vectors and row-major values.
    ///
    /// # Errors
    ///
    /// Returns [`RegressionError::InvalidInterval`] if either axis has fewer
    /// than two points or is not strictly increasing, a
    /// [`RegressionError::DimensionMismatch`] if `values.len() !=
    /// xs.len() * ys.len()`, and [`RegressionError::NonFiniteSample`] if any
    /// value is NaN or infinite.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>, values: Vec<f64>) -> Result<Self, RegressionError> {
        if xs.len() < 2 || !strictly_increasing(&xs) {
            return Err(RegressionError::InvalidInterval {
                what: "x axis must have ≥ 2 strictly increasing points",
            });
        }
        if ys.len() < 2 || !strictly_increasing(&ys) {
            return Err(RegressionError::InvalidInterval {
                what: "y axis must have ≥ 2 strictly increasing points",
            });
        }
        if values.len() != xs.len() * ys.len() {
            return Err(RegressionError::DimensionMismatch {
                context: "DataGrid::new",
                left: (xs.len(), ys.len()),
                right: (values.len(), 1),
            });
        }
        if let Some(idx) = values.iter().position(|v| !v.is_finite()) {
            return Err(RegressionError::NonFiniteSample { index: idx });
        }
        Ok(DataGrid { xs, ys, values })
    }

    /// Builds a grid by evaluating `f(x, y)` at every axis crossing.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DataGrid::new`].
    pub fn from_fn(
        xs: Vec<f64>,
        ys: Vec<f64>,
        mut f: impl FnMut(f64, f64) -> f64,
    ) -> Result<Self, RegressionError> {
        let mut values = Vec::with_capacity(xs.len() * ys.len());
        for &x in &xs {
            for &y in &ys {
                values.push(f(x, y));
            }
        }
        DataGrid::new(xs, ys, values)
    }

    /// The x-axis sample positions.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The y-axis sample positions.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// The stored value at grid indices `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn at(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.xs.len() && j < self.ys.len(),
            "grid index out of bounds"
        );
        self.values[i * self.ys.len() + j]
    }

    /// Bilinear interpolation at `(x, y)`.
    ///
    /// Coordinates outside the grid are clamped to the boundary (the paper
    /// constrains operating points to the characterized intervals, so
    /// clamping only guards against floating-point edge noise).
    pub fn sample(&self, x: f64, y: f64) -> f64 {
        let (i0, tx) = locate(&self.xs, x);
        let (j0, ty) = locate(&self.ys, y);
        let w = self.ys.len();
        let d00 = self.values[i0 * w + j0];
        let d01 = self.values[i0 * w + j0 + 1];
        let d10 = self.values[(i0 + 1) * w + j0];
        let d11 = self.values[(i0 + 1) * w + j0 + 1];
        let a = d00 + (d01 - d00) * ty;
        let b = d10 + (d11 - d10) * ty;
        a + (b - a) * tx
    }

    /// Densifies the grid `factor`-fold per axis by bilinear sub-sampling
    /// (Fig. 1, step B: "linear interpolation and sub-sampling is employed
    /// … to increase the density of the sample data-grid").
    ///
    /// A factor of 1 returns a copy. The original sample points are
    /// preserved exactly (they fall onto the refined lattice).
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    pub fn refine(&self, factor: usize) -> DataGrid {
        assert!(factor > 0, "refinement factor must be ≥ 1");
        let xs = refine_axis(&self.xs, factor);
        let ys = refine_axis(&self.ys, factor);
        let mut values = Vec::with_capacity(xs.len() * ys.len());
        for &x in &xs {
            for &y in &ys {
                values.push(self.sample(x, y));
            }
        }
        DataGrid { xs, ys, values }
    }

    /// Iterates over all `(x, y, value)` samples in row-major order.
    pub fn samples(&self) -> impl Iterator<Item = (f64, f64, f64)> + '_ {
        let w = self.ys.len();
        self.values.iter().enumerate().map(move |(k, &d)| {
            let i = k / w;
            let j = k % w;
            (self.xs[i], self.ys[j], d)
        })
    }

    /// Number of samples in the grid.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the grid holds no samples (cannot occur for a valid grid).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Generates `count` equidistant probe positions per axis spanning the
    /// grid, as used for the paper's 64 × 64 evaluation lattice.
    pub fn equidistant_probes(&self, count: usize) -> (Vec<f64>, Vec<f64>) {
        (
            linspace(self.xs[0], *self.xs.last().expect("non-empty axis"), count),
            linspace(self.ys[0], *self.ys.last().expect("non-empty axis"), count),
        )
    }
}

/// `count` equidistant points covering `[lo, hi]` inclusive.
pub fn linspace(lo: f64, hi: f64, count: usize) -> Vec<f64> {
    match count {
        0 => Vec::new(),
        1 => vec![lo],
        _ => {
            let step = (hi - lo) / (count - 1) as f64;
            (0..count).map(|k| lo + step * k as f64).collect()
        }
    }
}

fn strictly_increasing(v: &[f64]) -> bool {
    v.windows(2).all(|w| w[0] < w[1]) && v.iter().all(|x| x.is_finite())
}

/// Finds the cell index and interpolation weight for coordinate `x` on a
/// sorted axis, clamping outside coordinates to the boundary cells.
fn locate(axis: &[f64], x: f64) -> (usize, f64) {
    let n = axis.len();
    if x <= axis[0] {
        return (0, 0.0);
    }
    if x >= axis[n - 1] {
        return (n - 2, 1.0);
    }
    // Binary search for the containing cell.
    let idx = match axis.binary_search_by(|a| a.total_cmp(&x)) {
        Ok(i) => i.min(n - 2),
        Err(i) => i - 1,
    };
    let t = (x - axis[idx]) / (axis[idx + 1] - axis[idx]);
    (idx, t)
}

fn refine_axis(axis: &[f64], factor: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity((axis.len() - 1) * factor + 1);
    for w in axis.windows(2) {
        for k in 0..factor {
            out.push(w[0] + (w[1] - w[0]) * k as f64 / factor as f64);
        }
    }
    out.push(*axis.last().expect("non-empty axis"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn unit_grid() -> DataGrid {
        // d(x, y) = x + 2y sampled on {0, 1}².
        DataGrid::new(vec![0.0, 1.0], vec![0.0, 1.0], vec![0.0, 2.0, 1.0, 3.0]).unwrap()
    }

    #[test]
    fn rejects_bad_axes() {
        assert!(DataGrid::new(vec![0.0], vec![0.0, 1.0], vec![0.0, 1.0]).is_err());
        assert!(DataGrid::new(vec![1.0, 0.0], vec![0.0, 1.0], vec![0.0; 4]).is_err());
        assert!(DataGrid::new(vec![0.0, 0.0], vec![0.0, 1.0], vec![0.0; 4]).is_err());
    }

    #[test]
    fn rejects_wrong_value_count() {
        assert!(matches!(
            DataGrid::new(vec![0.0, 1.0], vec![0.0, 1.0], vec![0.0; 3]),
            Err(RegressionError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rejects_non_finite() {
        assert!(matches!(
            DataGrid::new(
                vec![0.0, 1.0],
                vec![0.0, 1.0],
                vec![0.0, f64::NAN, 0.0, 0.0]
            ),
            Err(RegressionError::NonFiniteSample { index: 1 })
        ));
    }

    #[test]
    fn sample_reproduces_corners() {
        let g = unit_grid();
        assert_eq!(g.sample(0.0, 0.0), 0.0);
        assert_eq!(g.sample(0.0, 1.0), 2.0);
        assert_eq!(g.sample(1.0, 0.0), 1.0);
        assert_eq!(g.sample(1.0, 1.0), 3.0);
    }

    #[test]
    fn sample_is_bilinear() {
        let g = unit_grid();
        assert!((g.sample(0.5, 0.5) - 1.5).abs() < 1e-12);
        assert!((g.sample(0.25, 0.75) - (0.25 + 1.5)).abs() < 1e-12);
    }

    #[test]
    fn sample_clamps_outside() {
        let g = unit_grid();
        assert_eq!(g.sample(-1.0, -1.0), 0.0);
        assert_eq!(g.sample(2.0, 2.0), 3.0);
    }

    #[test]
    fn refine_preserves_original_points() {
        let g = DataGrid::from_fn(vec![0.0, 0.5, 1.0], vec![0.0, 1.0, 2.0], |x, y| 3.0 * x - y)
            .unwrap();
        let r = g.refine(4);
        assert_eq!(r.xs().len(), 9);
        assert_eq!(r.ys().len(), 9);
        for (x, y, d) in g.samples() {
            assert!((r.sample(x, y) - d).abs() < 1e-12);
        }
    }

    #[test]
    fn refine_factor_one_is_identity() {
        let g = unit_grid();
        assert_eq!(g.refine(1), g);
    }

    #[test]
    fn linspace_endpoints() {
        let v = linspace(0.0, 1.0, 64);
        assert_eq!(v.len(), 64);
        assert_eq!(v[0], 0.0);
        assert!((v[63] - 1.0).abs() < 1e-12);
        assert_eq!(linspace(0.0, 1.0, 1), vec![0.0]);
        assert!(linspace(0.0, 1.0, 0).is_empty());
    }

    #[test]
    fn samples_iterator_row_major() {
        let g = unit_grid();
        let s: Vec<_> = g.samples().collect();
        assert_eq!(s[0], (0.0, 0.0, 0.0));
        assert_eq!(s[1], (0.0, 1.0, 2.0));
        assert_eq!(s[2], (1.0, 0.0, 1.0));
        assert_eq!(s[3], (1.0, 1.0, 3.0));
    }

    proptest! {
        #[test]
        fn interpolation_exact_for_bilinear_functions(
            x in 0.0f64..1.0,
            y in 0.0f64..1.0,
            a in -2.0f64..2.0,
            b in -2.0f64..2.0,
            c in -2.0f64..2.0,
            d in -2.0f64..2.0,
        ) {
            // Bilinear functions are reproduced exactly by bilinear interpolation.
            let f = |x: f64, y: f64| a + b * x + c * y + d * x * y;
            let g = DataGrid::from_fn(
                vec![0.0, 0.25, 0.5, 0.75, 1.0],
                vec![0.0, 0.5, 1.0],
                f,
            ).unwrap();
            prop_assert!((g.sample(x, y) - f(x, y)).abs() < 1e-10);
        }

        #[test]
        fn interpolation_within_value_bounds(x in -0.5f64..1.5, y in -0.5f64..1.5) {
            let g = DataGrid::from_fn(
                vec![0.0, 0.3, 0.7, 1.0],
                vec![0.0, 0.4, 1.0],
                |x, y| (7.3 * x).sin() + (3.1 * y).cos(),
            ).unwrap();
            let (lo, hi) = g.samples().fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), (_, _, d)| {
                (lo.min(d), hi.max(d))
            });
            let s = g.sample(x, y);
            prop_assert!(s >= lo - 1e-12 && s <= hi + 1e-12);
        }

        #[test]
        fn refined_grid_agrees_with_parent(
            x in 0.0f64..1.0,
            y in 0.0f64..1.0,
            factor in 1usize..5,
        ) {
            let g = DataGrid::from_fn(
                vec![0.0, 0.5, 1.0],
                vec![0.0, 0.25, 1.0],
                |x, y| x * x + y,
            ).unwrap();
            let r = g.refine(factor);
            // The refined grid stores values interpolated from the parent, so
            // sampling it anywhere must agree with sampling the parent (both
            // are piecewise-bilinear over nested lattices).
            prop_assert!((r.sample(x, y) - g.sample(x, y)).abs() < 1e-9);
        }
    }
}
