//! Bivariate polynomial feature expansion (paper Eq. 4 and Eq. 6).
//!
//! A delay-deviation surface is modeled as a polynomial of order `2·N`,
//!
//! ```text
//! f(v, c) = Σ_{i=0..N} Σ_{j=0..N} β_{i,j} · vⁱ cʲ
//! ```
//!
//! The design-matrix column ordering follows Eq. 6 of the paper: row `k`
//! holds the power terms `v_k^i c_k^j` ordered with `i` (voltage power) as
//! the major index and `j` (capacitance power) as the minor index, so the
//! first column is the all-ones zero-degree term.

use crate::RegressionError;

/// The term basis of a bivariate polynomial with per-variable order `N`.
///
/// # Example
///
/// ```
/// use avfs_regression::PolyBasis;
///
/// let basis = PolyBasis::new(1);
/// assert_eq!(basis.len(), 4); // 1, c, v, v·c
/// assert_eq!(basis.features(2.0, 3.0), vec![1.0, 3.0, 2.0, 6.0]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PolyBasis {
    n: usize,
}

impl PolyBasis {
    /// Creates the basis for per-variable order `N` (polynomial order `2·N`).
    pub fn new(n: usize) -> Self {
        PolyBasis { n }
    }

    /// The per-variable order `N`.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Number of terms, `(N+1)²` — the coefficient count the paper quotes
    /// as 4, 9, 16, 25, … for N = 1, 2, 3, 4, …
    pub fn len(&self) -> usize {
        (self.n + 1) * (self.n + 1)
    }

    /// Returns `true` only for the degenerate zero-term basis (never
    /// constructed by [`PolyBasis::new`], provided for completeness).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Expands one sample `(v, c)` into its feature row `[vⁱcʲ]`.
    ///
    /// Ordering matches Eq. 6: `(i, j)` iterates with `i` major, `j` minor,
    /// i.e. `v⁰c⁰, v⁰c¹, …, v⁰cᴺ, v¹c⁰, …, vᴺcᴺ`.
    pub fn features(&self, v: f64, c: f64) -> Vec<f64> {
        let mut row = Vec::with_capacity(self.len());
        self.write_features(v, c, &mut row);
        row
    }

    /// Like [`PolyBasis::features`] but appends into a caller-provided
    /// buffer, avoiding per-row allocations in the hot sweep loop.
    pub fn write_features(&self, v: f64, c: f64, out: &mut Vec<f64>) {
        let n = self.n;
        // Incremental powers avoid calling powi in the inner loop.
        let mut vi = 1.0;
        for _ in 0..=n {
            let mut cj = 1.0;
            for _ in 0..=n {
                out.push(vi * cj);
                cj *= c;
            }
            vi *= v;
        }
    }

    /// Evaluates the polynomial with coefficient vector `beta` at `(v, c)`
    /// using Horner's method in both variables.
    ///
    /// This is the same nested-Horner scheme the paper compiles into the GPU
    /// delay kernel (Sec. IV): the inner reduction over `c` and outer
    /// reduction over `v` are chains of fused multiply-adds.
    ///
    /// # Errors
    ///
    /// Returns [`RegressionError::DimensionMismatch`] if `beta.len()` is not
    /// `(N+1)²`.
    pub fn eval(&self, beta: &[f64], v: f64, c: f64) -> Result<f64, RegressionError> {
        if beta.len() != self.len() {
            return Err(RegressionError::DimensionMismatch {
                context: "PolyBasis::eval",
                left: (1, self.len()),
                right: (1, beta.len()),
            });
        }
        Ok(eval_horner(self.n, beta, v, c))
    }

    /// Enumerates the `(i, j)` power pairs in design-matrix column order.
    pub fn powers(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let n = self.n;
        (0..=n).flat_map(move |i| (0..=n).map(move |j| (i, j)))
    }
}

/// Nested Horner evaluation of a bivariate polynomial.
///
/// `beta` is laid out with voltage power major (Eq. 6 ordering):
/// `beta[i*(n+1) + j] = β_{i,j}`. The outer Horner loop runs over `v`, the
/// inner one over `c`; both compile to FMA chains.
///
/// # Panics
///
/// Panics (debug assertions only) if `beta.len() < (n+1)²`; release builds
/// would read out of bounds, so callers must validate first — the public
/// entry point [`PolyBasis::eval`] does.
#[inline]
pub fn eval_horner(n: usize, beta: &[f64], v: f64, c: f64) -> f64 {
    debug_assert!(beta.len() >= (n + 1) * (n + 1));
    let width = n + 1;
    let mut acc = 0.0f64;
    // Outer Horner over v: acc = (…((row_N)·v + row_{N-1})·v + …) + row_0.
    for i in (0..width).rev() {
        let row = &beta[i * width..(i + 1) * width];
        // Inner Horner over c.
        let mut r = 0.0f64;
        for &b in row.iter().rev() {
            r = r.mul_add(c, b);
        }
        acc = acc.mul_add(v, r);
    }
    acc
}

/// Lane-batched nested Horner evaluation: `out[k] = f(v[k], c[k])` for a
/// whole lane group in one call.
///
/// The loop body is hand-unrolled into [`HORNER_LANE_BLOCK`]-wide blocks of
/// **independent** fused-multiply-add accumulator chains (`f64x4`-style):
/// the four chains share no data, so they fill the FMA pipeline (and let
/// the compiler pack them into vector registers) without reordering any
/// per-lane arithmetic. Each lane performs *exactly* the operation sequence
/// of [`eval_horner`] — same inner reduction over `c`, same outer reduction
/// over `v`, in the same order — so the batched result is **bitwise
/// identical** to the scalar result, which is what lets the simulator's
/// lane-packed execution path stay bit-for-bit reproducible against the
/// scalar reference:
///
/// ```
/// use avfs_regression::poly::{eval_horner, eval_horner_lanes};
///
/// let beta = [1.0, 2.0, 3.0, 4.0]; // f(v,c) = 1 + 2c + 3v + 4vc
/// let v = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6];
/// let c = [0.9, 0.8, 0.7, 0.6, 0.5, 0.4];
/// let mut out = [0.0; 6];
/// eval_horner_lanes(1, &beta, &v, &c, &mut out);
/// for k in 0..6 {
///     // Bitwise equality, not approximate equality.
///     assert_eq!(out[k].to_bits(), eval_horner(1, &beta, v[k], c[k]).to_bits());
/// }
/// ```
///
/// # Panics
///
/// Panics if `v`, `c` and `out` disagree in length; debug assertions also
/// check `beta.len()` like [`eval_horner`].
pub fn eval_horner_lanes(n: usize, beta: &[f64], v: &[f64], c: &[f64], out: &mut [f64]) {
    assert_eq!(v.len(), c.len(), "lane slice length mismatch");
    assert_eq!(v.len(), out.len(), "lane output length mismatch");
    debug_assert!(beta.len() >= (n + 1) * (n + 1));
    let width = n + 1;
    let mut k = 0;
    while k + HORNER_LANE_BLOCK <= v.len() {
        let (v0, v1, v2, v3) = (v[k], v[k + 1], v[k + 2], v[k + 3]);
        let (c0, c1, c2, c3) = (c[k], c[k + 1], c[k + 2], c[k + 3]);
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for i in (0..width).rev() {
            let row = &beta[i * width..(i + 1) * width];
            let (mut r0, mut r1, mut r2, mut r3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
            for &b in row.iter().rev() {
                // Four independent FMA chains — no cross-lane data flow.
                r0 = r0.mul_add(c0, b);
                r1 = r1.mul_add(c1, b);
                r2 = r2.mul_add(c2, b);
                r3 = r3.mul_add(c3, b);
            }
            a0 = a0.mul_add(v0, r0);
            a1 = a1.mul_add(v1, r1);
            a2 = a2.mul_add(v2, r2);
            a3 = a3.mul_add(v3, r3);
        }
        out[k] = a0;
        out[k + 1] = a1;
        out[k + 2] = a2;
        out[k + 3] = a3;
        k += HORNER_LANE_BLOCK;
    }
    // Partial-tail lanes fall back to the scalar kernel (identical math).
    while k < v.len() {
        out[k] = eval_horner(n, beta, v[k], c[k]);
        k += 1;
    }
}

/// Unroll width of [`eval_horner_lanes`]: four independent f64 accumulator
/// chains per block, matching one AVX2 `f64x4` vector register.
pub const HORNER_LANE_BLOCK: usize = 4;

/// Naive power-sum evaluation, kept as a cross-check oracle for the Horner
/// kernel (and used by tests/benches only).
pub fn eval_naive(n: usize, beta: &[f64], v: f64, c: f64) -> f64 {
    let width = n + 1;
    let mut acc = 0.0;
    for i in 0..width {
        for j in 0..width {
            acc += beta[i * width + j] * v.powi(i as i32) * c.powi(j as i32);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn term_counts_match_paper() {
        // Paper Sec. V.A: "4, 9, 16, 25, …" coefficients per pin-delay.
        assert_eq!(PolyBasis::new(1).len(), 4);
        assert_eq!(PolyBasis::new(2).len(), 9);
        assert_eq!(PolyBasis::new(3).len(), 16);
        assert_eq!(PolyBasis::new(4).len(), 25);
        assert_eq!(PolyBasis::new(5).len(), 36);
    }

    #[test]
    fn feature_ordering_matches_eq6() {
        // Eq. 6 row: v⁰c⁰, v⁰c¹, v¹c⁰ (for N=1 with i major: 1, c, v, vc).
        let basis = PolyBasis::new(1);
        assert_eq!(basis.features(2.0, 3.0), vec![1.0, 3.0, 2.0, 6.0]);
        let basis2 = PolyBasis::new(2);
        let f = basis2.features(2.0, 3.0);
        // 1, c, c², v, vc, vc², v², v²c, v²c²
        assert_eq!(f, vec![1.0, 3.0, 9.0, 2.0, 6.0, 18.0, 4.0, 12.0, 36.0]);
    }

    #[test]
    fn first_column_is_ones() {
        let basis = PolyBasis::new(3);
        for &(v, c) in &[(0.0, 0.0), (0.5, 0.7), (1.0, 1.0)] {
            assert_eq!(basis.features(v, c)[0], 1.0);
        }
    }

    #[test]
    fn eval_checks_coefficient_count() {
        let basis = PolyBasis::new(2);
        assert!(basis.eval(&[0.0; 4], 0.5, 0.5).is_err());
        assert!(basis.eval(&[0.0; 9], 0.5, 0.5).is_ok());
    }

    #[test]
    fn powers_enumeration() {
        let basis = PolyBasis::new(1);
        let p: Vec<_> = basis.powers().collect();
        assert_eq!(p, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn horner_matches_hand_computed() {
        // f(v,c) = 1 + 2c + 3v + 4vc at (v,c) = (2,3): 1 + 6 + 6 + 24 = 37.
        let beta = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(eval_horner(1, &beta, 2.0, 3.0), 37.0);
    }

    #[test]
    fn lanes_match_scalar_bitwise_including_tails() {
        let beta: Vec<f64> = (0..16).map(|k| (k as f64) * 0.07 - 0.5).collect();
        // Every length from 0 to 11 covers empty, partial-tail and
        // multi-block cases around the unroll width of 4.
        for len in 0..12usize {
            let v: Vec<f64> = (0..len).map(|k| 0.05 + 0.09 * k as f64).collect();
            let c: Vec<f64> = (0..len).map(|k| 0.95 - 0.08 * k as f64).collect();
            let mut out = vec![0.0; len];
            eval_horner_lanes(3, &beta, &v, &c, &mut out);
            for k in 0..len {
                let scalar = eval_horner(3, &beta, v[k], c[k]);
                assert_eq!(
                    out[k].to_bits(),
                    scalar.to_bits(),
                    "lane {k} of {len} diverged from scalar"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "lane slice length mismatch")]
    fn lanes_reject_mismatched_inputs() {
        let mut out = [0.0; 2];
        eval_horner_lanes(1, &[0.0; 4], &[0.1, 0.2], &[0.3], &mut out);
    }

    proptest! {
        #[test]
        fn lanes_match_scalar_bitwise_random(
            n in 1usize..=4,
            len in 0usize..10,
            seed in any::<u64>(),
        ) {
            let terms = (n + 1) * (n + 1);
            let mut state = seed | 1;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            };
            let beta: Vec<f64> = (0..terms).map(|_| next()).collect();
            let v: Vec<f64> = (0..len).map(|_| next()).collect();
            let c: Vec<f64> = (0..len).map(|_| next()).collect();
            let mut out = vec![0.0; len];
            eval_horner_lanes(n, &beta, &v, &c, &mut out);
            for k in 0..len {
                prop_assert_eq!(out[k].to_bits(), eval_horner(n, &beta, v[k], c[k]).to_bits());
            }
        }

        #[test]
        fn horner_matches_naive(
            n in 1usize..=5,
            v in -2.0f64..2.0,
            c in -2.0f64..2.0,
            seed in any::<u64>(),
        ) {
            // Deterministic pseudo-random coefficients from the seed.
            let len = (n + 1) * (n + 1);
            let mut state = seed | 1;
            let beta: Vec<f64> = (0..len)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
                })
                .collect();
            let h = eval_horner(n, &beta, v, c);
            let e = eval_naive(n, &beta, v, c);
            // Scale tolerance with the magnitude of the result.
            let tol = 1e-11 * (1.0 + e.abs());
            prop_assert!((h - e).abs() < tol, "horner {h} vs naive {e}");
        }

        #[test]
        fn features_dot_beta_equals_eval(
            n in 1usize..=4,
            v in 0.0f64..1.0,
            c in 0.0f64..1.0,
        ) {
            let basis = PolyBasis::new(n);
            let beta: Vec<f64> = (0..basis.len()).map(|k| (k as f64) * 0.37 - 1.0).collect();
            let row = basis.features(v, c);
            let dot: f64 = row.iter().zip(&beta).map(|(a, b)| a * b).sum();
            let ev = basis.eval(&beta, v, c).unwrap();
            prop_assert!((dot - ev).abs() < 1e-10 * (1.0 + ev.abs()));
        }
    }
}
