//! Approximation-error statistics as reported in Fig. 4 of the paper.
//!
//! For every fitted cell polynomial the paper evaluates a 64 × 64 lattice of
//! equidistant operating points against the linearly interpolated SPICE
//! reference and reports distributions of the **mean**, **standard
//! deviation** and **maximum** of the absolute relative error.

/// Summary statistics of a set of error magnitudes.
///
/// # Example
///
/// ```
/// use avfs_regression::ErrorStats;
///
/// let stats = ErrorStats::from_errors([0.01f64, -0.03, 0.02].iter().copied());
/// assert!((stats.mean - 0.02).abs() < 1e-12);
/// assert!((stats.max - 0.03).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorStats {
    /// Mean absolute error.
    pub mean: f64,
    /// Standard deviation of the absolute errors (population form).
    pub stddev: f64,
    /// Maximum absolute error.
    pub max: f64,
    /// Number of aggregated samples.
    pub count: usize,
}

impl ErrorStats {
    /// Aggregates statistics over (signed) errors; magnitudes are taken
    /// internally.
    ///
    /// Returns the all-zero default for an empty iterator.
    pub fn from_errors(errors: impl IntoIterator<Item = f64>) -> Self {
        let mut count = 0usize;
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        let mut max = 0.0f64;
        for e in errors {
            let a = e.abs();
            count += 1;
            sum += a;
            sum_sq += a * a;
            max = max.max(a);
        }
        if count == 0 {
            return ErrorStats::default();
        }
        let mean = sum / count as f64;
        let var = (sum_sq / count as f64 - mean * mean).max(0.0);
        ErrorStats {
            mean,
            stddev: var.sqrt(),
            max,
            count,
        }
    }
}

/// A distribution summary over many per-cell [`ErrorStats`], mirroring the
/// box-plot style aggregation of Fig. 4 (distribution of per-cell means,
/// stddevs and maxima across the library subset).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsDistribution {
    per_cell: Vec<ErrorStats>,
}

impl StatsDistribution {
    /// Creates an empty distribution.
    pub fn new() -> Self {
        StatsDistribution::default()
    }

    /// Adds one cell's error statistics.
    pub fn push(&mut self, stats: ErrorStats) {
        self.per_cell.push(stats);
    }

    /// Number of aggregated cells.
    pub fn len(&self) -> usize {
        self.per_cell.len()
    }

    /// `true` if no cells have been aggregated.
    pub fn is_empty(&self) -> bool {
        self.per_cell.is_empty()
    }

    /// The aggregated per-cell statistics.
    pub fn cells(&self) -> &[ErrorStats] {
        &self.per_cell
    }

    /// Average of the per-cell mean errors.
    pub fn avg_mean(&self) -> f64 {
        average(self.per_cell.iter().map(|s| s.mean))
    }

    /// Average of the per-cell standard deviations (the paper's "average
    /// standard deviation falls below 1 %" criterion for N ≥ 3).
    pub fn avg_stddev(&self) -> f64 {
        average(self.per_cell.iter().map(|s| s.stddev))
    }

    /// Average of the per-cell maximum errors (the paper's "average maximum
    /// error decreases below 2.7 %" criterion).
    pub fn avg_max(&self) -> f64 {
        average(self.per_cell.iter().map(|s| s.max))
    }

    /// Largest per-cell maximum error (the paper's "highest sample was
    /// 5.35 %").
    pub fn worst_max(&self) -> f64 {
        self.per_cell.iter().fold(0.0, |m, s| m.max(s.max))
    }

    /// Quantile of the per-cell mean errors, `q ∈ [0, 1]` (nearest-rank).
    pub fn mean_quantile(&self, q: f64) -> f64 {
        quantile(self.per_cell.iter().map(|s| s.mean).collect(), q)
    }

    /// Quantile of the per-cell maximum errors, `q ∈ [0, 1]` (nearest-rank).
    pub fn max_quantile(&self, q: f64) -> f64 {
        quantile(self.per_cell.iter().map(|s| s.max).collect(), q)
    }
}

impl FromIterator<ErrorStats> for StatsDistribution {
    fn from_iter<I: IntoIterator<Item = ErrorStats>>(iter: I) -> Self {
        StatsDistribution {
            per_cell: iter.into_iter().collect(),
        }
    }
}

impl Extend<ErrorStats> for StatsDistribution {
    fn extend<I: IntoIterator<Item = ErrorStats>>(&mut self, iter: I) {
        self.per_cell.extend(iter);
    }
}

fn average(values: impl Iterator<Item = f64>) -> f64 {
    let mut count = 0usize;
    let mut sum = 0.0;
    for v in values {
        count += 1;
        sum += v;
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

fn quantile(mut values: Vec<f64>, q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(f64::total_cmp);
    let q = q.clamp(0.0, 1.0);
    let idx = ((values.len() as f64 - 1.0) * q).round() as usize;
    values[idx]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_errors_give_zero_stats() {
        let s = ErrorStats::from_errors(std::iter::empty());
        assert_eq!(s, ErrorStats::default());
        assert_eq!(s.count, 0);
    }

    #[test]
    fn stats_hand_computed() {
        let s = ErrorStats::from_errors([1.0, -2.0, 3.0].iter().copied());
        assert_eq!(s.count, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.max - 3.0).abs() < 1e-12);
        // population stddev of {1,2,3} = sqrt(2/3)
        assert!((s.stddev - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn distribution_averages() {
        let mut d = StatsDistribution::new();
        d.push(ErrorStats {
            mean: 0.01,
            stddev: 0.005,
            max: 0.02,
            count: 10,
        });
        d.push(ErrorStats {
            mean: 0.03,
            stddev: 0.015,
            max: 0.06,
            count: 10,
        });
        assert!((d.avg_mean() - 0.02).abs() < 1e-12);
        assert!((d.avg_stddev() - 0.01).abs() < 1e-12);
        assert!((d.avg_max() - 0.04).abs() < 1e-12);
        assert!((d.worst_max() - 0.06).abs() < 1e-12);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn quantiles() {
        let d: StatsDistribution = (1..=5)
            .map(|k| ErrorStats {
                mean: k as f64,
                stddev: 0.0,
                max: 10.0 * k as f64,
                count: 1,
            })
            .collect();
        assert_eq!(d.mean_quantile(0.0), 1.0);
        assert_eq!(d.mean_quantile(0.5), 3.0);
        assert_eq!(d.mean_quantile(1.0), 5.0);
        assert_eq!(d.max_quantile(1.0), 50.0);
    }

    #[test]
    fn empty_distribution_is_zero() {
        let d = StatsDistribution::new();
        assert!(d.is_empty());
        assert_eq!(d.avg_mean(), 0.0);
        assert_eq!(d.worst_max(), 0.0);
        assert_eq!(d.mean_quantile(0.5), 0.0);
    }

    proptest! {
        #[test]
        fn mean_le_max(errors in prop::collection::vec(-1.0f64..1.0, 1..100)) {
            let s = ErrorStats::from_errors(errors.iter().copied());
            prop_assert!(s.mean <= s.max + 1e-15);
            prop_assert!(s.stddev >= 0.0);
            // Population stddev of values in [0, max] is at most max/2… but
            // the loose invariant stddev <= max always holds.
            prop_assert!(s.stddev <= s.max + 1e-15);
        }

        #[test]
        fn stats_scale_linearly(
            errors in prop::collection::vec(-1.0f64..1.0, 1..50),
            k in 0.1f64..10.0,
        ) {
            let s1 = ErrorStats::from_errors(errors.iter().copied());
            let s2 = ErrorStats::from_errors(errors.iter().map(|e| e * k));
            prop_assert!((s2.mean - k * s1.mean).abs() < 1e-9 * (1.0 + s2.mean.abs()));
            prop_assert!((s2.max - k * s1.max).abs() < 1e-9 * (1.0 + s2.max.abs()));
            prop_assert!((s2.stddev - k * s1.stddev).abs() < 1e-7 * (1.0 + s2.stddev.abs()));
        }
    }
}
