//! Ordinary least-squares multi-variable linear regression (Sec. III.C).
//!
//! The regression model is `y = X·β + ε` (Eq. 5) with the design matrix `X`
//! of polynomial power terms (Eq. 6). The fitted coefficients follow the
//! ordinary-least-squares criterion (Eq. 7), obtained by solving the normal
//! equation `β̂ = (XᵀX)⁻¹ Xᵀ y` (Eq. 8) via Cholesky factorization of the
//! Gram matrix, with a Householder-QR fallback when `XᵀX` is numerically
//! indefinite.

use crate::matrix::Matrix;
use crate::poly::PolyBasis;
use crate::solve::{solve_cholesky, solve_qr_least_squares};
use crate::RegressionError;
use avfs_obs::Metrics;

/// Builds the design matrix `X` of Eq. 6 for normalized samples `(v, c)`.
///
/// Row `k` contains the power terms `v_kⁱ c_kʲ` in basis order.
pub fn design_matrix(basis: &PolyBasis, samples: &[(f64, f64)]) -> Matrix {
    let cols = basis.len();
    let mut data = Vec::with_capacity(samples.len() * cols);
    for &(v, c) in samples {
        basis.write_features(v, c, &mut data);
    }
    Matrix::from_vec(samples.len(), cols, data).expect("design matrix shape is consistent")
}

/// Fits polynomial coefficients `β̂` to samples by ordinary least squares.
///
/// `samples` are the normalized `(v, c)` predictor pairs and `targets` the
/// normalized delay deviations `φ_D(d)`. Solving goes through the normal
/// equation with Cholesky (the paper's Eq. 8); if the Gram matrix is too
/// ill-conditioned to factorize, the solver transparently falls back to a
/// Householder-QR least-squares factorization of `X` itself.
///
/// # Errors
///
/// * [`RegressionError::DimensionMismatch`] if `samples.len() !=
///   targets.len()`.
/// * [`RegressionError::UnderDetermined`] if there are fewer samples than
///   coefficients.
/// * [`RegressionError::NonFiniteSample`] if any input is NaN/infinite.
/// * [`RegressionError::SingularMatrix`] if even the QR fallback cannot
///   determine the coefficients (rank-deficient design).
///
/// # Example
///
/// ```
/// use avfs_regression::{PolyBasis, fit_least_squares};
///
/// # fn main() -> Result<(), avfs_regression::RegressionError> {
/// let basis = PolyBasis::new(2);
/// let truth = [0.1, -0.2, 0.05, 0.3, 0.0, 0.01, -0.15, 0.02, 0.002];
/// let mut samples = Vec::new();
/// let mut targets = Vec::new();
/// for i in 0..8 {
///     for j in 0..8 {
///         let (v, c) = (i as f64 / 7.0, j as f64 / 7.0);
///         samples.push((v, c));
///         targets.push(basis.eval(&truth, v, c)?);
///     }
/// }
/// let beta = fit_least_squares(&basis, &samples, &targets)?;
/// for (b, t) in beta.iter().zip(&truth) {
///     assert!((b - t).abs() < 1e-8);
/// }
/// # Ok(())
/// # }
/// ```
pub fn fit_least_squares(
    basis: &PolyBasis,
    samples: &[(f64, f64)],
    targets: &[f64],
) -> Result<Vec<f64>, RegressionError> {
    if samples.len() != targets.len() {
        return Err(RegressionError::DimensionMismatch {
            context: "fit_least_squares",
            left: (samples.len(), 2),
            right: (targets.len(), 1),
        });
    }
    if samples.len() < basis.len() {
        return Err(RegressionError::UnderDetermined {
            samples: samples.len(),
            unknowns: basis.len(),
        });
    }
    for (k, &(v, c)) in samples.iter().enumerate() {
        if !v.is_finite() || !c.is_finite() {
            return Err(RegressionError::NonFiniteSample { index: k });
        }
    }
    if let Some(k) = targets.iter().position(|t| !t.is_finite()) {
        return Err(RegressionError::NonFiniteSample { index: k });
    }

    let x = design_matrix(basis, samples);
    let gram = x.gram();
    let rhs = x.transpose_mul_vec(targets)?;
    match solve_cholesky(&gram, &rhs) {
        Ok(beta) => Ok(beta),
        // Ill-conditioned normal equation: retry on the un-squared problem.
        Err(RegressionError::SingularMatrix { .. }) => solve_qr_least_squares(&x, targets),
        Err(e) => Err(e),
    }
}

/// [`fit_least_squares`] with optional instrumentation: when `metrics` is
/// present, each call records the phase `"regression/fit"`, bumps the
/// counter `"regression.fits"` and feeds the per-fit duration into the
/// `"regression.fit_ns"` histogram (nanoseconds) — the distribution to
/// compare against the paper's 1–40 ms per-fit claim (Sec. V.A).
///
/// # Errors
///
/// Identical to [`fit_least_squares`].
pub fn fit_least_squares_metered(
    basis: &PolyBasis,
    samples: &[(f64, f64)],
    targets: &[f64],
    metrics: Option<&Metrics>,
) -> Result<Vec<f64>, RegressionError> {
    match metrics {
        None => fit_least_squares(basis, samples, targets),
        Some(m) => {
            let span = m.span("regression/fit");
            let result = fit_least_squares(basis, samples, targets);
            let elapsed = span.finish();
            m.add("regression.fits", 1);
            m.record(
                "regression.fit_ns",
                u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
            );
            result
        }
    }
}

/// The fitted-model residual summary `ε = y − X·β̂`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResidualSummary {
    /// Sum of squared residuals `‖ε‖₂²` (the quantity Eq. 7 minimizes).
    pub sum_squares: f64,
    /// Maximum absolute residual.
    pub max_abs: f64,
    /// Root-mean-square residual.
    pub rms: f64,
}

/// Computes residual statistics of a fit over its training samples.
///
/// # Errors
///
/// Returns [`RegressionError::DimensionMismatch`] if the coefficient count
/// does not match the basis or the sample/target lengths differ.
pub fn residuals(
    basis: &PolyBasis,
    beta: &[f64],
    samples: &[(f64, f64)],
    targets: &[f64],
) -> Result<ResidualSummary, RegressionError> {
    if samples.len() != targets.len() {
        return Err(RegressionError::DimensionMismatch {
            context: "residuals",
            left: (samples.len(), 2),
            right: (targets.len(), 1),
        });
    }
    let mut sum_squares = 0.0;
    let mut max_abs = 0.0f64;
    for (&(v, c), &t) in samples.iter().zip(targets) {
        let r = basis.eval(beta, v, c)? - t;
        sum_squares += r * r;
        max_abs = max_abs.max(r.abs());
    }
    let rms = if samples.is_empty() {
        0.0
    } else {
        (sum_squares / samples.len() as f64).sqrt()
    };
    Ok(ResidualSummary {
        sum_squares,
        max_abs,
        rms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn lattice(nx: usize, ny: usize) -> Vec<(f64, f64)> {
        let mut s = Vec::new();
        for i in 0..nx {
            for j in 0..ny {
                s.push((i as f64 / (nx - 1) as f64, j as f64 / (ny - 1) as f64));
            }
        }
        s
    }

    #[test]
    fn design_matrix_layout() {
        let basis = PolyBasis::new(1);
        let x = design_matrix(&basis, &[(2.0, 3.0), (0.5, 4.0)]);
        assert_eq!(x.rows(), 2);
        assert_eq!(x.cols(), 4);
        assert_eq!(x.row(0), &[1.0, 3.0, 2.0, 6.0]);
        assert_eq!(x.row(1), &[1.0, 4.0, 0.5, 2.0]);
    }

    #[test]
    fn recovers_exact_polynomial() {
        let basis = PolyBasis::new(3);
        let truth: Vec<f64> = (0..16).map(|k| 0.01 * (k as f64 - 7.5)).collect();
        let samples = lattice(9, 9);
        let targets: Vec<f64> = samples
            .iter()
            .map(|&(v, c)| basis.eval(&truth, v, c).unwrap())
            .collect();
        let beta = fit_least_squares(&basis, &samples, &targets).unwrap();
        for (b, t) in beta.iter().zip(&truth) {
            assert!((b - t).abs() < 1e-8, "{b} vs {t}");
        }
    }

    #[test]
    fn rejects_underdetermined() {
        let basis = PolyBasis::new(3); // 16 unknowns
        let samples = lattice(3, 3); // 9 samples
        let targets = vec![0.0; 9];
        assert!(matches!(
            fit_least_squares(&basis, &samples, &targets),
            Err(RegressionError::UnderDetermined { .. })
        ));
    }

    #[test]
    fn rejects_len_mismatch() {
        let basis = PolyBasis::new(1);
        assert!(matches!(
            fit_least_squares(&basis, &lattice(3, 3), &[0.0; 8]),
            Err(RegressionError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rejects_non_finite() {
        let basis = PolyBasis::new(1);
        let mut targets = vec![0.0; 9];
        targets[4] = f64::NAN;
        assert!(matches!(
            fit_least_squares(&basis, &lattice(3, 3), &targets),
            Err(RegressionError::NonFiniteSample { index: 4 })
        ));
    }

    #[test]
    fn noisy_fit_beats_naive_constant() {
        // With symmetric deterministic "noise", OLS should approximate the
        // underlying linear trend far better than a constant model.
        let basis = PolyBasis::new(1);
        let samples = lattice(16, 16);
        let targets: Vec<f64> = samples
            .iter()
            .enumerate()
            .map(|(k, &(v, c))| 0.5 * v - 0.25 * c + if k % 2 == 0 { 1e-3 } else { -1e-3 })
            .collect();
        let beta = fit_least_squares(&basis, &samples, &targets).unwrap();
        assert!((beta[2] - 0.5).abs() < 1e-2); // v coefficient
        assert!((beta[1] + 0.25).abs() < 1e-2); // c coefficient
        let res = residuals(&basis, &beta, &samples, &targets).unwrap();
        assert!(res.rms < 2e-3);
    }

    #[test]
    fn residuals_zero_for_exact_fit() {
        let basis = PolyBasis::new(2);
        let truth = [0.1; 9];
        let samples = lattice(5, 5);
        let targets: Vec<f64> = samples
            .iter()
            .map(|&(v, c)| basis.eval(&truth, v, c).unwrap())
            .collect();
        let beta = fit_least_squares(&basis, &samples, &targets).unwrap();
        let res = residuals(&basis, &beta, &samples, &targets).unwrap();
        assert!(res.max_abs < 1e-9);
        assert!(res.sum_squares < 1e-18);
    }

    proptest! {
        // Planted-polynomial recovery: whatever the coefficients, an exact
        // polynomial sampled on a dense enough lattice must be recovered.
        #[test]
        fn recovers_planted_polynomial(
            n in 1usize..=4,
            seed in any::<u64>(),
        ) {
            let basis = PolyBasis::new(n);
            let mut state = seed | 1;
            let truth: Vec<f64> = (0..basis.len())
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
                })
                .collect();
            let samples = lattice(2 * n + 3, 2 * n + 3);
            let targets: Vec<f64> = samples
                .iter()
                .map(|&(v, c)| basis.eval(&truth, v, c).unwrap())
                .collect();
            let beta = fit_least_squares(&basis, &samples, &targets).unwrap();
            // The monomial Gram matrix is badly conditioned at higher orders,
            // so compare in function space (what the delay kernel consumes)
            // rather than coefficient space.
            for (&(v, c), &t) in samples.iter().zip(&targets) {
                let p = basis.eval(&beta, v, c).unwrap();
                prop_assert!((p - t).abs() < 1e-7 * (1.0 + t.abs()), "{p} vs {t}");
            }
        }

        // OLS optimality: perturbing any single fitted coefficient must not
        // reduce the sum of squared residuals.
        #[test]
        fn fit_is_least_squares_optimal(
            seed in any::<u64>(),
            coeff_idx in 0usize..4,
            delta in prop::sample::select(vec![-1e-3f64, 1e-3]),
        ) {
            let basis = PolyBasis::new(1);
            let samples = lattice(6, 6);
            let mut state = seed | 1;
            let targets: Vec<f64> = samples
                .iter()
                .map(|&(v, c)| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let noise = ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                    v - c + 0.1 * noise
                })
                .collect();
            let beta = fit_least_squares(&basis, &samples, &targets).unwrap();
            let base = residuals(&basis, &beta, &samples, &targets).unwrap().sum_squares;
            let mut perturbed = beta.clone();
            perturbed[coeff_idx] += delta;
            let worse = residuals(&basis, &perturbed, &samples, &targets).unwrap().sum_squares;
            prop_assert!(base <= worse + 1e-12);
        }
    }
}
