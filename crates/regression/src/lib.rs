//! Statistical-learning substrate for the AVFS delay characterization flow.
//!
//! This crate implements the offline learning machinery of Schneider &
//! Wunderlich (DATE'20), Section III: dense linear algebra, ordinary
//! least-squares multi-variable linear regression (the normal equation
//! `β̂ = (XᵀX)⁻¹ Xᵀ y`, Eq. 8), bivariate polynomial feature expansion
//! (Eq. 4/6), the parameter normalizations `φ_V`, `φ_C`, `φ_D`, data-grid
//! densification by bilinear interpolation (Fig. 1, step B), and the error
//! statistics reported in Fig. 4.
//!
//! Everything is `f64`; the paper requires double precision throughout the
//! delay path because polynomial evaluation is highly sensitive to
//! coefficient perturbations (Sec. III.D).
//!
//! # Example
//!
//! Fit a plane `d = 1 + 2v + 3c` from samples and recover its coefficients:
//!
//! ```
//! use avfs_regression::{poly::PolyBasis, linreg::fit_least_squares};
//!
//! # fn main() -> Result<(), avfs_regression::RegressionError> {
//! let basis = PolyBasis::new(1); // order 2·N with N = 1: terms 1, c, v, vc
//! let mut xs = Vec::new();
//! let mut ys = Vec::new();
//! for &v in &[0.0, 0.25, 0.5, 1.0] {
//!     for &c in &[0.0, 0.5, 1.0] {
//!         xs.push((v, c));
//!         ys.push(1.0 + 2.0 * v + 3.0 * c);
//!     }
//! }
//! let beta = fit_least_squares(&basis, &xs, &ys)?;
//! assert!((beta[0] - 1.0).abs() < 1e-9); // constant term
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod grid;
pub mod linreg;
pub mod matrix;
pub mod normalize;
pub mod poly;
pub mod solve;
pub mod stats;

pub use grid::DataGrid;
pub use linreg::{fit_least_squares, fit_least_squares_metered};
pub use matrix::Matrix;
pub use normalize::{CapNormalizer, DelayNormalizer, VoltageNormalizer};
pub use poly::PolyBasis;
pub use stats::ErrorStats;

use std::error::Error;
use std::fmt;

/// Errors produced by the regression substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RegressionError {
    /// Matrix dimensions are incompatible for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        context: &'static str,
        /// Dimensions of the left / first operand.
        left: (usize, usize),
        /// Dimensions of the right / second operand.
        right: (usize, usize),
    },
    /// The system matrix is singular (or numerically indefinite) and cannot
    /// be factorized.
    SingularMatrix {
        /// Pivot index at which the factorization broke down.
        pivot: usize,
    },
    /// Fewer samples than unknown coefficients; the least-squares problem is
    /// under-determined.
    UnderDetermined {
        /// Number of provided samples.
        samples: usize,
        /// Number of unknown coefficients.
        unknowns: usize,
    },
    /// An interval given to a normalizer or grid was empty or inverted.
    InvalidInterval {
        /// Description of the offending interval.
        what: &'static str,
    },
    /// A sample value is non-finite (NaN or infinite).
    NonFiniteSample {
        /// Index of the offending sample.
        index: usize,
    },
}

impl fmt::Display for RegressionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegressionError::DimensionMismatch {
                context,
                left,
                right,
            } => write!(
                f,
                "dimension mismatch in {context}: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            RegressionError::SingularMatrix { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            RegressionError::UnderDetermined { samples, unknowns } => write!(
                f,
                "under-determined system: {samples} samples for {unknowns} unknowns"
            ),
            RegressionError::InvalidInterval { what } => {
                write!(f, "invalid interval: {what}")
            }
            RegressionError::NonFiniteSample { index } => {
                write!(f, "non-finite sample value at index {index}")
            }
        }
    }
}

impl Error for RegressionError {}
