//! Parameter normalizations from Sec. III.C of the paper.
//!
//! Prior to regression all predictor and response values are normalized "to
//! evenly weight the parameters and prevent overfitting":
//!
//! * voltages: `φ_V(v) = (v − V_min) / (V_max − V_min)` — linear to `[0, 1]`,
//! * capacitances: `φ_C(c) = (log₂ c − log₂ C_min) / (log₂ C_max − log₂ C_min)`
//!   — logarithmic, because load sweeps span powers of two,
//! * delays: `φ_D(d) = d / d_nom − 1` — relative deviation from the nominal
//!   operating point (Eq. 3).

use crate::RegressionError;

/// Linear voltage normalizer `φ_V : [V_min, V_max] → [0, 1]`.
///
/// # Example
///
/// ```
/// use avfs_regression::VoltageNormalizer;
///
/// # fn main() -> Result<(), avfs_regression::RegressionError> {
/// let phi = VoltageNormalizer::new(0.55, 1.10)?;
/// assert!((phi.apply(0.55) - 0.0).abs() < 1e-12);
/// assert!((phi.apply(1.10) - 1.0).abs() < 1e-12);
/// assert!((phi.invert(phi.apply(0.8)) - 0.8).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageNormalizer {
    v_min: f64,
    v_max: f64,
}

impl VoltageNormalizer {
    /// Creates a normalizer for the interval `[v_min, v_max]`.
    ///
    /// # Errors
    ///
    /// Returns [`RegressionError::InvalidInterval`] if the interval is empty,
    /// inverted, or non-finite.
    pub fn new(v_min: f64, v_max: f64) -> Result<Self, RegressionError> {
        if !(v_min.is_finite() && v_max.is_finite()) || v_min >= v_max {
            return Err(RegressionError::InvalidInterval {
                what: "voltage interval must be finite with v_min < v_max",
            });
        }
        Ok(VoltageNormalizer { v_min, v_max })
    }

    /// Lower bound of the interval.
    pub fn min(&self) -> f64 {
        self.v_min
    }

    /// Upper bound of the interval.
    pub fn max(&self) -> f64 {
        self.v_max
    }

    /// Applies `φ_V`.
    #[inline]
    pub fn apply(&self, v: f64) -> f64 {
        (v - self.v_min) / (self.v_max - self.v_min)
    }

    /// Inverts `φ_V`.
    #[inline]
    pub fn invert(&self, u: f64) -> f64 {
        self.v_min + u * (self.v_max - self.v_min)
    }

    /// Whether `v` lies inside the modeled interval.
    pub fn contains(&self, v: f64) -> bool {
        (self.v_min..=self.v_max).contains(&v)
    }
}

/// Logarithmic capacitance normalizer
/// `φ_C(c) = (log₂ c − log₂ C_min) / (log₂ C_max − log₂ C_min)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapNormalizer {
    c_min: f64,
    c_max: f64,
    log_min: f64,
    log_span: f64,
}

impl CapNormalizer {
    /// Creates a normalizer for loads in `[c_min, c_max]` (both strictly
    /// positive).
    ///
    /// # Errors
    ///
    /// Returns [`RegressionError::InvalidInterval`] if the interval is empty,
    /// inverted, non-finite, or touches zero.
    pub fn new(c_min: f64, c_max: f64) -> Result<Self, RegressionError> {
        if !(c_min.is_finite() && c_max.is_finite()) || c_min <= 0.0 || c_min >= c_max {
            return Err(RegressionError::InvalidInterval {
                what: "capacitance interval must be finite with 0 < c_min < c_max",
            });
        }
        let log_min = c_min.log2();
        let log_span = c_max.log2() - log_min;
        Ok(CapNormalizer {
            c_min,
            c_max,
            log_min,
            log_span,
        })
    }

    /// Lower bound of the interval.
    pub fn min(&self) -> f64 {
        self.c_min
    }

    /// Upper bound of the interval.
    pub fn max(&self) -> f64 {
        self.c_max
    }

    /// Applies `φ_C`.
    #[inline]
    pub fn apply(&self, c: f64) -> f64 {
        (c.log2() - self.log_min) / self.log_span
    }

    /// Inverts `φ_C`.
    #[inline]
    pub fn invert(&self, u: f64) -> f64 {
        (self.log_min + u * self.log_span).exp2()
    }

    /// Whether `c` lies inside the modeled interval.
    pub fn contains(&self, c: f64) -> bool {
        (self.c_min..=self.c_max).contains(&c)
    }
}

/// Relative delay normalizer `φ_D(d) = d / d_nom − 1` (Eq. 3).
///
/// The normalized value is the *delay deviation* the surface polynomial
/// approximates; `invert` recovers an absolute delay via Eq. 9,
/// `d' = d_nom · (1 + f(P))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayNormalizer {
    d_nom: f64,
}

impl DelayNormalizer {
    /// Creates a normalizer anchored at the nominal delay `d_nom`.
    ///
    /// # Errors
    ///
    /// Returns [`RegressionError::InvalidInterval`] if `d_nom` is not a
    /// strictly positive finite value.
    pub fn new(d_nom: f64) -> Result<Self, RegressionError> {
        if !d_nom.is_finite() || d_nom <= 0.0 {
            return Err(RegressionError::InvalidInterval {
                what: "nominal delay must be finite and positive",
            });
        }
        Ok(DelayNormalizer { d_nom })
    }

    /// The nominal delay `d_nom`.
    pub fn nominal(&self) -> f64 {
        self.d_nom
    }

    /// Applies `φ_D`: absolute delay → relative deviation.
    #[inline]
    pub fn apply(&self, d: f64) -> f64 {
        d / self.d_nom - 1.0
    }

    /// Inverts `φ_D` (Eq. 9): relative deviation → absolute delay.
    #[inline]
    pub fn invert(&self, deviation: f64) -> f64 {
        self.d_nom * (1.0 + deviation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn voltage_endpoints() {
        let phi = VoltageNormalizer::new(0.55, 1.1).unwrap();
        assert!((phi.apply(0.55)).abs() < 1e-12);
        assert!((phi.apply(1.1) - 1.0).abs() < 1e-12);
        // Paper nominal 0.8 V sits at (0.8-0.55)/0.55 ≈ 0.4545…
        assert!((phi.apply(0.8) - 0.25 / 0.55).abs() < 1e-12);
    }

    #[test]
    fn voltage_rejects_bad_intervals() {
        assert!(VoltageNormalizer::new(1.0, 1.0).is_err());
        assert!(VoltageNormalizer::new(1.2, 0.5).is_err());
        assert!(VoltageNormalizer::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn cap_is_logarithmic() {
        // Paper sweep: 0.5 fF … 128 fF in powers of two → φ_C is uniform
        // over the exponents.
        let phi = CapNormalizer::new(0.5, 128.0).unwrap();
        assert!((phi.apply(0.5)).abs() < 1e-12);
        assert!((phi.apply(128.0) - 1.0).abs() < 1e-12);
        // 8 fF is exponent 3 of 9 total steps (−1..7): (3−(−1))/8 = 0.5.
        assert!((phi.apply(8.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cap_rejects_nonpositive() {
        assert!(CapNormalizer::new(0.0, 1.0).is_err());
        assert!(CapNormalizer::new(-1.0, 1.0).is_err());
        assert!(CapNormalizer::new(2.0, 1.0).is_err());
    }

    #[test]
    fn delay_deviation_matches_eq3() {
        let phi = DelayNormalizer::new(100.0).unwrap();
        assert!((phi.apply(100.0)).abs() < 1e-12);
        assert!((phi.apply(150.0) - 0.5).abs() < 1e-12);
        assert!((phi.apply(50.0) + 0.5).abs() < 1e-12);
        // Eq. 9 round trip.
        assert!((phi.invert(0.5) - 150.0).abs() < 1e-12);
    }

    #[test]
    fn delay_rejects_nonpositive_nominal() {
        assert!(DelayNormalizer::new(0.0).is_err());
        assert!(DelayNormalizer::new(-1.0).is_err());
        assert!(DelayNormalizer::new(f64::INFINITY).is_err());
    }

    proptest! {
        #[test]
        fn voltage_roundtrip(v in 0.55f64..1.1) {
            let phi = VoltageNormalizer::new(0.55, 1.1).unwrap();
            prop_assert!((phi.invert(phi.apply(v)) - v).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&phi.apply(v)));
        }

        #[test]
        fn cap_roundtrip(c in 0.5f64..128.0) {
            let phi = CapNormalizer::new(0.5, 128.0).unwrap();
            prop_assert!((phi.invert(phi.apply(c)) - c).abs() < 1e-9 * c);
            prop_assert!((0.0..=1.0).contains(&phi.apply(c)));
        }

        #[test]
        fn cap_monotone(c1 in 0.5f64..128.0, c2 in 0.5f64..128.0) {
            let phi = CapNormalizer::new(0.5, 128.0).unwrap();
            if c1 < c2 {
                prop_assert!(phi.apply(c1) < phi.apply(c2));
            }
        }

        #[test]
        fn delay_roundtrip(d in 1.0f64..1e4, d_nom in 1.0f64..1e4) {
            let phi = DelayNormalizer::new(d_nom).unwrap();
            prop_assert!((phi.invert(phi.apply(d)) - d).abs() < 1e-9 * d);
        }
    }
}
