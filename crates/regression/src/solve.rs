//! Direct solvers for the small dense systems arising in cell
//! characterization.
//!
//! The normal-equation matrix `XᵀX` is symmetric positive definite whenever
//! the design matrix has full column rank, so a Cholesky factorization is the
//! workhorse. A Householder-QR least-squares path is provided as a more
//! robust fallback for ill-conditioned sweeps (high polynomial orders on
//! nearly collinear grids), and an LU solver with partial pivoting covers
//! general square systems.

use crate::{Matrix, RegressionError};

/// Solves `A·x = b` for symmetric positive definite `A` via Cholesky
/// factorization (`A = L·Lᵀ`).
///
/// # Errors
///
/// Returns [`RegressionError::SingularMatrix`] if `A` is not positive
/// definite (a non-positive pivot is encountered), and
/// [`RegressionError::DimensionMismatch`] if `A` is not square or `b` has
/// the wrong length.
pub fn solve_cholesky(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, RegressionError> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(RegressionError::DimensionMismatch {
            context: "solve_cholesky",
            left: (a.rows(), a.cols()),
            right: (b.len(), 1),
        });
    }
    let l = cholesky_factor(a)?;
    // Forward substitution: L·y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for j in 0..i {
            s -= l[(i, j)] * y[j];
        }
        y[i] = s / l[(i, i)];
    }
    // Back substitution: Lᵀ·x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for j in i + 1..n {
            s -= l[(j, i)] * x[j];
        }
        x[i] = s / l[(i, i)];
    }
    Ok(x)
}

/// Computes the lower-triangular Cholesky factor `L` with `A = L·Lᵀ`.
///
/// # Errors
///
/// Returns [`RegressionError::SingularMatrix`] if a pivot is not strictly
/// positive (within a small tolerance relative to the matrix scale).
pub fn cholesky_factor(a: &Matrix) -> Result<Matrix, RegressionError> {
    let n = a.rows();
    let scale = a.max_abs().max(f64::MIN_POSITIVE);
    let tol = scale * 1e-13;
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if s <= tol {
                    return Err(RegressionError::SingularMatrix { pivot: i });
                }
                l[(i, i)] = s.sqrt();
            } else {
                l[(i, j)] = s / l[(j, j)];
            }
        }
    }
    Ok(l)
}

/// Solves the square system `A·x = b` by LU decomposition with partial
/// pivoting.
///
/// # Errors
///
/// Returns [`RegressionError::SingularMatrix`] if no usable pivot exists,
/// and [`RegressionError::DimensionMismatch`] for shape errors.
pub fn solve_lu(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, RegressionError> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(RegressionError::DimensionMismatch {
            context: "solve_lu",
            left: (a.rows(), a.cols()),
            right: (b.len(), 1),
        });
    }
    let mut lu = a.clone();
    let mut x: Vec<f64> = b.to_vec();
    let scale = a.max_abs().max(f64::MIN_POSITIVE);
    let tol = scale * 1e-15;
    for col in 0..n {
        // Partial pivoting: pick the largest remaining entry in this column.
        let (pivot_row, pivot_val) = (col..n)
            .map(|r| (r, lu[(r, col)].abs()))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty pivot range");
        if pivot_val <= tol {
            return Err(RegressionError::SingularMatrix { pivot: col });
        }
        if pivot_row != col {
            for j in 0..n {
                let tmp = lu[(col, j)];
                lu[(col, j)] = lu[(pivot_row, j)];
                lu[(pivot_row, j)] = tmp;
            }
            x.swap(col, pivot_row);
        }
        let inv_pivot = 1.0 / lu[(col, col)];
        for r in col + 1..n {
            let factor = lu[(r, col)] * inv_pivot;
            lu[(r, col)] = factor;
            if factor == 0.0 {
                continue;
            }
            for j in col + 1..n {
                lu[(r, j)] -= factor * lu[(col, j)];
            }
            x[r] -= factor * x[col];
        }
    }
    // Back substitution on U.
    for i in (0..n).rev() {
        let mut s = x[i];
        for j in i + 1..n {
            s -= lu[(i, j)] * x[j];
        }
        x[i] = s / lu[(i, i)];
    }
    Ok(x)
}

/// Solves the (possibly over-determined) least-squares problem
/// `min ‖A·x − b‖₂` via Householder QR factorization.
///
/// This avoids squaring the condition number the way the normal equation
/// does, at roughly twice the arithmetic cost — the robust fallback for
/// high polynomial orders.
///
/// # Errors
///
/// Returns [`RegressionError::UnderDetermined`] if `A` has fewer rows than
/// columns, [`RegressionError::SingularMatrix`] if `A` is column-rank
/// deficient, and [`RegressionError::DimensionMismatch`] for shape errors.
pub fn solve_qr_least_squares(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, RegressionError> {
    let (m, n) = (a.rows(), a.cols());
    if b.len() != m {
        return Err(RegressionError::DimensionMismatch {
            context: "solve_qr_least_squares",
            left: (m, n),
            right: (b.len(), 1),
        });
    }
    if m < n {
        return Err(RegressionError::UnderDetermined {
            samples: m,
            unknowns: n,
        });
    }
    let mut r = a.clone();
    let mut rhs: Vec<f64> = b.to_vec();
    let scale = a.max_abs().max(f64::MIN_POSITIVE);
    let tol = scale * 1e-13;
    // Apply n Householder reflections in place, updating rhs alongside.
    for k in 0..n {
        let mut norm = 0.0f64;
        for i in k..m {
            norm = r[(i, k)].hypot(norm);
        }
        if norm <= tol {
            return Err(RegressionError::SingularMatrix { pivot: k });
        }
        let alpha = if r[(k, k)] > 0.0 { -norm } else { norm };
        // Householder vector v = x − α·e_k, stored temporarily.
        let mut v = vec![0.0; m - k];
        v[0] = r[(k, k)] - alpha;
        for i in k + 1..m {
            v[i - k] = r[(i, k)];
        }
        let vtv: f64 = v.iter().map(|x| x * x).sum();
        if vtv <= tol * tol {
            // Column already triangular below the diagonal.
            continue;
        }
        let beta = 2.0 / vtv;
        // Reflect the remaining columns of R.
        for j in k..n {
            let mut dot = 0.0;
            for i in k..m {
                dot += v[i - k] * r[(i, j)];
            }
            let f = beta * dot;
            for i in k..m {
                r[(i, j)] -= f * v[i - k];
            }
        }
        // Reflect the right-hand side.
        let mut dot = 0.0;
        for i in k..m {
            dot += v[i - k] * rhs[i];
        }
        let f = beta * dot;
        for i in k..m {
            rhs[i] -= f * v[i - k];
        }
    }
    // Back substitution on the upper-triangular leading n×n block.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = rhs[i];
        for j in i + 1..n {
            s -= r[(i, j)] * x[j];
        }
        if r[(i, i)].abs() <= tol {
            return Err(RegressionError::SingularMatrix { pivot: i });
        }
        x[i] = s / r[(i, i)];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_vec_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "element {i}: {x} vs {y} (tol {tol})");
        }
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // A = [[4,2],[2,3]] (SPD), b = [10, 8] → x = [1.75, 1.5]
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let x = solve_cholesky(&a, &[10.0, 8.0]).unwrap();
        assert_vec_close(&x, &[1.75, 1.5], 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            solve_cholesky(&a, &[1.0, 1.0]),
            Err(RegressionError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn cholesky_factor_reconstructs() {
        let a = Matrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]]);
        let l = cholesky_factor(&a).unwrap();
        let rec = l.mul(&l.transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn lu_solves_general_system() {
        // Requires pivoting: first pivot is 0.
        let a = Matrix::from_rows(&[&[0.0, 2.0, 1.0], &[1.0, 1.0, 1.0], &[2.0, 0.0, -1.0]]);
        let x_true = vec![1.0, -2.0, 3.0];
        let b = a.mul_vec(&x_true).unwrap();
        let x = solve_lu(&a, &b).unwrap();
        assert_vec_close(&x, &x_true, 1e-12);
    }

    #[test]
    fn lu_detects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            solve_lu(&a, &[1.0, 2.0]),
            Err(RegressionError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn qr_solves_square_system() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let x_true = vec![2.0, -1.0];
        let b = a.mul_vec(&x_true).unwrap();
        let x = solve_qr_least_squares(&a, &b).unwrap();
        assert_vec_close(&x, &x_true, 1e-12);
    }

    #[test]
    fn qr_least_squares_overdetermined() {
        // Fit y = 2t + 1 from 4 noiseless points: exact recovery.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]);
        let b = [1.0, 3.0, 5.0, 7.0];
        let x = solve_qr_least_squares(&a, &b).unwrap();
        assert_vec_close(&x, &[1.0, 2.0], 1e-12);
    }

    #[test]
    fn qr_least_squares_minimizes_residual() {
        // Inconsistent system: residual of LS solution must not exceed the
        // residual of nearby perturbed candidates.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]);
        let b = [0.0, 1.0, 1.0];
        let x = solve_qr_least_squares(&a, &b).unwrap();
        let res = |x: &[f64]| -> f64 {
            let ax = a.mul_vec(x).unwrap();
            ax.iter().zip(&b).map(|(p, q)| (p - q) * (p - q)).sum()
        };
        let base = res(&x);
        for d in [-1e-3, 1e-3] {
            assert!(base <= res(&[x[0] + d, x[1]]) + 1e-15);
            assert!(base <= res(&[x[0], x[1] + d]) + 1e-15);
        }
    }

    #[test]
    fn qr_rejects_underdetermined() {
        let a = Matrix::zeros(1, 2);
        assert!(matches!(
            solve_qr_least_squares(&a, &[1.0]),
            Err(RegressionError::UnderDetermined { .. })
        ));
    }

    #[test]
    fn qr_rejects_rank_deficient() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        assert!(matches!(
            solve_qr_least_squares(&a, &[1.0, 2.0, 3.0]),
            Err(RegressionError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn cholesky_and_qr_agree_on_normal_equation() {
        // Random-ish tall system; both paths must give the same LS solution.
        let a = Matrix::from_rows(&[
            &[1.0, 0.5, 0.25],
            &[1.0, 1.5, 2.25],
            &[1.0, 2.5, 6.25],
            &[1.0, 3.5, 12.25],
            &[1.0, 4.5, 20.25],
        ]);
        let b = [1.0, 2.0, 2.5, 3.5, 5.5];
        let x_qr = solve_qr_least_squares(&a, &b).unwrap();
        let g = a.gram();
        let rhs = a.transpose_mul_vec(&b).unwrap();
        let x_chol = solve_cholesky(&g, &rhs).unwrap();
        assert_vec_close(&x_qr, &x_chol, 1e-9);
    }
}
