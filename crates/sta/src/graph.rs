//! The per-pin-transition timing graph and its arrival/required
//! propagation.
//!
//! Every netlist node contributes two timing nodes — its rising and its
//! falling output transition — and every fanin pin contributes up to two
//! timing arcs per output transition, selected by the driving cell's
//! *unateness*: a positive-unate cell (BUF/AND/OR) propagates rise→rise
//! and fall→fall, a negative-unate cell (INV/NAND/NOR/AOI/OAI) flips the
//! edge, and a binate cell (XOR/XNOR/MUX2) admits both input edges for
//! either output edge. Arc delays are the simulator's own per-pin
//! [`PinDelays`], selected by the **output** transition edge — exactly
//! the `PinDelays::for_output` convention the waveform kernel applies —
//! so an arrival computed here is the same left-fold `t_in + delay` the
//! event chain performs, operation for operation.

use avfs_netlist::{Levelization, LogicFunction, Netlist, NodeId, NodeKind};
use avfs_waveform::PinDelays;
use std::fmt;

/// How a cell's output edge relates to the input edge that caused it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unateness {
    /// Output follows the input edge (BUF, AND, OR).
    Positive,
    /// Output inverts the input edge (INV, NAND, NOR, AOI21/22, OAI21/22).
    Negative,
    /// Either input edge can cause either output edge (XOR, XNOR, MUX2).
    Binate,
}

/// The unateness of a logic function, per input pin. The repo's cell set
/// is uniform across pins except MUX2, whose select pin is binate — and
/// a binate classification is always safe (it only widens the arc set),
/// so MUX2 is classified binate wholesale.
pub fn unateness(function: LogicFunction) -> Unateness {
    match function {
        LogicFunction::Buf | LogicFunction::And | LogicFunction::Or => Unateness::Positive,
        LogicFunction::Inv
        | LogicFunction::Nand
        | LogicFunction::Nor
        | LogicFunction::Aoi21
        | LogicFunction::Oai21
        | LogicFunction::Aoi22
        | LogicFunction::Oai22 => Unateness::Negative,
        // `LogicFunction` is non-exhaustive; an unknown future function
        // must be treated binate — the only always-sound classification.
        _ => Unateness::Binate,
    }
}

/// Rise/fall pair of timing values at one node — arrivals, required
/// times, or slacks depending on context. Unreachable values are
/// `NEG_INFINITY` for (latest) arrivals and `INFINITY` for earliest
/// arrivals and required times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Value for the rising output transition, ps.
    pub rise: f64,
    /// Value for the falling output transition, ps.
    pub fall: f64,
}

impl Arrival {
    /// The worse (larger) of the two edges.
    pub fn max(&self) -> f64 {
        self.rise.max(self.fall)
    }

    /// The better (smaller) of the two edges.
    pub fn min(&self) -> f64 {
        self.rise.min(self.fall)
    }

    fn get(&self, pol: usize) -> f64 {
        if pol == 0 {
            self.rise
        } else {
            self.fall
        }
    }
}

/// Errors constructing a [`TimingGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StaError {
    /// The delay matrix does not match the netlist shape.
    Shape {
        /// Which node disagrees (`None`: the outer vector length).
        node: Option<NodeId>,
        /// Expected pin count (or node count).
        expected: usize,
        /// Provided pin count (or node count).
        got: usize,
    },
    /// An SDF document failed to parse or annotate.
    Sdf(String),
}

impl fmt::Display for StaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaError::Shape {
                node: Some(node),
                expected,
                got,
            } => write!(
                f,
                "delay matrix disagrees with netlist at node {}: {expected} pin(s) expected, {got} given",
                node.index()
            ),
            StaError::Shape {
                node: None,
                expected,
                got,
            } => write!(
                f,
                "delay matrix has {got} node entr(ies), netlist has {expected}"
            ),
            StaError::Sdf(message) => write!(f, "SDF annotation failed: {message}"),
        }
    }
}

impl std::error::Error for StaError {}

/// One step of an extracted critical path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathStep {
    /// The node the transition passes through.
    pub node: NodeId,
    /// `true` for a rising transition at this node's output.
    pub rising: bool,
    /// Latest arrival of that transition, ps.
    pub arrival_ps: f64,
    /// Slack against the analysis' worst endpoint arrival, ps
    /// (`required − arrival`; ~0 along the critical path by definition).
    pub slack_ps: f64,
}

/// Per-endpoint (primary-output) timing summary. In this full-scan
/// model every primary input is a launch register's output and every
/// primary output a capture register's data pin, so "PO max delay" *is*
/// the reg2reg analysis: the endpoint's latest arrival is the minimum
/// cycle time its capture register tolerates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EndpointTiming {
    /// The primary-output node.
    pub node: NodeId,
    /// Latest arrival per edge (`NEG_INFINITY` when no launch point
    /// reaches the endpoint with that edge).
    pub latest: Arrival,
    /// Earliest arrival per edge (`INFINITY` when unreachable).
    pub earliest: Arrival,
}

/// The distilled result of one operating point's analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct StaReport {
    /// The launch instant arrivals were seeded with, ps.
    pub launch_time_ps: f64,
    /// Worst latest arrival over all endpoints and edges, ps — the STA
    /// upper bound no simulated transition can exceed
    /// (`NEG_INFINITY` when no endpoint is reachable).
    pub latest_arrival_ps: f64,
    /// Best earliest arrival over all reachable endpoints and edges, ps
    /// (`INFINITY` when no endpoint is reachable).
    pub earliest_arrival_ps: f64,
    /// The critical path, launch point → worst endpoint, with per-step
    /// arrivals and slacks.
    pub critical_path: Vec<PathStep>,
    /// Per-endpoint timing, in primary-output declaration order.
    pub endpoints: Vec<EndpointTiming>,
    /// Endpoints no launch point reaches (rule `AVC-T003`).
    pub unreachable_endpoints: Vec<NodeId>,
    /// Primary inputs with no timing arc leaving them (rule `AVC-T004`).
    pub unconstrained_inputs: Vec<NodeId>,
}

impl StaReport {
    /// The critical endpoint (last step of the critical path), if any
    /// endpoint is reachable.
    pub fn critical_endpoint(&self) -> Option<NodeId> {
        self.critical_path.last().map(|s| s.node)
    }

    /// The critical path as a plain node sequence (the shape
    /// `avfs_atpg::paths::Path` and sensitization consume).
    pub fn critical_nodes(&self) -> Vec<NodeId> {
        self.critical_path.iter().map(|s| s.node).collect()
    }
}

/// Full per-node analysis arrays — kept when callers need more than the
/// [`StaReport`] summary (per-node slack maps, custom endpoint sets).
#[derive(Debug, Clone, PartialEq)]
pub struct StaAnalysis {
    /// The launch instant arrivals were seeded with, ps.
    pub launch_time_ps: f64,
    /// Latest arrival per node (index = `NodeId::index`).
    pub latest: Vec<Arrival>,
    /// Earliest arrival per node.
    pub earliest: Vec<Arrival>,
    /// Required time per node against the worst endpoint arrival.
    pub required: Vec<Arrival>,
    /// Chosen predecessor `(node, edge)` per node per output edge
    /// (edge 0 = rise, 1 = fall); `None` at launch points and
    /// unreachable transitions.
    pred: Vec<[Option<(NodeId, usize)>; 2]>,
}

impl StaAnalysis {
    /// Slack (`required − latest arrival`) per edge at `node`. Positive
    /// slack means margin against the worst endpoint; ~0 on the critical
    /// path; non-finite where arrival or required is unreachable.
    pub fn slack_of(&self, node: NodeId) -> Arrival {
        let i = node.index();
        Arrival {
            rise: self.required[i].rise - self.latest[i].rise,
            fall: self.required[i].fall - self.latest[i].fall,
        }
    }
}

/// A per-pin-transition timing graph over one netlist: the netlist's
/// structure and levelization plus one concrete delay matrix (nominal,
/// SDF-annotated, or voltage-scaled — construction decides).
#[derive(Debug)]
pub struct TimingGraph<'a> {
    netlist: &'a Netlist,
    levels: &'a Levelization,
    /// Per node, per fanin pin: the rise/fall arc delays.
    delays: Vec<Vec<PinDelays>>,
}

impl<'a> TimingGraph<'a> {
    /// Builds a graph from an explicit delay matrix (`delays[node][pin]`,
    /// same shape as [`avfs_delay::TimingAnnotation`] — the voltage-scaled
    /// matrices `avfs-core` derives use this entry point).
    ///
    /// # Errors
    ///
    /// [`StaError::Shape`] when the matrix does not match the netlist.
    pub fn new(
        netlist: &'a Netlist,
        levels: &'a Levelization,
        delays: Vec<Vec<PinDelays>>,
    ) -> Result<TimingGraph<'a>, StaError> {
        if delays.len() != netlist.num_nodes() {
            return Err(StaError::Shape {
                node: None,
                expected: netlist.num_nodes(),
                got: delays.len(),
            });
        }
        for (id, node) in netlist.iter() {
            if delays[id.index()].len() != node.fanin().len() {
                return Err(StaError::Shape {
                    node: Some(id),
                    expected: node.fanin().len(),
                    got: delays[id.index()].len(),
                });
            }
        }
        Ok(TimingGraph {
            netlist,
            levels,
            delays,
        })
    }

    /// Builds a graph from a [`TimingAnnotation`](avfs_delay::TimingAnnotation) — the nominal-delay
    /// view, and the landing point for SDF-annotated designs
    /// (`avfs_sdf::sdf::parse_sdf` produces exactly this type).
    ///
    /// # Errors
    ///
    /// [`StaError::Shape`] when the annotation was built for a different
    /// netlist.
    pub fn from_annotation(
        netlist: &'a Netlist,
        levels: &'a Levelization,
        annotation: &avfs_delay::TimingAnnotation,
    ) -> Result<TimingGraph<'a>, StaError> {
        let delays = netlist
            .iter()
            .map(|(id, _)| annotation.node_delays(id).to_vec())
            .collect();
        TimingGraph::new(netlist, levels, delays)
    }

    /// Parses an SDF document and builds the annotated graph — the
    /// `crates/sdf` hook: designs whose delays arrive as
    /// `(DELAYFILE …)` text get the same analysis as in-memory
    /// annotations.
    ///
    /// # Errors
    ///
    /// [`StaError::Sdf`] for a malformed document, [`StaError::Shape`]
    /// if annotation produced an inconsistent matrix (unreachable for a
    /// successful parse).
    pub fn from_sdf(
        netlist: &'a Netlist,
        levels: &'a Levelization,
        sdf_text: &str,
    ) -> Result<TimingGraph<'a>, StaError> {
        let annotation = avfs_sdf::sdf::parse_sdf(netlist, sdf_text)
            .map_err(|e| StaError::Sdf(e.to_string()))?;
        TimingGraph::from_annotation(netlist, levels, &annotation)
    }

    /// The netlist under analysis.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// The arc delays of one node's fanin pins.
    pub fn node_delays(&self, node: NodeId) -> &[PinDelays] {
        &self.delays[node.index()]
    }

    /// The unateness governing `node`'s input→output edge mapping.
    /// Primary outputs are identity (positive) observation edges;
    /// primary inputs have no incoming arcs.
    fn node_unateness(&self, node: NodeId) -> Unateness {
        match self.netlist.node(node).kind() {
            NodeKind::Gate(cell) => unateness(self.netlist.library().cell(cell).kind().function()),
            _ => Unateness::Positive,
        }
    }

    /// Runs the full forward (earliest/latest arrival) and backward
    /// (required time) propagation, seeding every launch point (primary
    /// input) at `launch_time_ps` on both edges — the instant the
    /// simulator applies its capture stimulus.
    pub fn analyze(&self, launch_time_ps: f64) -> StaAnalysis {
        let n = self.netlist.num_nodes();
        let mut latest = vec![
            Arrival {
                rise: f64::NEG_INFINITY,
                fall: f64::NEG_INFINITY,
            };
            n
        ];
        let mut earliest = vec![
            Arrival {
                rise: f64::INFINITY,
                fall: f64::INFINITY,
            };
            n
        ];
        let mut pred: Vec<[Option<(NodeId, usize)>; 2]> = vec![[None, None]; n];
        for id in self.levels.topological_order() {
            let node = self.netlist.node(id);
            if matches!(node.kind(), NodeKind::Input) {
                latest[id.index()] = Arrival {
                    rise: launch_time_ps,
                    fall: launch_time_ps,
                };
                earliest[id.index()] = latest[id.index()];
                continue;
            }
            let unate = self.node_unateness(id);
            let pins = &self.delays[id.index()];
            for out_pol in [0usize, 1] {
                let mut worst = f64::NEG_INFINITY;
                let mut best = f64::INFINITY;
                let mut arg: Option<(NodeId, usize)> = None;
                for (pin, &fanin) in node.fanin().iter().enumerate() {
                    let d = if out_pol == 0 {
                        pins[pin].rise
                    } else {
                        pins[pin].fall
                    };
                    for in_pol in compatible_edges(unate, out_pol) {
                        let up_latest = latest[fanin.index()].get(in_pol);
                        if up_latest > f64::NEG_INFINITY {
                            let cand = up_latest + d;
                            if cand > worst || arg.is_none() {
                                worst = cand;
                                arg = Some((fanin, in_pol));
                            }
                        }
                        let up_earliest = earliest[fanin.index()].get(in_pol);
                        if up_earliest < f64::INFINITY {
                            best = best.min(up_earliest + d);
                        }
                    }
                }
                if arg.is_some() {
                    if out_pol == 0 {
                        latest[id.index()].rise = worst;
                        earliest[id.index()].rise = best;
                    } else {
                        latest[id.index()].fall = worst;
                        earliest[id.index()].fall = best;
                    }
                    pred[id.index()][out_pol] = arg;
                }
            }
        }

        // Backward required-time pass against the worst endpoint arrival:
        // reachable endpoints are required at T_req on both edges, and a
        // node's required time per input edge is the tightest consumer
        // requirement minus the consumed arc's delay.
        let t_req = self
            .netlist
            .outputs()
            .iter()
            .map(|po| latest[po.index()].max())
            .fold(f64::NEG_INFINITY, f64::max);
        let mut required = vec![
            Arrival {
                rise: f64::INFINITY,
                fall: f64::INFINITY,
            };
            n
        ];
        if t_req > f64::NEG_INFINITY {
            for &po in self.netlist.outputs() {
                let reach = latest[po.index()];
                required[po.index()] = Arrival {
                    rise: if reach.rise > f64::NEG_INFINITY {
                        t_req
                    } else {
                        f64::INFINITY
                    },
                    fall: if reach.fall > f64::NEG_INFINITY {
                        t_req
                    } else {
                        f64::INFINITY
                    },
                };
            }
            let topo: Vec<NodeId> = self.levels.topological_order().collect();
            for &id in topo.iter().rev() {
                let node = self.netlist.node(id);
                if matches!(node.kind(), NodeKind::Output) {
                    continue;
                }
                for &consumer in node.fanout() {
                    let c_node = self.netlist.node(consumer);
                    let c_unate = self.node_unateness(consumer);
                    let c_pins = &self.delays[consumer.index()];
                    for (pin, &driver) in c_node.fanin().iter().enumerate() {
                        if driver != id {
                            continue;
                        }
                        for out_pol in [0usize, 1] {
                            // A PO's required time on an unreachable edge
                            // is INFINITY and drops out of the `min`.
                            let r = required[consumer.index()].get(out_pol);
                            if r == f64::INFINITY {
                                continue;
                            }
                            let d = if out_pol == 0 {
                                c_pins[pin].rise
                            } else {
                                c_pins[pin].fall
                            };
                            for in_pol in compatible_edges(c_unate, out_pol) {
                                let slot = &mut required[id.index()];
                                if in_pol == 0 {
                                    slot.rise = slot.rise.min(r - d);
                                } else {
                                    slot.fall = slot.fall.min(r - d);
                                }
                            }
                        }
                    }
                }
            }
        }

        StaAnalysis {
            launch_time_ps,
            latest,
            earliest,
            required,
            pred,
        }
    }

    /// Runs [`TimingGraph::analyze`] and distills the [`StaReport`]:
    /// worst/best endpoint arrivals, the critical path with per-step
    /// slack, and the structural warnings (unreachable endpoints,
    /// unconstrained inputs).
    pub fn report(&self, launch_time_ps: f64) -> StaReport {
        let analysis = self.analyze(launch_time_ps);
        let endpoints: Vec<EndpointTiming> = self
            .netlist
            .outputs()
            .iter()
            .map(|&po| EndpointTiming {
                node: po,
                latest: analysis.latest[po.index()],
                earliest: analysis.earliest[po.index()],
            })
            .collect();
        let latest_arrival_ps = endpoints
            .iter()
            .map(|e| e.latest.max())
            .fold(f64::NEG_INFINITY, f64::max);
        let earliest_arrival_ps = endpoints
            .iter()
            .map(|e| e.earliest.min())
            .fold(f64::INFINITY, f64::min);
        let unreachable_endpoints = endpoints
            .iter()
            .filter(|e| e.latest.max() == f64::NEG_INFINITY)
            .map(|e| e.node)
            .collect();
        let unconstrained_inputs = self
            .netlist
            .inputs()
            .iter()
            .copied()
            .filter(|&pi| self.netlist.node(pi).fanout().is_empty())
            .collect();

        // Critical path: walk the chosen-predecessor chain back from the
        // worst endpoint edge.
        let mut critical_path = Vec::new();
        let worst = endpoints
            .iter()
            .filter(|e| e.latest.max() > f64::NEG_INFINITY)
            .max_by(|a, b| a.latest.max().total_cmp(&b.latest.max()));
        if let Some(end) = worst {
            let mut cur = end.node;
            let mut pol = if end.latest.rise >= end.latest.fall {
                0
            } else {
                1
            };
            loop {
                critical_path.push(PathStep {
                    node: cur,
                    rising: pol == 0,
                    arrival_ps: analysis.latest[cur.index()].get(pol),
                    slack_ps: analysis.required[cur.index()].get(pol)
                        - analysis.latest[cur.index()].get(pol),
                });
                match analysis.pred[cur.index()][pol] {
                    Some((p, p_pol)) => {
                        cur = p;
                        pol = p_pol;
                    }
                    None => break,
                }
            }
            critical_path.reverse();
        }

        StaReport {
            launch_time_ps,
            latest_arrival_ps,
            earliest_arrival_ps,
            critical_path,
            endpoints,
            unreachable_endpoints,
            unconstrained_inputs,
        }
    }

    /// Folds the arrival of one concrete transition chain along `path`
    /// (consecutive driver→consumer nodes, launch point first) given the
    /// source edge, deriving each downstream edge from cell unateness.
    /// Returns `(arrival_ps, final_edge_rising)`; `None` when the path is
    /// not a fanin chain or crosses a binate cell (whose edge a static
    /// fold cannot decide — use
    /// [`TimingGraph::path_arrival_with_edges`] with
    /// simulation-derived edges instead).
    pub fn path_arrival(
        &self,
        path: &[NodeId],
        source_rising: bool,
        launch_time_ps: f64,
    ) -> Option<(f64, bool)> {
        let mut rising = source_rising;
        let mut edges = Vec::with_capacity(path.len());
        edges.push(rising);
        for &b in path.iter().skip(1) {
            rising = match self.node_unateness(b) {
                Unateness::Positive => rising,
                Unateness::Negative => !rising,
                Unateness::Binate => return None,
            };
            edges.push(rising);
        }
        self.path_arrival_with_edges(path, &edges, launch_time_ps)
            .map(|t| (t, rising))
    }

    /// Folds the arrival of one concrete transition chain along `path`
    /// with an explicit per-node edge sequence (`true` = rising at that
    /// node's output) — the caller decides edges, e.g. by evaluating the
    /// launch and capture patterns, so binate cells pose no problem.
    /// Duplicate-fanin edges take the slower matching pin. Returns `None`
    /// when shapes disagree or `path` is not a fanin chain.
    pub fn path_arrival_with_edges(
        &self,
        path: &[NodeId],
        rising: &[bool],
        launch_time_ps: f64,
    ) -> Option<f64> {
        if path.is_empty() || path.len() != rising.len() {
            return None;
        }
        let mut t = launch_time_ps;
        for (i, &b) in path.iter().enumerate().skip(1) {
            let a = path[i - 1];
            let pins = &self.delays[b.index()];
            let mut d: Option<f64> = None;
            for (pin, &driver) in self.netlist.node(b).fanin().iter().enumerate() {
                if driver == a {
                    let arc = if rising[i] {
                        pins[pin].rise
                    } else {
                        pins[pin].fall
                    };
                    d = Some(d.map_or(arc, |prev: f64| prev.max(arc)));
                }
            }
            t += d?;
        }
        Some(t)
    }
}

/// The input edges able to cause output edge `out_pol` (0 = rise,
/// 1 = fall) through a cell of the given unateness.
fn compatible_edges(unate: Unateness, out_pol: usize) -> std::ops::Range<usize> {
    match unate {
        Unateness::Positive => out_pol..out_pol + 1,
        Unateness::Negative => (1 - out_pol)..(2 - out_pol),
        Unateness::Binate => 0..2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfs_netlist::{CellLibrary, NetlistBuilder};

    /// a → INV(g1) → AND(g2, with direct a) → y, with asymmetric
    /// rise/fall delays — checks edge flipping through the inverter.
    fn inv_and_graph() -> (Netlist, Levelization, Vec<Vec<PinDelays>>) {
        let lib = CellLibrary::nangate15_like();
        let mut b = NetlistBuilder::new("t", &lib);
        let a = b.add_input("a").unwrap();
        let g1 = b.add_gate("g1", "INV_X1", &[a]).unwrap();
        let g2 = b.add_gate("g2", "AND2_X1", &[g1, a]).unwrap();
        b.add_output("y", g2).unwrap();
        let n = b.finish().unwrap();
        let levels = Levelization::of(&n).unwrap();
        let mut delays = vec![Vec::new(); n.num_nodes()];
        let g1_id = n.find("g1").unwrap();
        let g2_id = n.find("g2").unwrap();
        let y_id = n.find("y").unwrap();
        delays[g1_id.index()] = vec![PinDelays {
            rise: 10.0,
            fall: 20.0,
        }];
        delays[g2_id.index()] = vec![
            PinDelays {
                rise: 3.0,
                fall: 5.0,
            },
            PinDelays {
                rise: 4.0,
                fall: 6.0,
            },
        ];
        delays[y_id.index()] = vec![PinDelays::default()];
        (n, levels, delays)
    }

    #[test]
    fn inverter_flips_edges_in_propagation() {
        let (n, levels, delays) = inv_and_graph();
        let g = TimingGraph::new(&n, &levels, delays).unwrap();
        let a = g.analyze(0.0);
        let g1 = n.find("g1").unwrap();
        let g2 = n.find("g2").unwrap();
        // INV output rise comes from input fall: 0 + rise-arc 10.
        assert_eq!(a.latest[g1.index()].rise, 10.0);
        assert_eq!(a.latest[g1.index()].fall, 20.0);
        // AND is positive unate: rise at g2 from rise at g1 (10 + 3) or
        // rise at a (0 + 4) — worst is 13.
        assert_eq!(a.latest[g2.index()].rise, 13.0);
        // Fall: from g1 fall (20 + 5) or a fall (0 + 6) — worst is 25.
        assert_eq!(a.latest[g2.index()].fall, 25.0);
        // Earliest takes the short branch through pin 1.
        assert_eq!(a.earliest[g2.index()].rise, 4.0);
        assert_eq!(a.earliest[g2.index()].fall, 6.0);
    }

    #[test]
    fn report_extracts_critical_path_with_zero_slack() {
        let (n, levels, delays) = inv_and_graph();
        let g = TimingGraph::new(&n, &levels, delays).unwrap();
        let r = g.report(0.0);
        assert_eq!(r.latest_arrival_ps, 25.0);
        assert_eq!(r.earliest_arrival_ps, 4.0);
        let names: Vec<&str> = r
            .critical_path
            .iter()
            .map(|s| n.node(s.node).name())
            .collect();
        assert_eq!(names, ["a", "g1", "g2", "y"]);
        let edges: Vec<bool> = r.critical_path.iter().map(|s| s.rising).collect();
        // Falling at the endpoint ← falling at g2 ← falling at g1 ←
        // rising at a (the inverter flips once).
        assert_eq!(edges, [true, false, false, false]);
        for step in &r.critical_path {
            assert!(
                step.slack_ps.abs() < 1e-12,
                "critical path has ~0 slack, got {}",
                step.slack_ps
            );
        }
        // Off-path edges have positive slack: g1's rising output feeds
        // g2's rise arc (3 ps), so required = 25 − 3 = 22 against an
        // arrival of 10 — slack 12. Its falling output is on the
        // critical path — slack 0.
        let a = g.analyze(0.0);
        let g1 = n.find("g1").unwrap();
        assert_eq!(a.slack_of(g1).fall, 0.0);
        assert_eq!(a.slack_of(g1).rise, 12.0);
    }

    #[test]
    fn launch_time_shifts_every_arrival() {
        let (n, levels, delays) = inv_and_graph();
        let g = TimingGraph::new(&n, &levels, delays).unwrap();
        let r0 = g.report(0.0);
        let r7 = g.report(7.5);
        assert_eq!(r7.latest_arrival_ps, r0.latest_arrival_ps + 7.5);
        assert_eq!(r7.earliest_arrival_ps, r0.earliest_arrival_ps + 7.5);
    }

    #[test]
    fn binate_cells_admit_both_edges() {
        let lib = CellLibrary::nangate15_like();
        let mut b = NetlistBuilder::new("x", &lib);
        let a = b.add_input("a").unwrap();
        let c = b.add_input("c").unwrap();
        let inv = b.add_gate("inv", "INV_X1", &[a]).unwrap();
        let x = b.add_gate("x", "XOR2_X1", &[inv, c]).unwrap();
        b.add_output("y", x).unwrap();
        let n = b.finish().unwrap();
        let levels = Levelization::of(&n).unwrap();
        let mut delays = vec![Vec::new(); n.num_nodes()];
        delays[n.find("inv").unwrap().index()] = vec![PinDelays {
            rise: 2.0,
            fall: 30.0,
        }];
        delays[n.find("x").unwrap().index()] = vec![
            PinDelays {
                rise: 1.0,
                fall: 1.5,
            },
            PinDelays {
                rise: 0.5,
                fall: 0.5,
            },
        ];
        delays[n.find("y").unwrap().index()] = vec![PinDelays::default()];
        let g = TimingGraph::new(&n, &levels, delays).unwrap();
        let r = g.analyze(0.0);
        let xid = n.find("x").unwrap();
        // XOR rise may be caused by the inverter's *fall* (30 + 1) even
        // though a positive-unate cell would only admit its rise (2 + 1).
        assert_eq!(r.latest[xid.index()].rise, 31.0);
        assert_eq!(r.latest[xid.index()].fall, 31.5);
    }

    #[test]
    fn structural_warnings_surface() {
        let lib = CellLibrary::nangate15_like();
        let mut b = NetlistBuilder::new("w", &lib);
        let a = b.add_input("a").unwrap();
        let _floating = b.add_input("floating").unwrap();
        let g1 = b.add_gate("g1", "BUF_X1", &[a]).unwrap();
        b.add_output("y", g1).unwrap();
        let n = b.finish().unwrap();
        let levels = Levelization::of(&n).unwrap();
        let g = TimingGraph::from_annotation(&n, &levels, &avfs_delay::TimingAnnotation::zero(&n))
            .unwrap();
        let r = g.report(0.0);
        assert!(r.unreachable_endpoints.is_empty());
        assert_eq!(r.unconstrained_inputs.len(), 1);
        assert_eq!(n.node(r.unconstrained_inputs[0]).name(), "floating");
    }

    #[test]
    fn path_arrival_folds_match_analysis() {
        let (n, levels, delays) = inv_and_graph();
        let g = TimingGraph::new(&n, &levels, delays).unwrap();
        let r = g.report(0.0);
        let nodes = r.critical_nodes();
        let (t, rising) = g
            .path_arrival(&nodes, r.critical_path[0].rising, 0.0)
            .expect("pure unate path");
        assert_eq!(t, r.latest_arrival_ps);
        assert!(!rising);
        // Explicit-edge variant agrees.
        let edges: Vec<bool> = r.critical_path.iter().map(|s| s.rising).collect();
        assert_eq!(
            g.path_arrival_with_edges(&nodes, &edges, 0.0),
            Some(r.latest_arrival_ps)
        );
        // Binate cells refuse the static fold.
        let lib = CellLibrary::nangate15_like();
        let mut b = NetlistBuilder::new("x", &lib);
        let a = b.add_input("a").unwrap();
        let c = b.add_input("c").unwrap();
        let x = b.add_gate("x", "XOR2_X1", &[a, c]).unwrap();
        b.add_output("y", x).unwrap();
        let nx = b.finish().unwrap();
        let lx = Levelization::of(&nx).unwrap();
        let gx = TimingGraph::from_annotation(&nx, &lx, &avfs_delay::TimingAnnotation::zero(&nx))
            .unwrap();
        let path = [nx.find("a").unwrap(), nx.find("x").unwrap()];
        assert_eq!(gx.path_arrival(&path, true, 0.0), None);
        assert_eq!(
            gx.path_arrival_with_edges(&path, &[true, false], 0.0),
            Some(0.0)
        );
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let (n, levels, mut delays) = inv_and_graph();
        delays.pop();
        assert!(matches!(
            TimingGraph::new(&n, &levels, delays),
            Err(StaError::Shape { node: None, .. })
        ));
        let (n2, levels2, mut delays2) = inv_and_graph();
        delays2[n2.find("g2").unwrap().index()].pop();
        assert!(matches!(
            TimingGraph::new(&n2, &levels2, delays2),
            Err(StaError::Shape { node: Some(_), .. })
        ));
    }
}
