//! Pure finding generation for the STA ↔ simulator cross-check
//! (`AVC-T001..T004`).
//!
//! The STA latest arrival is a *sound upper bound*: it is the maximum
//! over all per-pin-transition chains of the same left-fold
//! `t_in + delay` the event kernel performs, over the same delay matrix.
//! A simulated transition later than the bound therefore proves a bug in
//! one of the two engines — `AVC-T001` is Deny, always. `AVC-T002`
//! (divergence beyond ε where agreement is expected, e.g. a sensitized
//! critical path) is equally Deny. The structural warnings `AVC-T003`
//! (endpoint no launch point reaches) and `AVC-T004` (launch point with
//! no outgoing timing arc) mark analysis blind spots, not engine bugs.

use crate::graph::StaReport;
use avfs_check::Finding;
use avfs_netlist::Netlist;

/// Default comparison tolerance, ps. The bound comparison needs no slack
/// at all when simulator and STA share one delay matrix (both sides run
/// the identical f64 fold, and `max` is exact); the epsilon only covers
/// independently re-derived delay matrices, and 1e-6 ps is far below any
/// physical delay while far above accumulated f64 noise on paths of
/// realistic depth.
pub const DEFAULT_EPSILON_PS: f64 = 1e-6;

/// `AVC-T001`: the simulator's latest transition arrival exceeds the STA
/// upper bound by more than `epsilon_ps`. `None` when the bound holds
/// (including when the slot saw no transition at all).
pub fn bound_finding(
    location: &str,
    sim_latest_ps: Option<f64>,
    sta_latest_ps: f64,
    epsilon_ps: f64,
) -> Option<Finding> {
    let sim = sim_latest_ps?;
    if sim <= sta_latest_ps + epsilon_ps {
        return None;
    }
    Some(Finding::new(
        "AVC-T001",
        location,
        format!(
            "simulated latest arrival {sim} ps exceeds the STA bound {sta_latest_ps} ps \
             by {} ps (ε = {epsilon_ps} ps)",
            sim - sta_latest_ps
        ),
    ))
}

/// `AVC-T002`: simulator and STA were expected to agree (a sensitized
/// critical path was driven) but diverge by more than `epsilon_ps`.
/// `None` when they agree.
pub fn agreement_finding(
    location: &str,
    sim_latest_ps: f64,
    sta_expected_ps: f64,
    epsilon_ps: f64,
) -> Option<Finding> {
    let gap = (sim_latest_ps - sta_expected_ps).abs();
    if gap <= epsilon_ps {
        return None;
    }
    Some(Finding::new(
        "AVC-T002",
        location,
        format!(
            "simulated arrival {sim_latest_ps} ps diverges from the STA critical-path \
             arrival {sta_expected_ps} ps by {gap} ps (ε = {epsilon_ps} ps)"
        ),
    ))
}

/// `AVC-T003`/`AVC-T004`: structural analysis warnings from one report —
/// unreachable endpoints and unconstrained launch points, located by
/// node name. The caller caps the result
/// (`avfs_check::cap_findings`) before reporting.
pub fn structure_findings(netlist: &Netlist, report: &StaReport) -> Vec<Finding> {
    let mut findings = Vec::new();
    for &po in &report.unreachable_endpoints {
        findings.push(Finding::new(
            "AVC-T003",
            netlist.node(po).name(),
            "endpoint is reached by no launch point: its arrival is undefined and the \
             simulator can never toggle it",
        ));
    }
    for &pi in &report.unconstrained_inputs {
        findings.push(Finding::new(
            "AVC-T004",
            netlist.node(pi).name(),
            "launch point has no outgoing timing arc: its stimulus cannot affect any \
             endpoint",
        ));
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TimingGraph;
    use avfs_check::Severity;
    use avfs_netlist::{CellLibrary, Levelization, NetlistBuilder};

    #[test]
    fn bound_violations_are_deny() {
        assert!(bound_finding("s", None, 10.0, 1e-6).is_none());
        assert!(bound_finding("s", Some(10.0), 10.0, 1e-6).is_none());
        // Within epsilon: tolerated.
        assert!(bound_finding("s", Some(10.0 + 1e-9), 10.0, 1e-6).is_none());
        let f = bound_finding("c17 @ 0.55 V slot 3", Some(12.0), 10.0, 1e-6).unwrap();
        assert_eq!(f.rule, "AVC-T001");
        assert_eq!(f.severity, Severity::Deny);
        assert!(f.message.contains("exceeds the STA bound"), "{}", f.message);
    }

    #[test]
    fn divergence_is_deny_and_symmetric() {
        assert!(agreement_finding("s", 10.0, 10.0, 1e-6).is_none());
        for (sim, sta) in [(12.0, 10.0), (10.0, 12.0)] {
            let f = agreement_finding("s", sim, sta, 1e-6).unwrap();
            assert_eq!(f.rule, "AVC-T002");
            assert_eq!(f.severity, Severity::Deny);
        }
    }

    #[test]
    fn structure_findings_name_nodes() {
        let lib = CellLibrary::nangate15_like();
        let mut b = NetlistBuilder::new("w", &lib);
        let a = b.add_input("a").unwrap();
        let _floating = b.add_input("floating").unwrap();
        let g1 = b.add_gate("g1", "BUF_X1", &[a]).unwrap();
        b.add_output("y", g1).unwrap();
        let n = b.finish().unwrap();
        let levels = Levelization::of(&n).unwrap();
        let ann = avfs_delay::TimingAnnotation::zero(&n);
        let g = TimingGraph::from_annotation(&n, &levels, &ann).unwrap();
        let findings = structure_findings(&n, &g.report(0.0));
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "AVC-T004");
        assert_eq!(findings[0].severity, Severity::Warn);
        assert_eq!(findings[0].location, "floating");
    }
}
