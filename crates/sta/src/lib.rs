//! Static timing analysis for the AVFS simulation workspace — the
//! independent oracle that cross-validates the time simulator.
//!
//! The paper's headline artifact (Table II) is latest-transition arrival
//! times under scaled supplies, and the repo computes them with two
//! engine *siblings* (the waveform kernel and its event-driven twin)
//! that share delay models and lowering — a shared bug is invisible to
//! their mutual comparison. This crate is the second, genuinely
//! independent leg: a classic per-pin-transition STA over the same
//! netlist and the same delay matrix, implemented with none of the
//! engine's machinery (no arenas, no slots, no waveforms — a plain
//! topological dynamic program).
//!
//! * [`graph`] — the [`TimingGraph`]: per-node/per-pin rise–fall arc
//!   delays with cell-unateness edge mapping, topological
//!   earliest/latest arrival propagation, a backward required-time pass,
//!   critical-path extraction with per-step slack, and concrete
//!   path-arrival folds. Delay matrices come from an explicit
//!   voltage-scaled matrix ([`TimingGraph::new`]), a nominal
//!   [`TimingAnnotation`](avfs_delay::TimingAnnotation)
//!   ([`TimingGraph::from_annotation`]), or SDF text
//!   ([`TimingGraph::from_sdf`], via `crates/sdf`).
//! * [`crosscheck`] — pure generators for the `AVC-T` finding family:
//!   simulated arrival beyond the STA bound (`AVC-T001`, Deny),
//!   divergence on a sensitized critical path (`AVC-T002`, Deny),
//!   unreachable endpoints / unconstrained launch points
//!   (`AVC-T003`/`AVC-T004`, Warn).
//!
//! The voltage-scaled entry point `sta::analyze(&CompiledNetlist,
//! &OperatingPoint)` and the per-run cross-check driver live in
//! `avfs-core::sta`, which owns the delay scaling; this crate stays a
//! pure graph algorithm so the oracle shares no evaluation code with the
//! engine it checks.
//!
//! # Why the bound is sound (the ε argument)
//!
//! Every simulated transition time is a left-fold
//! `((t_launch + d₁) + d₂) + …` along its causal chain, with each `dᵢ`
//! selected by the *output*
//! edge of the driven cell. The STA latest arrival at a node is the
//! maximum of exactly those folds over all structural chains and edge
//! assignments admitted by unateness — computed with the same f64
//! additions in the same order, and `max` is exact in IEEE-754. Given
//! one shared delay matrix, `sim ≤ sta` therefore holds *bitwise*; the
//! default ε ([`crosscheck::DEFAULT_EPSILON_PS`]) only matters when the
//! two sides re-derive delays independently.
//!
//! # Example
//!
//! ```
//! use avfs_netlist::{CellLibrary, Levelization, NetlistBuilder};
//! use avfs_delay::TimingAnnotation;
//! use avfs_waveform::PinDelays;
//! use avfs_sta::TimingGraph;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = CellLibrary::nangate15_like();
//! let mut b = NetlistBuilder::new("demo", &lib);
//! let a = b.add_input("a")?;
//! let g = b.add_gate("g", "INV_X1", &[a])?;
//! b.add_output("y", g)?;
//! let netlist = b.finish()?;
//! let levels = Levelization::of(&netlist)?;
//!
//! let mut ann = TimingAnnotation::zero(&netlist);
//! ann.node_delays_mut(netlist.find("g").unwrap())[0] =
//!     PinDelays { rise: 11.0, fall: 9.0 };
//!
//! let graph = TimingGraph::from_annotation(&netlist, &levels, &ann)?;
//! let report = graph.report(0.0);
//! // The inverter's worst edge is the rising output (11 ps).
//! assert_eq!(report.latest_arrival_ps, 11.0);
//! assert_eq!(report.critical_path.len(), 3); // a → g → y
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crosscheck;
pub mod graph;

pub use graph::{
    unateness, Arrival, EndpointTiming, PathStep, StaAnalysis, StaError, StaReport, TimingGraph,
    Unateness,
};
