//! Test-pattern substrate: transition-delay pattern pairs and
//! timing-aware patterns for the longest paths.
//!
//! The paper's experiments drive each design with "transition delay test
//! patterns … generated using a commercial ATPG-tool. These were topped
//! off with additional timing-aware patterns that target the 200 longest
//! paths in each circuit" (Sec. V). A commercial ATPG is out of scope, so
//! this crate supplies the same *inputs to the simulator*:
//!
//! * [`pattern`] — launch/capture pattern pairs, pseudo-random generation
//!   (seeded `SmallRng` and a classic LFSR PRPG),
//! * [`paths`] — exact K-longest-path enumeration over the annotated (or
//!   unit-delay) netlist,
//! * [`timing_aware`] — best-effort sensitization of those paths: side
//!   inputs are justified toward non-controlling values with bounded
//!   random retry, verified by zero-delay simulation,
//! * [`fault`] — transition-fault bookkeeping with excitation-coverage
//!   reporting.
//!
//! The fault-grade quality of a commercial tool is irrelevant to the
//! paper's timing/throughput experiments; what matters is pattern *pairs*
//! with realistic switching activity and deliberate pressure on long
//! paths, which this crate provides deterministically (every generator is
//! seeded).

#![forbid(unsafe_code)]

pub mod fault;
pub mod paths;
pub mod pattern;
pub mod timing_aware;

pub use fault::{FaultList, TransitionFault};
pub use paths::{k_longest_paths, Path};
pub use pattern::{Pattern, PatternPair, PatternSet};
pub use timing_aware::generate_timing_aware;

use std::error::Error;
use std::fmt;

/// Errors produced by pattern generation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AtpgError {
    /// A pattern's width disagrees with the netlist's input count.
    WidthMismatch {
        /// Inputs the netlist has.
        expected: usize,
        /// Bits the pattern has.
        got: usize,
    },
    /// Path enumeration was asked for zero paths.
    EmptyRequest,
}

impl fmt::Display for AtpgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtpgError::WidthMismatch { expected, got } => {
                write!(
                    f,
                    "pattern width {got} does not match {expected} primary inputs"
                )
            }
            AtpgError::EmptyRequest => write!(f, "requested zero paths/patterns"),
        }
    }
}

impl Error for AtpgError {}

/// Zero-delay logic simulation of one input vector; returns the value of
/// every node. Shared by the justification heuristics and the fault
/// analysis (and cross-checked against the timing simulator's steady
/// state in the integration tests).
pub fn zero_delay_values(
    netlist: &avfs_netlist::Netlist,
    levels: &avfs_netlist::Levelization,
    vector: &pattern::Pattern,
) -> Vec<bool> {
    let mut values = vec![false; netlist.num_nodes()];
    for (k, &pi) in netlist.inputs().iter().enumerate() {
        values[pi.index()] = vector.bit(k);
    }
    let mut fanin_values: Vec<bool> = Vec::new();
    for id in levels.topological_order() {
        let node = netlist.node(id);
        match node.kind() {
            avfs_netlist::NodeKind::Input => {}
            avfs_netlist::NodeKind::Output => {
                values[id.index()] = values[node.fanin()[0].index()];
            }
            avfs_netlist::NodeKind::Gate(_) => {
                fanin_values.clear();
                fanin_values.extend(node.fanin().iter().map(|f| values[f.index()]));
                let cell = netlist.cell_of(id).expect("gate has a cell");
                values[id.index()] = cell.eval(&fanin_values);
            }
        }
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfs_netlist::bench::{parse_bench, BenchOptions, C17_BENCH};
    use avfs_netlist::{CellLibrary, Levelization};

    #[test]
    fn zero_delay_c17_known_vector() {
        let lib = CellLibrary::nangate15_like();
        let n = parse_bench("c17", C17_BENCH, &lib, &BenchOptions::default()).unwrap();
        let levels = Levelization::of(&n).expect("acyclic");
        // All inputs 0: NAND gates with 0 inputs produce 1 → outputs:
        // 10=1, 11=1, 16=NAND(0,1)=1, 19=NAND(1,0)=1, 22=NAND(1,1)=0, 23=0.
        let v = zero_delay_values(&n, &levels, &Pattern::zeros(5));
        assert!(v[n.find("10").unwrap().index()]);
        assert!(v[n.find("11").unwrap().index()]);
        assert!(v[n.find("16").unwrap().index()]);
        assert!(v[n.find("19").unwrap().index()]);
        assert!(!v[n.find("22").unwrap().index()]);
        assert!(!v[n.find("23").unwrap().index()]);
        // PO mirrors its source.
        assert!(!v[n.find("22_po").unwrap().index()]);
    }
}
