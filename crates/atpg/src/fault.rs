//! Transition-fault bookkeeping.
//!
//! A transition (gate-delay) fault assumes one node is slow-to-rise or
//! slow-to-fall. A pattern pair *excites* the fault if the fault-free
//! circuit launches the corresponding transition at the fault site; the
//! excitation coverage of a pattern set is the standard first-order
//! quality metric used to size transition test sets (full detection
//! analysis additionally requires fault-effect propagation, which the
//! small-delay-fault literature the paper cites \[28\] layers on top of
//! exactly this machinery).

use crate::pattern::PatternSet;
use crate::zero_delay_values;
use avfs_netlist::{Levelization, Netlist, NodeId, NodeKind};

/// The two transition-fault polarities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransitionFault {
    /// The node is slow to rise (excited by a 0→1 transition).
    SlowToRise,
    /// The node is slow to fall (excited by a 1→0 transition).
    SlowToFall,
}

/// A full transition-fault list with excitation marks.
#[derive(Debug, Clone)]
pub struct FaultList {
    /// `(node, fault)` in deterministic order.
    faults: Vec<(NodeId, TransitionFault)>,
    excited: Vec<bool>,
}

impl FaultList {
    /// Builds the collapsed fault list of a netlist: two faults per gate
    /// and primary input (outputs are observation points and carry no
    /// faults of their own).
    pub fn full(netlist: &Netlist) -> FaultList {
        let mut faults = Vec::new();
        for (id, node) in netlist.iter() {
            if !matches!(node.kind(), NodeKind::Output) {
                faults.push((id, TransitionFault::SlowToRise));
                faults.push((id, TransitionFault::SlowToFall));
            }
        }
        let n = faults.len();
        FaultList {
            faults,
            excited: vec![false; n],
        }
    }

    /// Number of faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// `true` when the list is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Marks the faults excited by each pair of `patterns` and returns the
    /// number of *newly* excited faults.
    pub fn mark_excited(
        &mut self,
        netlist: &Netlist,
        levels: &Levelization,
        patterns: &PatternSet,
    ) -> usize {
        let mut newly = 0;
        for pair in patterns {
            let v1 = zero_delay_values(netlist, levels, &pair.launch);
            let v2 = zero_delay_values(netlist, levels, &pair.capture);
            for (k, &(node, fault)) in self.faults.iter().enumerate() {
                if self.excited[k] {
                    continue;
                }
                let (a, b) = (v1[node.index()], v2[node.index()]);
                let hit = match fault {
                    TransitionFault::SlowToRise => !a && b,
                    TransitionFault::SlowToFall => a && !b,
                };
                if hit {
                    self.excited[k] = true;
                    newly += 1;
                }
            }
        }
        newly
    }

    /// Number of excited faults so far.
    pub fn excited_count(&self) -> usize {
        self.excited.iter().filter(|&&e| e).count()
    }

    /// Excitation coverage in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.faults.is_empty() {
            return 0.0;
        }
        self.excited_count() as f64 / self.faults.len() as f64
    }

    /// Iterates the unexcited faults (for top-off generation).
    pub fn unexcited(&self) -> impl Iterator<Item = (NodeId, TransitionFault)> + '_ {
        self.faults
            .iter()
            .zip(&self.excited)
            .filter(|(_, &e)| !e)
            .map(|(&f, _)| f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{Pattern, PatternPair};
    use avfs_netlist::bench::{parse_bench, BenchOptions, C17_BENCH};
    use avfs_netlist::CellLibrary;

    fn c17() -> (Netlist, Levelization) {
        let lib = CellLibrary::nangate15_like();
        let n = parse_bench("c17", C17_BENCH, &lib, &BenchOptions::default()).unwrap();
        let l = Levelization::of(&n).expect("acyclic");
        (n, l)
    }

    #[test]
    fn fault_list_size() {
        let (n, _) = c17();
        let list = FaultList::full(&n);
        // 5 PIs + 6 gates = 11 sites × 2 polarities.
        assert_eq!(list.len(), 22);
        assert!(!list.is_empty());
        assert_eq!(list.excited_count(), 0);
        assert_eq!(list.coverage(), 0.0);
        assert_eq!(list.unexcited().count(), 22);
    }

    #[test]
    fn identical_vectors_excite_nothing() {
        let (n, l) = c17();
        let mut list = FaultList::full(&n);
        let p = Pattern::zeros(5);
        let set: PatternSet = std::iter::once(PatternPair::new(p.clone(), p).unwrap()).collect();
        assert_eq!(list.mark_excited(&n, &l, &set), 0);
        assert_eq!(list.coverage(), 0.0);
    }

    #[test]
    fn complementary_vectors_excite_all_pi_faults() {
        let (n, l) = c17();
        let mut list = FaultList::full(&n);
        let zeros = Pattern::zeros(5);
        let ones = Pattern::from_bits(std::iter::repeat_n(true, 5));
        let set: PatternSet = [
            PatternPair::new(zeros.clone(), ones.clone()).unwrap(),
            PatternPair::new(ones, zeros).unwrap(),
        ]
        .into_iter()
        .collect();
        list.mark_excited(&n, &l, &set);
        // Every PI sees both a rising and a falling launch.
        let pi_faults_excited = list
            .faults
            .iter()
            .zip(&list.excited)
            .filter(|((id, _), &e)| n.inputs().contains(id) && e)
            .count();
        assert_eq!(pi_faults_excited, 10);
    }

    #[test]
    fn random_patterns_reach_high_excitation() {
        let (n, l) = c17();
        let mut list = FaultList::full(&n);
        let set = PatternSet::random(5, 64, 3);
        let newly = list.mark_excited(&n, &l, &set);
        assert_eq!(newly, list.excited_count());
        assert!(
            list.coverage() > 0.9,
            "64 random pairs should excite most of c17: {}",
            list.coverage()
        );
        // Marking again with the same set adds nothing.
        assert_eq!(list.mark_excited(&n, &l, &set), 0);
    }
}
