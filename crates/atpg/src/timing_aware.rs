//! Timing-aware pattern generation for the longest paths.
//!
//! For each targeted path, generate a launch/capture pair that (a) toggles
//! the path's primary input and (b) tries to hold every side input of
//! every path gate at a non-controlling value in both vectors, so that the
//! launched transition propagates along the whole path. Side-input
//! justification back to primary inputs is NP-hard in general; this
//! generator uses bounded random retry with zero-delay verification —
//! the standard "best-effort sensitization with random fill" compromise
//! (the paper notes many of its reported longest paths were *false paths*
//! that even the commercial timing-aware ATPG could not sensitize).

use crate::paths::Path;
use crate::pattern::{Pattern, PatternPair, PatternSet};
use crate::zero_delay_values;
use avfs_netlist::{Levelization, Netlist, NodeKind};
use avfs_prng::{SeedableRng, SmallRng};

/// Outcome of targeting one path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathPattern {
    /// The generated pair (always produced; possibly only partially
    /// sensitizing).
    pub pair: PatternPair,
    /// Number of path gates whose output toggles under zero-delay
    /// simulation of the pair.
    pub toggled_gates: usize,
    /// Number of gates on the path (excluding PI/PO).
    pub path_gates: usize,
    /// Whether the transition propagated through the full path (all gates
    /// toggled) — the path is (robustly or not) sensitized.
    pub sensitized: bool,
}

/// Generates timing-aware patterns for `paths`, appending one pair per
/// path. `retries` bounds the random-fill attempts per path (16 is a
/// reasonable default).
///
/// Returns the per-path outcomes; collect `.pair` into a
/// [`PatternSet`] via [`collect_pairs`].
pub fn generate_timing_aware(
    netlist: &Netlist,
    levels: &Levelization,
    paths: &[Path],
    retries: usize,
    seed: u64,
) -> Vec<PathPattern> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let width = netlist.inputs().len();
    // PI node index → bit position.
    let pi_bit: std::collections::HashMap<usize, usize> = netlist
        .inputs()
        .iter()
        .enumerate()
        .map(|(bit, id)| (id.index(), bit))
        .collect();

    paths
        .iter()
        .map(|path| {
            let path_gates = path
                .nodes
                .iter()
                .filter(|&&id| matches!(netlist.node(id).kind(), NodeKind::Gate(_)))
                .count();
            let source_bit = pi_bit[&path.source().index()];

            let mut best: Option<PathPattern> = None;
            for attempt in 0..retries.max(1) {
                let mut launch = Pattern::random(width, &mut rng);
                let mut capture = launch.clone();
                // Launch a transition at the path's source; alternate the
                // direction across attempts.
                let rising = attempt % 2 == 0;
                launch.set_bit(source_bit, !rising);
                capture.set_bit(source_bit, rising);

                let v1 = zero_delay_values(netlist, levels, &launch);
                let v2 = zero_delay_values(netlist, levels, &capture);
                let toggled = path
                    .nodes
                    .iter()
                    .filter(|&&id| {
                        matches!(netlist.node(id).kind(), NodeKind::Gate(_))
                            && v1[id.index()] != v2[id.index()]
                    })
                    .count();
                let candidate = PathPattern {
                    pair: PatternPair::new(launch, capture).expect("widths equal by construction"),
                    toggled_gates: toggled,
                    path_gates,
                    sensitized: toggled == path_gates,
                };
                let better = match &best {
                    None => true,
                    Some(b) => candidate.toggled_gates > b.toggled_gates,
                };
                if better {
                    let done = candidate.sensitized;
                    best = Some(candidate);
                    if done {
                        break;
                    }
                }
            }
            best.expect("at least one attempt")
        })
        .collect()
}

/// Collects the generated pairs into a [`PatternSet`].
pub fn collect_pairs(outcomes: &[PathPattern]) -> PatternSet {
    outcomes.iter().map(|o| o.pair.clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::k_longest_paths;
    use avfs_netlist::bench::{parse_bench, BenchOptions, C17_BENCH};
    use avfs_netlist::{CellLibrary, NetlistBuilder};

    #[test]
    fn buffer_chain_always_sensitizes() {
        // A pure buffer chain has no side inputs: any transition propagates.
        let lib = CellLibrary::nangate15_like();
        let mut b = NetlistBuilder::new("chain", &lib);
        let a = b.add_input("a").unwrap();
        let g1 = b.add_gate("g1", "BUF_X1", &[a]).unwrap();
        let g2 = b.add_gate("g2", "INV_X1", &[g1]).unwrap();
        let g3 = b.add_gate("g3", "BUF_X1", &[g2]).unwrap();
        b.add_output("y", g3).unwrap();
        let n = b.finish().unwrap();
        let l = Levelization::of(&n).expect("acyclic");
        let paths = k_longest_paths(&n, &l, None, 1);
        let out = generate_timing_aware(&n, &l, &paths, 4, 1);
        assert_eq!(out.len(), 1);
        assert!(out[0].sensitized);
        assert_eq!(out[0].path_gates, 3);
        assert_eq!(out[0].toggled_gates, 3);
        assert_eq!(out[0].pair.launched_transitions(), 1);
    }

    #[test]
    fn c17_paths_mostly_sensitizable() {
        let lib = CellLibrary::nangate15_like();
        let n = parse_bench("c17", C17_BENCH, &lib, &BenchOptions::default()).unwrap();
        let l = Levelization::of(&n).expect("acyclic");
        let paths = k_longest_paths(&n, &l, None, 8);
        let out = generate_timing_aware(&n, &l, &paths, 32, 7);
        assert_eq!(out.len(), paths.len());
        let sensitized = out.iter().filter(|o| o.sensitized).count();
        // c17 is tiny and highly testable: the bounded search should
        // sensitize most of its longest paths.
        assert!(
            sensitized * 2 >= out.len(),
            "only {sensitized}/{} sensitized",
            out.len()
        );
        // Every outcome toggles at least the source-adjacent structure.
        for o in &out {
            assert!(o.toggled_gates <= o.path_gates);
        }
    }

    #[test]
    fn determinism_per_seed() {
        let lib = CellLibrary::nangate15_like();
        let n = parse_bench("c17", C17_BENCH, &lib, &BenchOptions::default()).unwrap();
        let l = Levelization::of(&n).expect("acyclic");
        let paths = k_longest_paths(&n, &l, None, 4);
        let a = generate_timing_aware(&n, &l, &paths, 8, 99);
        let b = generate_timing_aware(&n, &l, &paths, 8, 99);
        assert_eq!(a, b);
        let pairs = collect_pairs(&a);
        assert_eq!(pairs.len(), 4);
    }
}
