//! Patterns, pattern pairs and pseudo-random generators.

use crate::AtpgError;
use avfs_prng::{Rng, SeedableRng, SmallRng};
use std::fmt;

/// One input vector: a bit per primary input, packed into `u64` words.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Pattern {
    bits: Vec<u64>,
    width: usize,
}

impl Pattern {
    /// The all-zero vector of the given width.
    pub fn zeros(width: usize) -> Pattern {
        Pattern {
            bits: vec![0; width.div_ceil(64)],
            width,
        }
    }

    /// Builds a pattern from bools.
    pub fn from_bits(bits: impl IntoIterator<Item = bool>) -> Pattern {
        let mut p = Pattern::zeros(0);
        for (i, b) in bits.into_iter().enumerate() {
            if i % 64 == 0 {
                p.bits.push(0);
            }
            if b {
                *p.bits.last_mut().expect("just pushed") |= 1 << (i % 64);
            }
            p.width = i + 1;
        }
        p
    }

    /// A uniformly random vector.
    pub fn random(width: usize, rng: &mut impl Rng) -> Pattern {
        let mut p = Pattern::zeros(width);
        for w in &mut p.bits {
            *w = rng.gen();
        }
        p.mask_tail();
        p
    }

    fn mask_tail(&mut self) {
        let rem = self.width % 64;
        if rem != 0 {
            if let Some(last) = self.bits.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Number of bits (primary inputs).
    pub fn width(&self) -> usize {
        self.width
    }

    /// The bit at position `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.width()`.
    #[inline]
    pub fn bit(&self, k: usize) -> bool {
        assert!(k < self.width, "bit index out of range");
        (self.bits[k / 64] >> (k % 64)) & 1 == 1
    }

    /// Sets the bit at position `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.width()`.
    pub fn set_bit(&mut self, k: usize, value: bool) {
        assert!(k < self.width, "bit index out of range");
        if value {
            self.bits[k / 64] |= 1 << (k % 64);
        } else {
            self.bits[k / 64] &= !(1 << (k % 64));
        }
    }

    /// Iterates the bits in order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.width).map(|k| self.bit(k))
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Hamming distance to another pattern of the same width — the number
    /// of inputs that launch a transition between the two vectors of a
    /// pair.
    ///
    /// # Errors
    ///
    /// Returns [`AtpgError::WidthMismatch`] if widths differ.
    pub fn hamming(&self, other: &Pattern) -> Result<usize, AtpgError> {
        if self.width != other.width {
            return Err(AtpgError::WidthMismatch {
                expected: self.width,
                got: other.width,
            });
        }
        Ok(self
            .bits
            .iter()
            .zip(&other.bits)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum())
    }
}

impl fmt::Debug for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pattern[")?;
        for b in self.iter().take(64) {
            write!(f, "{}", u8::from(b))?;
        }
        if self.width > 64 {
            write!(f, "… ({} bits)", self.width)?;
        }
        write!(f, "]")
    }
}

/// A launch/capture pair: the transition-delay test stimulus. Input `k`
/// holds `launch[k]` initially and switches to `capture[k]` at the launch
/// time.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PatternPair {
    /// The first (initialization) vector.
    pub launch: Pattern,
    /// The second (transition-launching) vector.
    pub capture: Pattern,
}

impl PatternPair {
    /// Creates a pair after checking the widths agree.
    ///
    /// # Errors
    ///
    /// Returns [`AtpgError::WidthMismatch`] if widths differ.
    pub fn new(launch: Pattern, capture: Pattern) -> Result<PatternPair, AtpgError> {
        if launch.width() != capture.width() {
            return Err(AtpgError::WidthMismatch {
                expected: launch.width(),
                got: capture.width(),
            });
        }
        Ok(PatternPair { launch, capture })
    }

    /// Number of primary inputs covered.
    pub fn width(&self) -> usize {
        self.launch.width()
    }

    /// How many inputs toggle between the vectors.
    pub fn launched_transitions(&self) -> usize {
        self.launch
            .hamming(&self.capture)
            .expect("widths checked at construction")
    }
}

/// An ordered collection of pattern pairs for one design.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PatternSet {
    pairs: Vec<PatternPair>,
}

impl PatternSet {
    /// An empty set.
    pub fn new() -> PatternSet {
        PatternSet::default()
    }

    /// Generates `count` pseudo-random pairs for `width` inputs from a
    /// seed (deterministic).
    pub fn random(width: usize, count: usize, seed: u64) -> PatternSet {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pairs = (0..count)
            .map(|_| {
                let launch = Pattern::random(width, &mut rng);
                let capture = Pattern::random(width, &mut rng);
                PatternPair { launch, capture }
            })
            .collect();
        PatternSet { pairs }
    }

    /// Generates `count` pairs from a 64-bit LFSR PRPG (x⁶⁴+x⁶³+x⁶¹+x⁶⁰+1),
    /// the classic BIST-style stimulus source. Consecutive LFSR states form
    /// the launch/capture vectors, so each pair launches roughly half the
    /// inputs — high switching activity, as in at-speed scan testing.
    pub fn lfsr(width: usize, count: usize, seed: u64) -> PatternSet {
        let mut state = seed | 1; // LFSR must not start at zero
        let mut next_vector = || {
            let mut p = Pattern::zeros(width);
            for k in 0..width {
                let bit = state & 1 == 1;
                // Galois LFSR step, taps 64, 63, 61, 60.
                let feedback = (state >> 63) ^ (state >> 62) ^ (state >> 60) ^ (state >> 59);
                state = (state << 1) | (feedback & 1);
                p.set_bit(k, bit);
            }
            p
        };
        let pairs = (0..count)
            .map(|_| PatternPair {
                launch: next_vector(),
                capture: next_vector(),
            })
            .collect();
        PatternSet { pairs }
    }

    /// Appends a pair.
    pub fn push(&mut self, pair: PatternPair) {
        self.pairs.push(pair);
    }

    /// The pairs in order.
    pub fn pairs(&self) -> &[PatternPair] {
        &self.pairs
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `true` when the set holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterates the pairs.
    pub fn iter(&self) -> std::slice::Iter<'_, PatternPair> {
        self.pairs.iter()
    }
}

impl FromIterator<PatternPair> for PatternSet {
    fn from_iter<I: IntoIterator<Item = PatternPair>>(iter: I) -> Self {
        PatternSet {
            pairs: iter.into_iter().collect(),
        }
    }
}

impl Extend<PatternPair> for PatternSet {
    fn extend<I: IntoIterator<Item = PatternPair>>(&mut self, iter: I) {
        self.pairs.extend(iter);
    }
}

impl<'a> IntoIterator for &'a PatternSet {
    type Item = &'a PatternPair;
    type IntoIter = std::slice::Iter<'a, PatternPair>;

    fn into_iter(self) -> Self::IntoIter {
        self.pairs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pattern_bits_roundtrip() {
        let mut p = Pattern::zeros(70);
        assert_eq!(p.width(), 70);
        assert_eq!(p.count_ones(), 0);
        p.set_bit(0, true);
        p.set_bit(63, true);
        p.set_bit(69, true);
        assert!(p.bit(0) && p.bit(63) && p.bit(69));
        assert!(!p.bit(1) && !p.bit(64));
        assert_eq!(p.count_ones(), 3);
        p.set_bit(63, false);
        assert_eq!(p.count_ones(), 2);
    }

    #[test]
    fn from_bits_matches_iter() {
        let bits = [true, false, true, true, false];
        let p = Pattern::from_bits(bits.iter().copied());
        assert_eq!(p.width(), 5);
        let collected: Vec<bool> = p.iter().collect();
        assert_eq!(collected, bits);
    }

    #[test]
    fn hamming_distance() {
        let a = Pattern::from_bits([true, false, true].iter().copied());
        let b = Pattern::from_bits([false, false, true].iter().copied());
        assert_eq!(a.hamming(&b).unwrap(), 1);
        let c = Pattern::zeros(4);
        assert!(matches!(
            a.hamming(&c),
            Err(AtpgError::WidthMismatch {
                expected: 3,
                got: 4
            })
        ));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let s1 = PatternSet::random(40, 10, 42);
        let s2 = PatternSet::random(40, 10, 42);
        let s3 = PatternSet::random(40, 10, 43);
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
        assert_eq!(s1.len(), 10);
        assert!(s1.pairs().iter().all(|p| p.width() == 40));
    }

    #[test]
    fn lfsr_is_deterministic_and_active() {
        let s1 = PatternSet::lfsr(64, 16, 7);
        let s2 = PatternSet::lfsr(64, 16, 7);
        assert_eq!(s1, s2);
        // LFSR patterns should launch many transitions on average.
        let avg: f64 = s1
            .pairs()
            .iter()
            .map(|p| p.launched_transitions() as f64)
            .sum::<f64>()
            / s1.len() as f64;
        assert!(avg > 16.0, "average launched transitions {avg} too low");
    }

    #[test]
    fn pattern_pair_width_check() {
        let a = Pattern::zeros(4);
        let b = Pattern::zeros(5);
        assert!(PatternPair::new(a.clone(), a.clone()).is_ok());
        assert!(PatternPair::new(a, b).is_err());
    }

    #[test]
    fn set_collects_and_extends() {
        let mut set: PatternSet = (0..3)
            .map(|_| PatternPair {
                launch: Pattern::zeros(2),
                capture: Pattern::zeros(2),
            })
            .collect();
        set.extend(std::iter::once(PatternPair {
            launch: Pattern::zeros(2),
            capture: Pattern::zeros(2),
        }));
        assert_eq!(set.len(), 4);
        assert!(!set.is_empty());
        assert_eq!((&set).into_iter().count(), 4);
    }

    proptest! {
        #[test]
        fn count_ones_matches_iter(width in 1usize..200, seed in any::<u64>()) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let p = Pattern::random(width, &mut rng);
            let by_iter = p.iter().filter(|&b| b).count();
            prop_assert_eq!(p.count_ones(), by_iter);
        }

        #[test]
        fn hamming_symmetric(width in 1usize..128, s1 in any::<u64>(), s2 in any::<u64>()) {
            let mut r1 = SmallRng::seed_from_u64(s1);
            let mut r2 = SmallRng::seed_from_u64(s2);
            let a = Pattern::random(width, &mut r1);
            let b = Pattern::random(width, &mut r2);
            prop_assert_eq!(a.hamming(&b).unwrap(), b.hamming(&a).unwrap());
            prop_assert_eq!(a.hamming(&a).unwrap(), 0);
        }
    }
}
