//! Exact K-longest-path enumeration.
//!
//! Implements a best-first backward search (a recursive-enumeration /
//! Eppstein-style scheme specialized to DAGs): partial paths grow from
//! primary outputs toward primary inputs, ranked by the exact upper bound
//! `suffix_length + longest_prefix_to(node)`. Because the bound is exact,
//! paths pop off the heap in globally decreasing length order, so the
//! first K completions are the K longest paths — the "200 longest paths"
//! the paper's timing-aware ATPG targets.

use avfs_delay::TimingAnnotation;
use avfs_netlist::{Levelization, Netlist, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One structural path from a primary input to a primary output.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Nodes from PI to PO inclusive.
    pub nodes: Vec<NodeId>,
    /// Total length: sum of the worst-case pin delays along the path (ps),
    /// or hop count when enumerating with unit delays.
    pub length: f64,
}

impl Path {
    /// The launching primary input.
    pub fn source(&self) -> NodeId {
        *self.nodes.first().expect("paths are non-empty")
    }

    /// The observing primary output.
    pub fn sink(&self) -> NodeId {
        *self.nodes.last().expect("paths are non-empty")
    }
}

/// The edge delay used for ranking: the worst of the rise/fall pin delays
/// from `fanin_idx` into `node`, or 1 for unit-delay enumeration.
fn edge_delay(annotation: Option<&TimingAnnotation>, node: NodeId, fanin_idx: usize) -> f64 {
    match annotation {
        Some(ann) => {
            let pins = ann.node_delays(node);
            if fanin_idx < pins.len() {
                pins[fanin_idx].max()
            } else {
                0.0
            }
        }
        None => 1.0,
    }
}

/// Enumerates the `k` longest PI→PO paths of `netlist`.
///
/// With `annotation = Some(_)` edges weigh their worst-case annotated pin
/// delay (a static-timing view); with `None` every edge weighs 1
/// (structural depth). Ties break deterministically by node order.
///
/// Returns fewer than `k` paths when the circuit has fewer distinct paths
/// (enumeration is capped at `k` completions and `64·k` heap expansions
/// per output to bound memory on reconvergent fan-out).
pub fn k_longest_paths(
    netlist: &Netlist,
    levels: &Levelization,
    annotation: Option<&TimingAnnotation>,
    k: usize,
) -> Vec<Path> {
    if k == 0 {
        return Vec::new();
    }
    // Longest prefix distance from any PI to each node.
    let mut prefix = vec![0.0f64; netlist.num_nodes()];
    for id in levels.topological_order() {
        let node = netlist.node(id);
        let mut best = 0.0f64;
        for (idx, &f) in node.fanin().iter().enumerate() {
            let cand = prefix[f.index()] + edge_delay(annotation, id, idx);
            best = best.max(cand);
        }
        prefix[id.index()] = best;
    }

    #[derive(Debug)]
    struct Partial {
        bound: f64,
        /// Suffix from this node to the PO (reversed: PO first).
        suffix: Vec<NodeId>,
        node: NodeId,
    }
    impl PartialEq for Partial {
        fn eq(&self, other: &Self) -> bool {
            self.bound == other.bound && self.node == other.node
        }
    }
    impl Eq for Partial {}
    impl PartialOrd for Partial {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Partial {
        fn cmp(&self, other: &Self) -> Ordering {
            self.bound
                .total_cmp(&other.bound)
                .then_with(|| self.node.index().cmp(&other.node.index()).reverse())
        }
    }

    let mut heap: BinaryHeap<Partial> = BinaryHeap::new();
    for &po in netlist.outputs() {
        heap.push(Partial {
            bound: prefix[po.index()],
            suffix: vec![po],
            node: po,
        });
    }

    let mut paths = Vec::with_capacity(k);
    // Memory/time guard on heavily reconvergent circuits: enough to find
    // k complete paths in practice without letting the heap explode.
    let expansion_budget = k.saturating_mul(128).max(4096);
    let mut expansions = 0usize;
    while let Some(partial) = heap.pop() {
        let node = netlist.node(partial.node);
        if node.fanin().is_empty() {
            // Reached a PI: the suffix is a complete path.
            let mut nodes = partial.suffix.clone();
            nodes.reverse();
            paths.push(Path {
                nodes,
                length: partial.bound,
            });
            if paths.len() >= k {
                break;
            }
            continue;
        }
        expansions += 1;
        if expansions > expansion_budget {
            break;
        }
        let suffix_len = partial.bound - prefix[partial.node.index()];
        for (idx, &f) in node.fanin().iter().enumerate() {
            let d = edge_delay(annotation, partial.node, idx);
            let mut suffix = partial.suffix.clone();
            suffix.push(f);
            heap.push(Partial {
                bound: suffix_len + d + prefix[f.index()],
                suffix,
                node: f,
            });
        }
    }
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfs_netlist::bench::{parse_bench, BenchOptions, C17_BENCH};
    use avfs_netlist::{CellLibrary, NetlistBuilder};
    use avfs_waveform::PinDelays;

    fn c17() -> (Netlist, Levelization) {
        let lib = CellLibrary::nangate15_like();
        let n = parse_bench("c17", C17_BENCH, &lib, &BenchOptions::default()).unwrap();
        let l = Levelization::of(&n).expect("acyclic");
        (n, l)
    }

    #[test]
    fn unit_delay_longest_path_depth() {
        let (n, l) = c17();
        let paths = k_longest_paths(&n, &l, None, 1);
        assert_eq!(paths.len(), 1);
        // c17's deepest structure: PI → NAND → NAND → NAND → PO = 4 hops.
        assert_eq!(paths[0].length, 4.0);
        assert_eq!(paths[0].nodes.len(), 5);
        // Endpoints are a PI and a PO.
        assert!(n.inputs().contains(&paths[0].source()));
        assert!(n.outputs().contains(&paths[0].sink()));
    }

    #[test]
    fn paths_come_out_sorted_and_distinct() {
        let (n, l) = c17();
        let paths = k_longest_paths(&n, &l, None, 10);
        assert!(paths.len() >= 6, "c17 has many PI→PO paths");
        for w in paths.windows(2) {
            assert!(w[0].length >= w[1].length, "lengths must be non-increasing");
        }
        // All paths distinct.
        for i in 0..paths.len() {
            for j in i + 1..paths.len() {
                assert_ne!(paths[i].nodes, paths[j].nodes);
            }
        }
        // Every path is structurally valid.
        for p in &paths {
            for pair in p.nodes.windows(2) {
                assert!(n.node(pair[1]).fanin().contains(&pair[0]));
            }
        }
    }

    #[test]
    fn annotated_delays_reorder_paths() {
        // Two parallel two-gate chains; make the structurally identical
        // second chain much slower via annotation.
        let lib = CellLibrary::nangate15_like();
        let mut b = NetlistBuilder::new("par", &lib);
        let a = b.add_input("a").unwrap();
        let fast1 = b.add_gate("fast1", "BUF_X1", &[a]).unwrap();
        let fast2 = b.add_gate("fast2", "BUF_X1", &[fast1]).unwrap();
        let slow1 = b.add_gate("slow1", "BUF_X1", &[a]).unwrap();
        let slow2 = b.add_gate("slow2", "BUF_X1", &[slow1]).unwrap();
        b.add_output("yf", fast2).unwrap();
        b.add_output("ys", slow2).unwrap();
        let n = b.finish().unwrap();
        let l = Levelization::of(&n).expect("acyclic");
        let mut ann = TimingAnnotation::zero(&n);
        for (name, d) in [
            ("fast1", 1.0),
            ("fast2", 1.0),
            ("slow1", 50.0),
            ("slow2", 50.0),
        ] {
            let id = n.find(name).unwrap();
            ann.node_delays_mut(id)[0] = PinDelays { rise: d, fall: d };
        }
        let paths = k_longest_paths(&n, &l, Some(&ann), 2);
        assert_eq!(paths.len(), 2);
        assert_eq!(n.node(paths[0].sink()).name(), "ys");
        assert!((paths[0].length - 100.0).abs() < 1e-9);
        assert!((paths[1].length - 2.0).abs() < 1e-9);
    }

    #[test]
    fn k_zero_and_k_larger_than_path_count() {
        let (n, l) = c17();
        assert!(k_longest_paths(&n, &l, None, 0).is_empty());
        let all = k_longest_paths(&n, &l, None, 10_000);
        // c17 path count is finite and small; request must not hang or
        // fabricate duplicates.
        assert!(all.len() < 100);
        for i in 0..all.len() {
            for j in i + 1..all.len() {
                assert_ne!(all[i].nodes, all[j].nodes);
            }
        }
    }
}
