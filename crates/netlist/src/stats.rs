//! Circuit statistics — the "Circuit / Nodes" columns of Table I.

use crate::graph::{Netlist, NodeKind};
use crate::levelize::Levelization;
use std::fmt;

/// Summary statistics of a netlist.
///
/// # Example
///
/// ```
/// use avfs_netlist::{bench, CellLibrary, NetlistStats};
///
/// # fn main() -> Result<(), avfs_netlist::NetlistError> {
/// let lib = CellLibrary::nangate15_like();
/// let c17 = bench::parse_bench("c17", bench::C17_BENCH, &lib, &Default::default())?;
/// let stats = NetlistStats::of(&c17);
/// assert_eq!(stats.nodes, 13);
/// assert_eq!(stats.gates, 6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetlistStats {
    /// Total nodes (inputs + gates + outputs), the paper's "Nodes" metric.
    pub nodes: usize,
    /// Gate count.
    pub gates: usize,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Number of levels including the PI and PO levels.
    pub depth: usize,
    /// Widest level (bound on per-level gate parallelism).
    pub max_level_width: usize,
    /// Largest gate fan-in.
    pub max_fanin: usize,
    /// Largest net fan-out.
    pub max_fanout: usize,
}

impl NetlistStats {
    /// Computes statistics for a netlist.
    ///
    /// # Panics
    ///
    /// Panics if the netlist contains a combinational loop (impossible for
    /// netlists built through `NetlistBuilder::finish`).
    pub fn of(netlist: &Netlist) -> NetlistStats {
        let levels = Levelization::of(netlist).expect("netlist must be acyclic");
        NetlistStats::with_levels(netlist, &levels)
    }

    /// Computes statistics reusing an existing levelization.
    pub fn with_levels(netlist: &Netlist, levels: &Levelization) -> NetlistStats {
        let mut gates = 0;
        let mut max_fanin = 0;
        let mut max_fanout = 0;
        for (_, node) in netlist.iter() {
            if matches!(node.kind(), NodeKind::Gate(_)) {
                gates += 1;
                max_fanin = max_fanin.max(node.fanin().len());
            }
            max_fanout = max_fanout.max(node.fanout().len());
        }
        NetlistStats {
            nodes: netlist.num_nodes(),
            gates,
            inputs: netlist.inputs().len(),
            outputs: netlist.outputs().len(),
            depth: levels.depth(),
            max_level_width: levels.max_width(),
            max_fanin,
            max_fanout,
        }
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes ({} gates, {} PI, {} PO), depth {}, widest level {}",
            self.nodes, self.gates, self.inputs, self.outputs, self.depth, self.max_level_width
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::{parse_bench, BenchOptions, C17_BENCH};
    use crate::library::CellLibrary;

    #[test]
    fn c17_stats() {
        let lib = CellLibrary::nangate15_like();
        let n = parse_bench("c17", C17_BENCH, &lib, &BenchOptions::default()).unwrap();
        let s = NetlistStats::of(&n);
        assert_eq!(s.nodes, 13);
        assert_eq!(s.gates, 6);
        assert_eq!(s.inputs, 5);
        assert_eq!(s.outputs, 2);
        assert_eq!(s.depth, 5);
        assert_eq!(s.max_fanin, 2);
        // Net 11 and 16 each drive two sinks.
        assert_eq!(s.max_fanout, 2);
        let shown = s.to_string();
        assert!(shown.contains("13 nodes"));
    }
}
