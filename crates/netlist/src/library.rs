//! A synthetic 15 nm-class standard-cell library.
//!
//! The paper uses the NanGate 15 nm Open Cell Library, which is a
//! proprietary download. This module builds a library with the same
//! *taxonomy* (the functions and drive strengths of Fig. 4: AND, NAND, BUF,
//! INV, OR, NOR — plus XOR/XNOR/AOI/OAI/MUX — each in X1…X8) and physically
//! plausible electrical parameters derived from simple transistor sizing
//! rules. The characterization substrate (`avfs-spice`) consumes these
//! parameters to produce delay surfaces in the picosecond range of the
//! paper's tables.
//!
//! Sizing model: a cell of drive `Xk` uses NMOS devices of width
//! `k · S_n` units and PMOS devices of width `k · μ · S_p` units, where
//! `S_n`/`S_p` are the worst-case series stack depths of the pull-down /
//! pull-up network (stacked devices are widened to preserve drive) and
//! `μ = 1.5` compensates the hole-mobility deficit. Pin capacitances and
//! output parasitics are proportional to the connected gate and diffusion
//! widths.

use crate::cell::{CellKind, DriveStrength, LogicFunction};
use crate::NetlistError;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Signal transition polarity at a gate *output*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Polarity {
    /// Output rises (0 → 1); the pull-up network conducts.
    Rise,
    /// Output falls (1 → 0); the pull-down network conducts.
    Fall,
}

impl Polarity {
    /// Both polarities, in `[Rise, Fall]` order (the index order used by
    /// coefficient tables).
    pub fn both() -> [Polarity; 2] {
        [Polarity::Rise, Polarity::Fall]
    }

    /// Stable index: `Rise = 0`, `Fall = 1`.
    pub fn index(&self) -> usize {
        match self {
            Polarity::Rise => 0,
            Polarity::Fall => 1,
        }
    }

    /// The polarity of a transition from `from` to `!from`.
    pub fn of_transition_to(new_value: bool) -> Polarity {
        if new_value {
            Polarity::Rise
        } else {
            Polarity::Fall
        }
    }
}

impl fmt::Display for Polarity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Polarity::Rise => f.write_str("rise"),
            Polarity::Fall => f.write_str("fall"),
        }
    }
}

/// PMOS/NMOS mobility compensation factor used by the sizing rules.
pub const MOBILITY_RATIO: f64 = 1.5;

/// Gate capacitance per unit transistor width, in fF.
pub const GATE_CAP_PER_WIDTH_FF: f64 = 0.25;

/// Diffusion (parasitic output) capacitance per unit width, in fF.
pub const DIFF_CAP_PER_WIDTH_FF: f64 = 0.12;

/// An input pin of a cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Pin {
    /// Pin name (`A`, `B`, …; `S` for a mux select).
    pub name: String,
    /// Input capacitance presented to the driving net, in fF.
    pub capacitance_ff: f64,
}

/// The conducting-path description for one (input pin, output polarity)
/// pair, consumed by the transistor-level characterization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PinDrive {
    /// Effective conducting channel width in unit widths (device width
    /// divided by series stack depth).
    pub width: f64,
    /// Series stack depth of the conducting network for this transition.
    pub stack: u8,
    /// Position of the switching device in the stack (0 = nearest the
    /// output node; inner positions are slower).
    pub position: u8,
    /// Number of logic stages inside the cell (1 for inverting primitives,
    /// 2 for buffered/composite cells like AND, OR, XOR, MUX).
    pub stages: u8,
}

/// One standard cell: kind, pins, and electrical sizing data.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    kind: CellKind,
    name: String,
    input_pins: Vec<Pin>,
    output_pin: String,
    /// Per-device NMOS width (unit widths).
    wn: f64,
    /// Per-device PMOS width (unit widths).
    wp: f64,
    parasitic_cap_ff: f64,
}

impl Cell {
    fn build(kind: CellKind) -> Cell {
        let drive = kind.drive().factor();
        let (pd_stack, pu_stack) = worst_stacks(kind.function(), kind.num_inputs());
        let stages = stage_count(kind.function());
        // Stacked devices are widened to preserve unit drive through the
        // full stack.
        let wn = drive * pd_stack as f64;
        let wp = drive * MOBILITY_RATIO * pu_stack as f64;
        // Multi-stage cells present the first stage's (smaller) devices to
        // the input; model with a 0.7 factor per pin, plus the full load
        // internally (captured in the parasitic).
        let pin_width = if stages > 1 { 0.7 * (wn + wp) } else { wn + wp };
        let n = kind.num_inputs();
        let input_pins = (0..n)
            .map(|i| Pin {
                name: pin_name(kind.function(), i, n),
                capacitance_ff: GATE_CAP_PER_WIDTH_FF * pin_width,
            })
            .collect();
        let parasitic_cap_ff =
            DIFF_CAP_PER_WIDTH_FF * (wn + wp) * if stages > 1 { 1.6 } else { 1.0 };
        let output_pin = if kind.function().is_inverting() {
            "ZN".to_owned()
        } else {
            "Z".to_owned()
        };
        Cell {
            name: kind.to_string(),
            kind,
            input_pins,
            output_pin,
            wn,
            wp,
            parasitic_cap_ff,
        }
    }

    /// The cell kind (function, arity, drive).
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// The cell-type name, e.g. `NAND2_X1`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The input pins in connection order.
    pub fn input_pins(&self) -> &[Pin] {
        &self.input_pins
    }

    /// Number of input pins.
    pub fn num_inputs(&self) -> usize {
        self.input_pins.len()
    }

    /// The output pin name (`Z` or `ZN`).
    pub fn output_pin(&self) -> &str {
        &self.output_pin
    }

    /// Output parasitic (diffusion) capacitance in fF.
    pub fn parasitic_cap_ff(&self) -> f64 {
        self.parasitic_cap_ff
    }

    /// Describes the conducting path when a transition on `pin` causes the
    /// output to make a `polarity` transition.
    ///
    /// # Panics
    ///
    /// Panics if `pin >= self.num_inputs()`.
    pub fn pin_drive(&self, pin: usize, polarity: Polarity) -> PinDrive {
        assert!(pin < self.num_inputs(), "pin index out of range");
        let func = self.kind.function();
        let n = self.kind.num_inputs();
        let stages = stage_count(func);
        let (stack, position) = pin_stack(func, n, pin, polarity);
        let device_width = match polarity {
            Polarity::Rise => self.wp / MOBILITY_RATIO, // current-equivalent width
            Polarity::Fall => self.wn,
        };
        PinDrive {
            width: device_width / stack as f64,
            stack,
            position,
            stages,
        }
    }

    /// Evaluates the cell function.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`.
    pub fn eval(&self, inputs: &[bool]) -> bool {
        self.kind.eval(inputs)
    }

    /// Evaluates the cell function for 64 lanes at once: bit `k` of the
    /// result is `eval` of bit `k` of every input word (see
    /// [`LogicFunction::eval_lanes`]).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`.
    pub fn eval_lanes(&self, inputs: &[u64]) -> u64 {
        self.kind.eval_lanes(inputs)
    }
}

/// Conventional pin names: `A1…An` for simple gates, `A/B/S` for muxes,
/// `A1/A2/B1/B2` style for AOI/OAI.
fn pin_name(func: LogicFunction, index: usize, arity: usize) -> String {
    match func {
        LogicFunction::Buf | LogicFunction::Inv => "A".to_owned(),
        LogicFunction::Mux2 => ["A", "B", "S"][index].to_owned(),
        LogicFunction::Aoi21 | LogicFunction::Oai21 => ["A1", "A2", "B"][index].to_owned(),
        LogicFunction::Aoi22 | LogicFunction::Oai22 => ["A1", "A2", "B1", "B2"][index].to_owned(),
        _ if arity == 1 => "A".to_owned(),
        _ => format!("A{}", index + 1),
    }
}

/// Worst-case series stack depths (pull-down, pull-up) of the cell body.
fn worst_stacks(func: LogicFunction, n: usize) -> (u8, u8) {
    let n = n as u8;
    match func {
        LogicFunction::Buf | LogicFunction::Inv => (1, 1),
        LogicFunction::And | LogicFunction::Nand => (n, 1),
        LogicFunction::Or | LogicFunction::Nor => (1, n),
        LogicFunction::Xor | LogicFunction::Xnor => (2, 2),
        LogicFunction::Aoi21 => (2, 2),
        LogicFunction::Oai21 => (2, 2),
        LogicFunction::Aoi22 => (2, 2),
        LogicFunction::Oai22 => (2, 2),
        LogicFunction::Mux2 => (2, 2),
    }
}

/// Number of internal stages (composite cells are an inverting core plus an
/// output inverter).
fn stage_count(func: LogicFunction) -> u8 {
    match func {
        LogicFunction::Inv | LogicFunction::Nand | LogicFunction::Nor => 1,
        LogicFunction::Aoi21
        | LogicFunction::Oai21
        | LogicFunction::Aoi22
        | LogicFunction::Oai22 => 1,
        LogicFunction::Buf
        | LogicFunction::And
        | LogicFunction::Or
        | LogicFunction::Xor
        | LogicFunction::Xnor
        | LogicFunction::Mux2 => 2,
    }
}

/// Stack depth and position of the conducting path when `pin` switches and
/// the output makes a `polarity` transition.
fn pin_stack(func: LogicFunction, n: usize, pin: usize, polarity: Polarity) -> (u8, u8) {
    use LogicFunction::*;
    use Polarity::*;
    let n8 = n as u8;
    let p8 = pin as u8;
    match (func, polarity) {
        (Buf | Inv, _) => (1, 0),
        // NAND/AND body: series pull-down (position = pin order), parallel
        // pull-up.
        (Nand | And, Fall) => (n8, p8),
        (Nand | And, Rise) => (1, 0),
        // NOR/OR body: parallel pull-down, series pull-up.
        (Nor | Or, Fall) => (1, 0),
        (Nor | Or, Rise) => (n8, p8),
        // XOR/XNOR/MUX: both networks are two deep for every pin.
        (Xor | Xnor | Mux2, _) => (2, (p8).min(1)),
        // AOI21 = !((A1∧A2) ∨ B): pull-down has a 2-stack for A pins and a
        // single device for B; pull-up is always a 2-stack.
        (Aoi21, Fall) => {
            if pin < 2 {
                (2, p8)
            } else {
                (1, 0)
            }
        }
        (Aoi21, Rise) => (2, if pin < 2 { 0 } else { 1 }),
        // OAI21 = !((A1∨A2) ∧ B): dual of AOI21.
        (Oai21, Fall) => (2, if pin < 2 { 0 } else { 1 }),
        (Oai21, Rise) => {
            if pin < 2 {
                (2, p8)
            } else {
                (1, 0)
            }
        }
        (Aoi22, Fall) => (2, p8 % 2),
        (Aoi22, Rise) => (2, p8 / 2),
        (Oai22, Fall) => (2, p8 / 2),
        (Oai22, Rise) => (2, p8 % 2),
    }
}

/// A cell-type index into a [`CellLibrary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub(crate) u32);

impl CellId {
    /// The raw index value.
    pub fn index(&self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a `CellId` from a raw index.
    ///
    /// Intended for data structures (coefficient tables, annotation
    /// arrays) that are densely indexed by cell id; the caller is
    /// responsible for using indices obtained from the same library.
    pub fn from_index(index: usize) -> CellId {
        CellId(index as u32)
    }
}

/// An immutable collection of standard cells, shared by netlists via `Arc`.
///
/// # Example
///
/// ```
/// use avfs_netlist::CellLibrary;
///
/// let lib = CellLibrary::nangate15_like();
/// let id = lib.find("NOR2_X2").expect("library contains NOR2_X2");
/// assert_eq!(lib.cell(id).num_inputs(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct CellLibrary {
    cells: Vec<Cell>,
    by_name: HashMap<String, CellId>,
}

impl CellLibrary {
    /// Builds the full synthetic library: every [`LogicFunction`] at every
    /// legal arity and drive strength (196 cells).
    pub fn nangate15_like() -> Arc<CellLibrary> {
        let mut lib = CellLibrary {
            cells: Vec::new(),
            by_name: HashMap::new(),
        };
        for &f in LogicFunction::all() {
            for arity in f.arity_range() {
                for &d in DriveStrength::all() {
                    let kind = CellKind::new(f, arity, d).expect("valid arity by construction");
                    lib.insert(Cell::build(kind));
                }
            }
        }
        Arc::new(lib)
    }

    /// Builds a library from an explicit set of cell kinds (used by tests
    /// and by the characterization subset of Fig. 4).
    pub fn from_kinds(kinds: impl IntoIterator<Item = CellKind>) -> Arc<CellLibrary> {
        let mut lib = CellLibrary {
            cells: Vec::new(),
            by_name: HashMap::new(),
        };
        for kind in kinds {
            lib.insert(Cell::build(kind));
        }
        Arc::new(lib)
    }

    fn insert(&mut self, cell: Cell) {
        let id = CellId(self.cells.len() as u32);
        self.by_name.insert(cell.name().to_owned(), id);
        self.cells.push(cell);
    }

    /// Looks up a cell type by name.
    pub fn find(&self, name: &str) -> Option<CellId> {
        self.by_name.get(name).copied()
    }

    /// Looks up a cell type by name, returning a typed error when missing.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownCell`] if the name is not present.
    pub fn require(&self, name: &str) -> Result<CellId, NetlistError> {
        self.find(name).ok_or_else(|| NetlistError::UnknownCell {
            cell: name.to_owned(),
        })
    }

    /// A deterministic 64-bit hash of the library's electrical content:
    /// every cell's name, pin names and capacitances, device widths,
    /// parasitic and output-pin name, in cell order. Any parameter
    /// change — a retuned capacitance, an added drive strength —
    /// changes the hash. Used as the library half of compiled-artifact
    /// cache keys.
    pub fn content_hash(&self) -> u64 {
        let mut h = crate::hash::Fnv1a::new();
        h.write_usize(self.cells.len());
        for cell in &self.cells {
            h.write_str(&cell.name);
            h.write_str(&cell.output_pin);
            h.write_f64(cell.wn);
            h.write_f64(cell.wp);
            h.write_f64(cell.parasitic_cap_ff);
            h.write_usize(cell.input_pins.len());
            for pin in &cell.input_pins {
                h.write_str(&pin.name);
                h.write_f64(pin.capacitance_ff);
            }
        }
        h.finish()
    }

    /// The cell for an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this library.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.0 as usize]
    }

    /// Number of cell types.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if the library holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterates over `(id, cell)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CellId(i as u32), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_contains_fig4_subset() {
        let lib = CellLibrary::nangate15_like();
        // Fig. 4 subset: AND, NAND, BUF, INV, OR and NOR for all strengths.
        for base in ["AND2", "NAND2", "BUF", "INV", "OR2", "NOR2"] {
            for strength in ["X1", "X2", "X4", "X8"] {
                let name = format!("{base}_{strength}");
                assert!(lib.find(&name).is_some(), "missing {name}");
            }
        }
    }

    #[test]
    fn library_size() {
        let lib = CellLibrary::nangate15_like();
        // 13 functions; AND/NAND/OR/NOR at arities 2..=4 → 4·3 = 12 extra.
        // Functions with one arity each: BUF, INV, XOR, XNOR, AOI21, OAI21,
        // AOI22, OAI22, MUX2 = 9. Total kinds = (9 + 12) · 4 strengths = 84.
        assert_eq!(lib.len(), 84);
        assert!(!lib.is_empty());
    }

    #[test]
    fn ids_are_stable() {
        let lib = CellLibrary::nangate15_like();
        for (id, cell) in lib.iter() {
            assert_eq!(lib.find(cell.name()), Some(id));
            assert_eq!(lib.cell(id).name(), cell.name());
        }
    }

    #[test]
    fn require_unknown_is_error() {
        let lib = CellLibrary::nangate15_like();
        assert!(matches!(
            lib.require("FROB2_X1"),
            Err(NetlistError::UnknownCell { .. })
        ));
    }

    #[test]
    fn drive_strength_scales_pin_cap() {
        let lib = CellLibrary::nangate15_like();
        let x1 = lib.cell(lib.find("INV_X1").unwrap());
        let x4 = lib.cell(lib.find("INV_X4").unwrap());
        let c1 = x1.input_pins()[0].capacitance_ff;
        let c4 = x4.input_pins()[0].capacitance_ff;
        assert!((c4 / c1 - 4.0).abs() < 1e-9, "X4 pin cap should be 4× X1");
        assert!(c1 > 0.1 && c1 < 5.0, "X1 pin cap {c1} fF is implausible");
    }

    #[test]
    fn nand_stacks() {
        let lib = CellLibrary::nangate15_like();
        let nand3 = lib.cell(lib.find("NAND3_X1").unwrap());
        let fall = nand3.pin_drive(1, Polarity::Fall);
        assert_eq!(fall.stack, 3);
        assert_eq!(fall.position, 1);
        let rise = nand3.pin_drive(1, Polarity::Rise);
        assert_eq!(rise.stack, 1);
        // Stacked NMOS devices are widened: effective fall width stays at
        // the nominal drive.
        assert!((fall.width - 1.0).abs() < 1e-9);
    }

    #[test]
    fn nor_is_dual_of_nand() {
        let lib = CellLibrary::nangate15_like();
        let nor2 = lib.cell(lib.find("NOR2_X1").unwrap());
        assert_eq!(nor2.pin_drive(0, Polarity::Rise).stack, 2);
        assert_eq!(nor2.pin_drive(0, Polarity::Fall).stack, 1);
    }

    #[test]
    fn output_pin_names_follow_inversion() {
        let lib = CellLibrary::nangate15_like();
        assert_eq!(lib.cell(lib.find("NAND2_X1").unwrap()).output_pin(), "ZN");
        assert_eq!(lib.cell(lib.find("AND2_X1").unwrap()).output_pin(), "Z");
    }

    #[test]
    fn pin_names() {
        let lib = CellLibrary::nangate15_like();
        let mux = lib.cell(lib.find("MUX2_X1").unwrap());
        let names: Vec<_> = mux.input_pins().iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["A", "B", "S"]);
        let nand4 = lib.cell(lib.find("NAND4_X1").unwrap());
        assert_eq!(nand4.input_pins()[3].name, "A4");
        let aoi = lib.cell(lib.find("AOI21_X1").unwrap());
        let names: Vec<_> = aoi.input_pins().iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["A1", "A2", "B"]);
    }

    #[test]
    fn parasitic_caps_positive_and_scale() {
        let lib = CellLibrary::nangate15_like();
        for (_, cell) in lib.iter() {
            assert!(cell.parasitic_cap_ff() > 0.0, "{}", cell.name());
        }
        let inv1 = lib.cell(lib.find("INV_X1").unwrap()).parasitic_cap_ff();
        let inv8 = lib.cell(lib.find("INV_X8").unwrap()).parasitic_cap_ff();
        assert!((inv8 / inv1 - 8.0).abs() < 1e-9);
    }

    #[test]
    fn polarity_index() {
        assert_eq!(Polarity::Rise.index(), 0);
        assert_eq!(Polarity::Fall.index(), 1);
        assert_eq!(Polarity::of_transition_to(true), Polarity::Rise);
        assert_eq!(Polarity::of_transition_to(false), Polarity::Fall);
        assert_eq!(Polarity::both(), [Polarity::Rise, Polarity::Fall]);
    }

    #[test]
    fn from_kinds_builds_subset() {
        let kinds = [
            CellKind::new(LogicFunction::Inv, 1, DriveStrength::X1).unwrap(),
            CellKind::new(LogicFunction::Nand, 2, DriveStrength::X2).unwrap(),
        ];
        let lib = CellLibrary::from_kinds(kinds);
        assert_eq!(lib.len(), 2);
        assert!(lib.find("INV_X1").is_some());
        assert!(lib.find("NAND2_X2").is_some());
        assert!(lib.find("NOR2_X1").is_none());
    }
}
