//! The netlist graph: primary inputs, gates and primary outputs.
//!
//! Every node drives exactly one net, so nets are identified with their
//! driving node. Primary outputs are explicit observation nodes with a
//! single fan-in, matching the paper's node accounting ("cells, inputs and
//! outputs", Table I column 2).

use crate::cell::CellKind;
use crate::library::{CellId, CellLibrary};
use crate::NetlistError;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Default extra wire capacitance per fan-out branch, in fF.
pub const WIRE_CAP_PER_FANOUT_FF: f64 = 0.10;

/// Default capacitive load presented by a primary-output port, in fF.
pub const OUTPUT_PORT_CAP_FF: f64 = 2.0;

/// Index of a node (= its driven net) within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw index.
    pub fn index(&self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a `NodeId` from a raw index.
    ///
    /// Intended for dense per-node arrays (annotations, waveform arenas);
    /// the caller must use indices obtained from the same netlist.
    pub fn from_index(index: usize) -> NodeId {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Primary input (stimulus entry point).
    Input,
    /// A logic gate instantiating a library cell.
    Gate(CellId),
    /// Primary output (observation point; single fan-in, no logic).
    Output,
}

/// One node of the netlist graph.
#[derive(Debug, Clone)]
pub struct Node {
    name: String,
    kind: NodeKind,
    fanin: Vec<NodeId>,
    fanout: Vec<NodeId>,
}

impl Node {
    /// The node's (unique) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node kind.
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// Driving nodes, in pin order.
    pub fn fanin(&self) -> &[NodeId] {
        &self.fanin
    }

    /// Driven nodes.
    pub fn fanout(&self) -> &[NodeId] {
        &self.fanout
    }
}

/// An immutable, validated gate-level netlist.
///
/// Construct through [`NetlistBuilder`] or one of the parsers
/// ([`bench`](crate::bench), [`verilog`](crate::verilog)).
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    library: Arc<CellLibrary>,
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
    by_name: HashMap<String, NodeId>,
}

impl Netlist {
    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cell library this netlist instantiates.
    pub fn library(&self) -> &Arc<CellLibrary> {
        &self.library
    }

    /// Total node count (inputs + gates + outputs) — the paper's "Nodes".
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of gate nodes.
    pub fn num_gates(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Gate(_)))
            .count()
    }

    /// Primary inputs in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary outputs in declaration order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// The node for an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// All nodes, indexable by [`NodeId::index`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Iterates over `(id, node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Looks a node up by name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// A deterministic 64-bit hash of the netlist's structural content:
    /// design name, bound library
    /// ([`CellLibrary::content_hash`]), and every node's name, kind
    /// (gates by cell-type name) and fan-in, plus the input/output
    /// declaration order. Two netlists with equal structure hash
    /// equally regardless of how they were built; any renamed node,
    /// re-typed gate or rewired pin changes the hash. Used as the
    /// netlist half of compiled-artifact cache keys.
    pub fn content_hash(&self) -> u64 {
        let mut h = crate::hash::Fnv1a::new();
        h.write_str(&self.name);
        h.write_u64(self.library.content_hash());
        h.write_usize(self.nodes.len());
        for node in &self.nodes {
            h.write_str(&node.name);
            match node.kind {
                NodeKind::Input => h.write_usize(0),
                NodeKind::Gate(cell) => {
                    h.write_usize(1);
                    h.write_str(self.library.cell(cell).name());
                }
                NodeKind::Output => h.write_usize(2),
            }
            h.write_usize(node.fanin.len());
            for id in &node.fanin {
                h.write_usize(id.index());
            }
        }
        h.write_usize(self.inputs.len());
        for id in &self.inputs {
            h.write_usize(id.index());
        }
        h.write_usize(self.outputs.len());
        for id in &self.outputs {
            h.write_usize(id.index());
        }
        h.finish()
    }

    /// The library cell of a gate node, or `None` for inputs/outputs.
    pub fn cell_of(&self, id: NodeId) -> Option<&crate::library::Cell> {
        match self.node(id).kind {
            NodeKind::Gate(cell) => Some(self.library.cell(cell)),
            _ => None,
        }
    }

    /// The [`CellKind`] of a gate node.
    pub fn kind_of(&self, id: NodeId) -> Option<CellKind> {
        self.cell_of(id).map(|c| c.kind())
    }

    /// Clears the fan-out list of `node` without touching its sinks'
    /// fan-in pins, leaving the two edge sets inconsistent.
    ///
    /// Test hook for graph-integrity lints (`avfs-check` rule AVC-N003):
    /// every public construction path keeps fan-in and fan-out
    /// cross-references consistent, so re-proving that property needs a
    /// way to corrupt an owned netlist. Production code has no use for
    /// it.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[doc(hidden)]
    pub fn clear_fanout_unchecked(&mut self, node: NodeId) {
        self.nodes[node.index()].fanout.clear();
    }

    /// Computes the capacitive load (fF) on every node's output net:
    /// the sum of the fan-out pins' input capacitances, a wire estimate of
    /// [`WIRE_CAP_PER_FANOUT_FF`] per branch, and [`OUTPUT_PORT_CAP_FF`]
    /// for nets observed by a primary output.
    ///
    /// These are the per-net `c` parameters of the operating points; in a
    /// flow with extracted parasitics they are overridden from SPEF data
    /// (see `avfs-sdf`).
    pub fn load_caps_ff(&self) -> Vec<f64> {
        let mut caps = vec![0.0f64; self.nodes.len()];
        for (id, node) in self.iter() {
            let mut load = 0.0;
            for &sink in node.fanout() {
                load += WIRE_CAP_PER_FANOUT_FF;
                match self.node(sink).kind {
                    NodeKind::Gate(cell_id) => {
                        // Which pin of the sink does this net drive?
                        let sink_node = self.node(sink);
                        let pin = sink_node
                            .fanin()
                            .iter()
                            .position(|&f| f == id)
                            .expect("fanout/fanin must be consistent");
                        load += self.library.cell(cell_id).input_pins()[pin].capacitance_ff;
                    }
                    NodeKind::Output => load += OUTPUT_PORT_CAP_FF,
                    NodeKind::Input => unreachable!("inputs have no fanin"),
                }
            }
            caps[id.index()] = load;
        }
        caps
    }
}

/// Incremental, validating netlist constructor.
///
/// Nodes must be added before they are referenced (inputs first, then gates
/// in any topological-compatible order, though any order is accepted — the
/// final [`NetlistBuilder::finish`] validates acyclicity).
pub struct NetlistBuilder {
    name: String,
    library: Arc<CellLibrary>,
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
    by_name: HashMap<String, NodeId>,
}

impl NetlistBuilder {
    /// Starts building a netlist over the given library.
    pub fn new(name: impl Into<String>, library: &Arc<CellLibrary>) -> Self {
        NetlistBuilder {
            name: name.into(),
            library: Arc::clone(library),
            nodes: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    fn add_node(
        &mut self,
        name: String,
        kind: NodeKind,
        fanin: Vec<NodeId>,
    ) -> Result<NodeId, NetlistError> {
        if self.by_name.contains_key(&name) {
            return Err(NetlistError::DuplicateName { name });
        }
        let id = NodeId(self.nodes.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.nodes.push(Node {
            name,
            kind,
            fanin,
            fanout: Vec::new(),
        });
        Ok(id)
    }

    /// Adds a primary input.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the name is taken.
    pub fn add_input(&mut self, name: impl Into<String>) -> Result<NodeId, NetlistError> {
        let id = self.add_node(name.into(), NodeKind::Input, Vec::new())?;
        self.inputs.push(id);
        Ok(id)
    }

    /// Adds a gate of library type `cell_name` driven by `fanin` (in pin
    /// order).
    ///
    /// # Errors
    ///
    /// * [`NetlistError::DuplicateName`] if the name is taken,
    /// * [`NetlistError::UnknownCell`] if the cell type is not in the
    ///   library,
    /// * [`NetlistError::ArityMismatch`] if `fanin.len()` does not match the
    ///   cell,
    /// * [`NetlistError::InvalidNode`] if a fan-in id is out of bounds.
    pub fn add_gate(
        &mut self,
        name: impl Into<String>,
        cell_name: &str,
        fanin: &[NodeId],
    ) -> Result<NodeId, NetlistError> {
        let name = name.into();
        let cell_id = self.library.require(cell_name)?;
        let cell = self.library.cell(cell_id);
        if cell.num_inputs() != fanin.len() {
            return Err(NetlistError::ArityMismatch {
                gate: name,
                cell: cell_name.to_owned(),
                expected: cell.num_inputs(),
                got: fanin.len(),
            });
        }
        for &f in fanin {
            if f.index() >= self.nodes.len() {
                return Err(NetlistError::InvalidNode { index: f.index() });
            }
        }
        self.add_node(name, NodeKind::Gate(cell_id), fanin.to_vec())
    }

    /// Adds a primary output observing `source`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] or
    /// [`NetlistError::InvalidNode`].
    pub fn add_output(
        &mut self,
        name: impl Into<String>,
        source: NodeId,
    ) -> Result<NodeId, NetlistError> {
        if source.index() >= self.nodes.len() {
            return Err(NetlistError::InvalidNode {
                index: source.index(),
            });
        }
        let id = self.add_node(name.into(), NodeKind::Output, vec![source])?;
        self.outputs.push(id);
        Ok(id)
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if nothing has been added yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Looks up an already-added node by name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// Finalizes the netlist: computes fan-out lists and validates that the
    /// interface is non-empty and the graph acyclic.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::EmptyInterface`] without inputs or outputs,
    /// * [`NetlistError::CombinationalCycle`] on a cycle (impossible when
    ///   nodes were added in forward order, possible for parsers that
    ///   resolve names lazily).
    pub fn finish(self) -> Result<Netlist, NetlistError> {
        if self.inputs.is_empty() || self.outputs.is_empty() {
            return Err(NetlistError::EmptyInterface);
        }
        let netlist = self.assemble();
        // Kahn's algorithm to detect cycles.
        let n = netlist.nodes.len();
        let mut indegree: Vec<u32> = netlist.nodes.iter().map(|x| x.fanin.len() as u32).collect();
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut seen = 0usize;
        while let Some(i) = queue.pop() {
            seen += 1;
            for &s in netlist.nodes[i].fanout() {
                indegree[s.index()] -= 1;
                if indegree[s.index()] == 0 {
                    queue.push(s.index());
                }
            }
        }
        if seen != n {
            let node = indegree
                .iter()
                .position(|&d| d > 0)
                .map(|i| netlist.nodes[i].name.clone())
                .unwrap_or_default();
            return Err(NetlistError::CombinationalCycle { node });
        }
        Ok(netlist)
    }

    /// Finishes the netlist without the acyclicity check.
    ///
    /// Exists so robustness tests can construct cyclic graphs and exercise
    /// the downstream loop detection in
    /// [`crate::Levelization::of`]; production code should always use
    /// [`NetlistBuilder::finish`].
    #[doc(hidden)]
    pub fn finish_unchecked(self) -> Netlist {
        self.assemble()
    }

    /// Rewires input pin `pin` of `sink` to `driver` without validation.
    ///
    /// Test hook paired with [`NetlistBuilder::finish_unchecked`] for
    /// constructing cyclic graphs (the normal `add_gate` path cannot make
    /// forward references); production code has no use for it.
    ///
    /// # Panics
    ///
    /// Panics if `sink` or `pin` is out of range.
    #[doc(hidden)]
    pub fn rewire_unchecked(&mut self, sink: NodeId, pin: usize, driver: NodeId) {
        self.nodes[sink.index()].fanin[pin] = driver;
    }

    /// Drops the last fan-in pin of `sink` without revalidation.
    ///
    /// Test hook paired with [`NetlistBuilder::finish_unchecked`]: the
    /// normal `add_gate` path enforces cell arity, so lints that re-prove
    /// it (`avfs-check` rule AVC-N002) need this to construct a positive
    /// fixture. Production code has no use for it.
    ///
    /// # Panics
    ///
    /// Panics if `sink` is out of range.
    #[doc(hidden)]
    pub fn pop_fanin_unchecked(&mut self, sink: NodeId) {
        self.nodes[sink.index()].fanin.pop();
    }

    /// Computes fanouts and moves the builder's parts into a `Netlist`.
    fn assemble(mut self) -> Netlist {
        for i in 0..self.nodes.len() {
            let fanin = self.nodes[i].fanin.clone();
            for f in fanin {
                self.nodes[f.index()].fanout.push(NodeId(i as u32));
            }
        }
        Netlist {
            name: self.name,
            library: self.library,
            nodes: self.nodes,
            inputs: self.inputs,
            outputs: self.outputs,
            by_name: self.by_name,
        }
    }
}

impl fmt::Debug for NetlistBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetlistBuilder")
            .field("name", &self.name)
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> Arc<CellLibrary> {
        CellLibrary::nangate15_like()
    }

    /// c17-like tiny circuit used across the tests.
    fn small() -> Netlist {
        let lib = lib();
        let mut b = NetlistBuilder::new("small", &lib);
        let a = b.add_input("a").unwrap();
        let c = b.add_input("b").unwrap();
        let g1 = b.add_gate("g1", "NAND2_X1", &[a, c]).unwrap();
        let g2 = b.add_gate("g2", "INV_X1", &[g1]).unwrap();
        b.add_output("y", g2).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn builder_produces_expected_shape() {
        let n = small();
        assert_eq!(n.num_nodes(), 5);
        assert_eq!(n.num_gates(), 2);
        assert_eq!(n.inputs().len(), 2);
        assert_eq!(n.outputs().len(), 1);
        let g1 = n.find("g1").unwrap();
        assert_eq!(n.node(g1).fanin().len(), 2);
        assert_eq!(n.node(g1).fanout().len(), 1);
        assert_eq!(n.cell_of(g1).unwrap().name(), "NAND2_X1");
        assert!(n.cell_of(n.find("a").unwrap()).is_none());
    }

    #[test]
    fn duplicate_names_rejected() {
        let lib = lib();
        let mut b = NetlistBuilder::new("dup", &lib);
        b.add_input("x").unwrap();
        assert!(matches!(
            b.add_input("x"),
            Err(NetlistError::DuplicateName { .. })
        ));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let lib = lib();
        let mut b = NetlistBuilder::new("bad", &lib);
        let a = b.add_input("a").unwrap();
        assert!(matches!(
            b.add_gate("g", "NAND2_X1", &[a]),
            Err(NetlistError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            })
        ));
    }

    #[test]
    fn unknown_cell_rejected() {
        let lib = lib();
        let mut b = NetlistBuilder::new("bad", &lib);
        let a = b.add_input("a").unwrap();
        assert!(matches!(
            b.add_gate("g", "NOPE_X1", &[a]),
            Err(NetlistError::UnknownCell { .. })
        ));
    }

    #[test]
    fn empty_interface_rejected() {
        let lib = lib();
        let b = NetlistBuilder::new("empty", &lib);
        assert!(matches!(b.finish(), Err(NetlistError::EmptyInterface)));

        let mut b = NetlistBuilder::new("no_out", &lib);
        b.add_input("a").unwrap();
        assert!(matches!(b.finish(), Err(NetlistError::EmptyInterface)));
    }

    #[test]
    fn fanout_is_consistent_with_fanin() {
        let n = small();
        for (id, node) in n.iter() {
            for &f in node.fanin() {
                assert!(
                    n.node(f).fanout().contains(&id),
                    "fanin {f} of {id} lacks matching fanout"
                );
            }
            for &s in node.fanout() {
                assert!(
                    n.node(s).fanin().contains(&id),
                    "fanout {s} of {id} lacks matching fanin"
                );
            }
        }
    }

    #[test]
    fn load_caps_reflect_fanout() {
        let n = small();
        let caps = n.load_caps_ff();
        let g1 = n.find("g1").unwrap();
        let inv = n.library().cell(n.library().find("INV_X1").unwrap());
        let expected = WIRE_CAP_PER_FANOUT_FF + inv.input_pins()[0].capacitance_ff;
        assert!((caps[g1.index()] - expected).abs() < 1e-12);
        // Net feeding the output port.
        let g2 = n.find("g2").unwrap();
        assert!((caps[g2.index()] - (WIRE_CAP_PER_FANOUT_FF + OUTPUT_PORT_CAP_FF)).abs() < 1e-12);
        // Output node drives nothing.
        let y = n.find("y").unwrap();
        assert_eq!(caps[y.index()], 0.0);
    }

    #[test]
    fn multi_fanout_sums_caps() {
        let lib = lib();
        let mut b = NetlistBuilder::new("fan", &lib);
        let a = b.add_input("a").unwrap();
        let g1 = b.add_gate("g1", "INV_X1", &[a]).unwrap();
        let g2 = b.add_gate("g2", "INV_X2", &[g1]).unwrap();
        let g3 = b.add_gate("g3", "INV_X4", &[g1]).unwrap();
        b.add_output("y2", g2).unwrap();
        b.add_output("y3", g3).unwrap();
        let n = b.finish().unwrap();
        let caps = n.load_caps_ff();
        let lib = n.library();
        let c2 = lib.cell(lib.find("INV_X2").unwrap()).input_pins()[0].capacitance_ff;
        let c4 = lib.cell(lib.find("INV_X4").unwrap()).input_pins()[0].capacitance_ff;
        let expected = 2.0 * WIRE_CAP_PER_FANOUT_FF + c2 + c4;
        assert!((caps[n.find("g1").unwrap().index()] - expected).abs() < 1e-12);
    }

    #[test]
    fn invalid_node_reference_rejected() {
        let lib = lib();
        let mut b = NetlistBuilder::new("bad", &lib);
        let _a = b.add_input("a").unwrap();
        let bogus = NodeId(999);
        assert!(matches!(
            b.add_gate("g", "INV_X1", &[bogus]),
            Err(NetlistError::InvalidNode { .. })
        ));
        assert!(matches!(
            b.add_output("y", bogus),
            Err(NetlistError::InvalidNode { .. })
        ));
    }
}
