//! Gate-level netlist substrate for the AVFS time simulator.
//!
//! The paper simulates full-scan combinational netlists synthesized with the
//! NanGate 15 nm Open Cell Library. This crate provides everything that the
//! simulator needs of such a netlist:
//!
//! * [`cell`] — cell kinds (logic function × arity × drive strength) and
//!   Boolean evaluation,
//! * [`library`] — a synthetic 15 nm-class standard-cell library with
//!   electrical parameters for characterization (the NanGate library itself
//!   is a proprietary download; see `DESIGN.md` for the substitution note),
//! * [`graph`] — the netlist graph (primary inputs, gates, primary outputs)
//!   with a validating builder,
//! * [`levelize`] — topological levelization into the structural levels the
//!   parallel simulator processes as units (paper Fig. 3, vertical axis),
//! * [`mod@bench`] — an ISCAS `.bench` format parser/writer,
//! * [`verilog`] — a structural-Verilog subset parser/writer,
//! * [`stats`] — circuit statistics (the "Nodes" column of Table I).
//!
//! # Example
//!
//! ```
//! use avfs_netlist::{library::CellLibrary, graph::NetlistBuilder};
//!
//! # fn main() -> Result<(), avfs_netlist::NetlistError> {
//! let lib = CellLibrary::nangate15_like();
//! let mut b = NetlistBuilder::new("half_adder", &lib);
//! let a = b.add_input("a")?;
//! let c = b.add_input("b")?;
//! let sum = b.add_gate("sum", "XOR2_X1", &[a, c])?;
//! let carry = b.add_gate("carry", "AND2_X1", &[a, c])?;
//! b.add_output("s", sum)?;
//! b.add_output("co", carry)?;
//! let netlist = b.finish()?;
//! assert_eq!(netlist.num_nodes(), 6); // 2 PIs + 2 gates + 2 POs
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod bench;
pub mod cell;
pub mod graph;
pub mod hash;
pub mod levelize;
pub mod library;
pub mod stats;
pub mod verilog;

pub use cell::{CellKind, DriveStrength, LogicFunction};
pub use graph::{Netlist, NetlistBuilder, NodeId, NodeKind};
pub use levelize::Levelization;
pub use library::{Cell, CellId, CellLibrary};
pub use stats::NetlistStats;

use std::error::Error;
use std::fmt;

/// Errors produced while building or parsing netlists.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A node name was declared twice.
    DuplicateName {
        /// The offending name.
        name: String,
    },
    /// A referenced cell type does not exist in the library.
    UnknownCell {
        /// The unresolved cell-type name.
        cell: String,
    },
    /// A referenced signal name has no driver.
    UnknownSignal {
        /// The unresolved signal name.
        signal: String,
    },
    /// A gate was connected with the wrong number of inputs.
    ArityMismatch {
        /// The gate instance name.
        gate: String,
        /// The cell-type name.
        cell: String,
        /// Inputs the cell expects.
        expected: usize,
        /// Inputs that were connected.
        got: usize,
    },
    /// The netlist contains a combinational cycle.
    CombinationalCycle {
        /// Name of a node on the cycle.
        node: String,
    },
    /// Levelization found a combinational loop and extracted a witness.
    ///
    /// Unlike [`NetlistError::CombinationalCycle`] (the builder's early
    /// rejection, which names a single node), this carries the full cycle
    /// so diagnostics can print the offending feedback path.
    CombinationalLoop {
        /// Names of the nodes forming one cycle, in fan-in order.
        nodes: Vec<String>,
    },
    /// A parser failed.
    Parse {
        /// 1-based line number of the failure.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The netlist has no primary inputs or no primary outputs.
    EmptyInterface,
    /// A node index was out of bounds for this netlist.
    InvalidNode {
        /// The offending index.
        index: usize,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateName { name } => write!(f, "duplicate node name `{name}`"),
            NetlistError::UnknownCell { cell } => write!(f, "unknown cell type `{cell}`"),
            NetlistError::UnknownSignal { signal } => write!(f, "unknown signal `{signal}`"),
            NetlistError::ArityMismatch {
                gate,
                cell,
                expected,
                got,
            } => write!(
                f,
                "gate `{gate}` of type `{cell}` expects {expected} inputs, got {got}"
            ),
            NetlistError::CombinationalCycle { node } => {
                write!(f, "combinational cycle through node `{node}`")
            }
            NetlistError::CombinationalLoop { nodes } => {
                write!(f, "combinational loop: {}", nodes.join(" -> "))
            }
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            NetlistError::EmptyInterface => {
                write!(f, "netlist must have at least one input and one output")
            }
            NetlistError::InvalidNode { index } => write!(f, "invalid node index {index}"),
        }
    }
}

impl Error for NetlistError {}
